"""NPR-length tuning: picking Q along the blocking/delay trade-off.

Longer floating NPRs collate more preemptions (fewer, hence less
cumulative delay for the preempted task) but block higher-priority tasks
for longer; shorter NPRs do the opposite.  Schedulability is therefore
*not* monotone in Q, so this module sweeps candidate fractions of the
maximal safe lengths and reports, for each, the delay-aware verdict and
the worst normalized response time — giving a designer the whole
trade-off curve instead of a single point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.npr.assignment import assign_npr_lengths
from repro.sched.crpd_rta import delay_aware_rta
from repro.tasks.task import TaskSet
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class TuningPoint:
    """Outcome of one Q-fraction candidate.

    Attributes:
        fraction: Fraction of the maximal safe NPR lengths assigned.
        schedulable: Verdict of the delay-aware test.
        worst_slack_ratio: ``min_i (D_i - R_i) / D_i`` over all tasks
            (negative or ``-inf`` when some task misses).
    """

    fraction: float
    schedulable: bool
    worst_slack_ratio: float


def q_fraction_sweep(
    tasks: TaskSet,
    fractions: list[float],
    policy: str = "fp",
    method: str = "algorithm1",
) -> list[TuningPoint]:
    """Evaluate the delay-aware test at several NPR-length fractions.

    Args:
        tasks: Task set with priorities and delay functions attached.
        fractions: Candidate fractions in ``(0, 1]``.
        policy: Q-derivation policy (``"fp"`` or ``"edf"``).
        method: Delay-aware RTA flavour (see :data:`repro.sched.METHODS`).

    Returns:
        One :class:`TuningPoint` per candidate fraction (in input order).
    """
    require(bool(fractions), "need at least one candidate fraction")
    points: list[TuningPoint] = []
    for fraction in fractions:
        try:
            assigned = assign_npr_lengths(tasks, policy=policy, fraction=fraction)
        except ValueError:
            points.append(
                TuningPoint(
                    fraction=fraction,
                    schedulable=False,
                    worst_slack_ratio=-math.inf,
                )
            )
            continue
        result = delay_aware_rta(assigned, method)
        worst = math.inf
        for task in assigned:
            r = result.rta.response_times[task.name]
            if math.isinf(r):
                worst = -math.inf
                break
            worst = min(worst, (task.deadline - r) / task.deadline)
        points.append(
            TuningPoint(
                fraction=fraction,
                schedulable=result.schedulable,
                worst_slack_ratio=worst,
            )
        )
    return points


def best_fraction(points: list[TuningPoint]) -> TuningPoint | None:
    """The schedulable point with the largest worst-case slack ratio.

    Returns:
        The best tuning point, or ``None`` when no candidate fraction
        yields a schedulable assignment.
    """
    schedulable = [p for p in points if p.schedulable]
    if not schedulable:
        return None
    return max(schedulable, key=lambda p: p.worst_slack_ratio)
