"""Non-preemptive-region length determination (substrate S8).

The paper assumes ``Q_i`` "given" per Bertogna & Baruah [2] (EDF) and
Marinho & Petters [12] / Yao et al. [11] (fixed priority); this package
computes them, plus the preemption-count bounds for the paper's
future-work extension (ii).
"""

from repro.npr.assignment import assign_npr_lengths
from repro.npr.preemption_count import (
    higher_priority_tasks,
    max_preemptions,
    max_preemptions_release_based,
    max_preemptions_window_based,
)
from repro.npr.qmax_edf import edf_blocking_tolerance, edf_max_npr_lengths
from repro.npr.qmax_fp import fp_blocking_tolerances, fp_max_npr_lengths
from repro.npr.tuning import TuningPoint, best_fraction, q_fraction_sweep

__all__ = [
    "edf_blocking_tolerance",
    "edf_max_npr_lengths",
    "fp_blocking_tolerances",
    "fp_max_npr_lengths",
    "assign_npr_lengths",
    "max_preemptions",
    "max_preemptions_window_based",
    "max_preemptions_release_based",
    "higher_priority_tasks",
    "TuningPoint",
    "q_fraction_sweep",
    "best_fraction",
]
