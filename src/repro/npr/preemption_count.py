"""Bounds on the number of preemptions a job can suffer.

The paper's Algorithm 1 conservatively assumes a preemption every ``Q_i``
units; its future-work item (ii) observes that the release pattern of
higher-priority tasks often cannot sustain that rate.  This module
provides the two classic counts and their combination, which plugs
directly into :func:`repro.core.floating_npr_delay_bound` via its
``max_preemptions`` parameter.
"""

from __future__ import annotations

import math

from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require, require_positive


def max_preemptions_window_based(inflated_wcet: float, q: float) -> int:
    """Windows of length ``Q`` fitting in the (inflated) execution.

    ``ceil(C' / Q) - 1``: a job executing ``C'`` time units contains at
    most that many *interior* boundaries between consecutive NPR windows
    (the count used by Marinho & Petters [12]; the final chunk runs to
    completion and cannot be preempted at its end).
    """
    require_positive(q, "q")
    require_positive(inflated_wcet, "inflated_wcet")
    return max(math.ceil(inflated_wcet / q) - 1, 0)


def max_preemptions_release_based(
    task: Task,
    higher_priority: list[Task],
    window: float | None = None,
) -> int:
    """Higher-priority releases within the job's lifetime window.

    Every preemption needs a fresh higher-priority job release, so the
    number of releases inside the response window bounds the number of
    preemptions.

    Args:
        task: The analysed task.
        higher_priority: Tasks that can preempt it.
        window: Window length to count releases in; defaults to the
            task's deadline (a valid choice for schedulable tasks).
    """
    w = window if window is not None else task.deadline
    require_positive(w, "window")
    return sum(math.ceil(w / hp.period) for hp in higher_priority)


def max_preemptions(
    task: Task,
    higher_priority: list[Task],
    inflated_wcet: float | None = None,
    window: float | None = None,
) -> int:
    """The tighter of the window-based and release-based counts."""
    require(
        task.npr_length is not None,
        f"task {task.name} needs an assigned npr_length",
    )
    c_prime = inflated_wcet if inflated_wcet is not None else task.wcet
    return min(
        max_preemptions_window_based(c_prime, task.npr_length),
        max_preemptions_release_based(task, higher_priority, window),
    )


def higher_priority_tasks(tasks: TaskSet, task: Task) -> list[Task]:
    """Tasks that can preempt ``task`` under fixed priorities."""
    require(task.priority is not None, f"{task.name} has no priority")
    return [
        t
        for t in tasks
        if t.name != task.name
        and t.priority is not None
        and t.priority < task.priority
    ]
