"""Assigning floating-NPR lengths to whole task sets.

:func:`assign_npr_lengths` is the one-call recipe (derive the maximal
safe lengths, scale, attach); :func:`apply_npr_lengths` is the scaling
step alone, for callers that already hold a safe-Q vector — the
:class:`repro.engine.context.AnalysisContext` computes the vector once
per task set and applies it at every swept fraction.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.npr.qmax_edf import edf_max_npr_lengths
from repro.npr.qmax_fp import fp_max_npr_lengths
from repro.tasks.task import TaskSet
from repro.utils.checks import require


def apply_npr_lengths(
    tasks: TaskSet,
    lengths: Mapping[str, float],
    fraction: float = 1.0,
) -> TaskSet:
    """Attach ``fraction``-scaled NPR lengths to a task set.

    Args:
        tasks: The task set to annotate.
        lengths: Maximal safe NPR length per task name (e.g. from
            :func:`repro.npr.fp_max_npr_lengths` /
            :func:`repro.npr.edf_max_npr_lengths`).
        fraction: Scale factor in ``(0, 1]`` applied to each length.

    Returns:
        A new :class:`~repro.tasks.TaskSet` with ``npr_length`` set.

    Raises:
        ValueError: for out-of-range fractions or lengths that scale to
            a non-positive NPR (the set admits no assignment).
    """
    require(0.0 < fraction <= 1.0, f"fraction must lie in (0, 1], got {fraction}")
    scaled = {}
    for name, q in lengths.items():
        value = q * fraction
        require(
            value > 0,
            f"task {name} admits no positive NPR length (Q_max = {q})",
        )
        scaled[name] = value
    return tasks.map(lambda t: t.with_npr_length(scaled[t.name]))


def assign_npr_lengths(
    tasks: TaskSet,
    policy: str = "edf",
    fraction: float = 1.0,
) -> TaskSet:
    """A copy of the task set with ``Q_i`` set on every task.

    Args:
        tasks: The task set (fixed-priority policy requires priorities).
        policy: ``"edf"`` (Bertogna & Baruah slack method) or ``"fp"``
            (Yao et al. blocking tolerances).
        fraction: Scale factor in ``(0, 1]`` applied to the maximal safe
            lengths — shorter NPRs trade preemption-collation for lower
            per-window delay exposure, which is exactly the trade-off the
            paper's Figure 5 sweeps.

    Returns:
        A new :class:`~repro.tasks.TaskSet` with ``npr_length`` set.

    Raises:
        ValueError: for unknown policies, out-of-range fractions, or
            task sets admitting no positive NPR length.
    """
    require(policy in ("edf", "fp"), f"unknown policy {policy!r}")
    require(0.0 < fraction <= 1.0, f"fraction must lie in (0, 1], got {fraction}")
    if policy == "edf":
        lengths = edf_max_npr_lengths(tasks)
    else:
        lengths = fp_max_npr_lengths(tasks)
    return apply_npr_lengths(tasks, lengths, fraction)
