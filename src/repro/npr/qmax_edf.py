"""Maximum floating-NPR lengths under EDF (Bertogna & Baruah [2]).

Under EDF with limited preemptions, a job of τ_i executing inside a
non-preemptive region blocks every job with an earlier absolute deadline.
Bertogna & Baruah bound the tolerable blocking at "deadline level" ``t``
by the slack of the processor-demand criterion::

    beta(t) = t - dbf(t)

and the largest safe NPR length for τ_k (the paper's ``Q_k``) is the
minimum slack over all levels that τ_k's NPR could block — i.e. every
``t`` smaller than ``D_k``::

    Q_k = min { beta(t) : D_min <= t < D_k }

For the task with the smallest relative deadline no level can be blocked,
so its NPR is bounded only by its own WCET.
"""

from __future__ import annotations

import math

from repro.sched.dbf import demand_bound_function, testing_points
from repro.tasks.task import TaskSet
from repro.utils.checks import require


def edf_blocking_tolerance(tasks: TaskSet, level: float) -> float:
    """Slack ``beta(level) = level - dbf(level)`` of the demand criterion."""
    return level - demand_bound_function(tasks, level)


def edf_max_npr_lengths(
    tasks: TaskSet,
    cap_at_wcet: bool = True,
) -> dict[str, float]:
    """Largest safe floating-NPR length of every task under EDF.

    Args:
        tasks: The task set (any order; sorted internally by deadline).
        cap_at_wcet: Also cap each ``Q_k`` at ``C_k`` — an NPR longer
            than the task's own execution is meaningless.

    Returns:
        Mapping task name -> ``Q_k`` (``math.inf`` if unconstrained and
        ``cap_at_wcet`` is ``False``).

    Raises:
        ValueError: when the task set is not EDF-schedulable even fully
            preemptively (some slack is negative), in which case no NPR
            assignment exists.
    """
    ordered = tasks.sorted_by_deadline()
    deadlines = [t.deadline for t in ordered]
    d_max = deadlines[-1]
    points = [p for p in testing_points(tasks, d_max) if p < d_max]

    result: dict[str, float] = {}
    for task in ordered:
        relevant = [p for p in points if deadlines[0] <= p < task.deadline]
        if relevant:
            q = min(edf_blocking_tolerance(tasks, p) for p in relevant)
            require(
                q >= 0,
                f"task set has negative slack below D_{task.name}: "
                "not EDF-schedulable even fully preemptively",
            )
        else:
            q = math.inf
        if cap_at_wcet:
            q = min(q, task.wcet)
        result[task.name] = q
    return result
