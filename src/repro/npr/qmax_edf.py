"""Maximum floating-NPR lengths under EDF (Bertogna & Baruah [2]).

Under EDF with limited preemptions, a job of τ_i executing inside a
non-preemptive region blocks every job with an earlier absolute deadline.
Bertogna & Baruah bound the tolerable blocking at "deadline level" ``t``
by the slack of the processor-demand criterion::

    beta(t) = t - dbf(t)

and the largest safe NPR length for τ_k (the paper's ``Q_k``) is the
minimum slack over all levels that τ_k's NPR could block — i.e. every
``t`` smaller than ``D_k``::

    Q_k = min { beta(t) : D_min <= t < D_k }

For the task with the smallest relative deadline no level can be blocked,
so its NPR is bounded only by its own WCET.

Float robustness mirrors :mod:`repro.npr.qmax_fp`: demand step points are
``k * T_i + D_i`` and deadlines are arbitrary floats, so a level that is
*mathematically* coincident with a deadline can float-round one ulp to
either side of it (``2 * 0.7 + 0.7 = 2.0999999999999996`` vs ``2.1``).
Exact comparisons then treat the same level inconsistently — kept below
one deadline, dropped below another — and the demand ``floor`` can miss a
whole released job at an exact multiple, overstating the slack (and
therefore ``Q_k``, which is unsafe).  All boundary comparisons and the
job count here carry a relative tolerance instead.
"""

from __future__ import annotations

import math

from repro.tasks.task import TaskSet
from repro.utils.checks import require

#: Relative tolerance for float comparisons at demand step points — the
#: EDF mirror of the Lehoczky-point tolerance in
#: :mod:`repro.npr.qmax_fp`.  ``k * T + D`` can land one ulp away from an
#: exactly-intended boundary; exact comparisons would then drop or keep a
#: deadline-coincident level inconsistently, or undercount the released
#: jobs at an exact multiple (overstating the slack ``beta``).
_REL_TOL = 1e-9


def _released_jobs(t: float, deadline: float, period: float) -> int:
    """``floor((t - D) / T) + 1`` with a relative tolerance.

    At a level that is (mathematically) an exact step point of the task,
    float rounding can push the ratio infinitesimally *below* the integer
    (``(2.0999999999999996 - 0.7) / 0.7 -> 1.9999999999999998``), making
    a plain ``floor`` miss one whole released job — demand understated,
    slack overstated, ``Q_k`` unsafe.  Nudging the ratio up by a relative
    epsilon keeps genuinely fractional ratios intact but snaps
    within-tolerance ratios back to the intended integer.
    """
    if t < deadline:
        return 0
    return math.floor(((t - deadline) / period) * (1.0 + _REL_TOL)) + 1


def _demand(tasks: TaskSet, t: float) -> float:
    """``dbf(t)`` with the tolerant per-task job count."""
    return sum(
        _released_jobs(t, task.deadline, task.period) * task.wcet
        for task in tasks
    )


def _testing_levels(tasks: TaskSet, bound: float) -> list[float]:
    """Demand step points ``k * T_i + D_i`` strictly below ``bound``.

    Strictness carries the relative tolerance: a step point within
    tolerance of ``bound`` is deemed *coincident* with it and excluded,
    whichever side float rounding happened to land it on.
    """
    limit = bound * (1.0 - _REL_TOL)
    points: set[float] = set()
    for task in tasks:
        k = 0
        while True:
            t = k * task.period + task.deadline
            if t >= limit:
                break
            points.add(t)
            k += 1
    return sorted(points)


def edf_blocking_tolerance(tasks: TaskSet, level: float) -> float:
    """Slack ``beta(level) = level - dbf(level)`` of the demand criterion.

    The demand uses the tolerance-robust job count (see
    :func:`_released_jobs`), so the slack at a level coincident with a
    step point is never overstated by one-ulp rounding.
    """
    return level - _demand(tasks, level)


def edf_max_npr_lengths(
    tasks: TaskSet,
    cap_at_wcet: bool = True,
) -> dict[str, float]:
    """Largest safe floating-NPR length of every task under EDF.

    Args:
        tasks: The task set (any order; sorted internally by deadline).
        cap_at_wcet: Also cap each ``Q_k`` at ``C_k`` — an NPR longer
            than the task's own execution is meaningless.

    Returns:
        Mapping task name -> ``Q_k`` (``math.inf`` if unconstrained and
        ``cap_at_wcet`` is ``False``).

    Raises:
        ValueError: when the task set is not EDF-schedulable even fully
            preemptively (some slack is negative), in which case no NPR
            assignment exists.
    """
    ordered = tasks.sorted_by_deadline()
    deadlines = [t.deadline for t in ordered]
    d_max = deadlines[-1]
    points = _testing_levels(tasks, d_max)
    # Boundary comparisons are tolerance-deadline-relative: a level
    # deemed coincident with D_min is kept (the range is inclusive
    # below), one deemed coincident with D_k is dropped (strict above).
    lower = deadlines[0] * (1.0 - _REL_TOL)

    result: dict[str, float] = {}
    for task in ordered:
        upper = task.deadline * (1.0 - _REL_TOL)
        relevant = [p for p in points if lower <= p < upper]
        if relevant:
            q = min(edf_blocking_tolerance(tasks, p) for p in relevant)
            require(
                q >= 0,
                f"task set has negative slack below D_{task.name}: "
                "not EDF-schedulable even fully preemptively",
            )
        else:
            q = math.inf
        if cap_at_wcet:
            q = min(q, task.wcet)
        result[task.name] = q
    return result
