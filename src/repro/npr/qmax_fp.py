"""Maximum floating-NPR lengths under fixed priority (Yao et al. [11]).

The *blocking tolerance* ``beta_i`` of task τ_i is the largest amount of
lower-priority blocking τ_i can absorb while still meeting its deadline.
With the level-i workload ``W_i(t) = C_i + sum_{j<i} ceil(t / T_j) C_j``
and the Lehoczky testing set ``TS_i`` (multiples of higher-priority
periods up to ``D_i``, plus ``D_i`` itself)::

    beta_i = max { t - W_i(t) : t in TS_i, t <= D_i }

An NPR of τ_i blocks exactly the *higher*-priority tasks, so the largest
safe NPR length is::

    Q_i = min { beta_j : j higher priority than i }

(the highest-priority task is unconstrained).
"""

from __future__ import annotations

import math

from repro.tasks.task import TaskSet
from repro.utils.checks import require

#: Relative tolerance for float comparisons at Lehoczky points.  Period
#: multiples are computed as ``k * period``, which can land one ulp away
#: from an exactly-intended boundary (``3 * 0.1 > 0.3``); exact
#: comparisons would then drop a testing point or over-count a release,
#: understating the blocking tolerance ``beta_i``.
_REL_TOL = 1e-9


def _released_jobs(t: float, period: float) -> int:
    """``ceil(t / T_j)`` with a relative tolerance.

    At a testing point that is (mathematically) an exact multiple of
    ``period``, float rounding can push ``t / period`` infinitesimally
    above the integer (``2.1 / 0.7 -> 3.0000000000000004``), making a
    plain ``ceil`` charge one spurious whole job.  Nudging the ratio
    down by a relative epsilon keeps genuinely fractional ratios intact
    but snaps within-tolerance ratios back to the intended integer.
    """
    return math.ceil((t / period) * (1.0 - _REL_TOL))


def _level_i_workload(tasks: list, i: int, t: float) -> float:
    """``W_i(t)``: task i's WCET plus higher-priority interference."""
    total = tasks[i].wcet
    for j in range(i):
        total += _released_jobs(t, tasks[j].period) * tasks[j].wcet
    return total


def _testing_set(tasks: list, i: int) -> list[float]:
    """Lehoczky points for level i: ``k * T_j <= D_i`` plus ``D_i``.

    Membership is tested with a relative tolerance so a multiple that
    float-rounds one ulp above the deadline (``3 * 0.1`` vs ``0.3``) is
    still a testing point; it is clamped to the deadline so no point
    ever exceeds ``D_i``.
    """
    deadline = tasks[i].deadline
    points = {deadline}
    for j in range(i):
        period = tasks[j].period
        limit = deadline * (1.0 + _REL_TOL)
        k = 1
        while k * period <= limit:
            points.add(min(k * period, deadline))
            k += 1
    return sorted(points)


def fp_blocking_tolerances(tasks: TaskSet) -> dict[str, float]:
    """Blocking tolerance ``beta_i`` of every task.

    Args:
        tasks: Task set with priorities assigned (see
            :meth:`~repro.tasks.TaskSet.rate_monotonic`).

    Returns:
        Mapping task name -> ``beta_i``; a negative value means the task
        misses its deadline even without blocking.
    """
    ordered = list(tasks.sorted_by_priority())
    result: dict[str, float] = {}
    for i, task in enumerate(ordered):
        best = -math.inf
        for t in _testing_set(ordered, i):
            slack = t - _level_i_workload(ordered, i, t)
            best = max(best, slack)
        result[task.name] = best
    return result


def fp_max_npr_lengths(
    tasks: TaskSet,
    cap_at_wcet: bool = True,
    tolerances: dict[str, float] | None = None,
) -> dict[str, float]:
    """Largest safe floating-NPR length of every task under fixed priority.

    Args:
        tasks: Task set with priorities assigned.
        cap_at_wcet: Also cap each ``Q_i`` at ``C_i``.
        tolerances: Precomputed :func:`fp_blocking_tolerances` of the
            same task set (the expensive part — the Lehoczky testing
            sets); ``None`` computes them here.  The shared-artifact
            context layer (:mod:`repro.engine.context`) computes the
            tolerances once per task set and derives every fractional
            assignment from them.

    Returns:
        Mapping task name -> ``Q_i``.

    Raises:
        ValueError: when some task has negative blocking tolerance (the
            set is unschedulable regardless of NPR lengths).
    """
    ordered = list(tasks.sorted_by_priority())
    if tolerances is None:
        tolerances = fp_blocking_tolerances(tasks)
    for name, beta in tolerances.items():
        require(
            beta >= 0,
            f"task {name} has negative blocking tolerance ({beta:.3f}): "
            "unschedulable under fixed priority even without blocking",
        )
    result: dict[str, float] = {}
    running_min = math.inf
    for task in ordered:
        q = running_min  # min tolerance over strictly higher priorities
        if cap_at_wcet:
            q = min(q, task.wcet)
        result[task.name] = q
        running_min = min(running_min, tolerances[task.name])
    return result
