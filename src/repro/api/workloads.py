"""The workload registry: every runnable surface of the reproduction.

A *workload* is one named unit of work the facade can evaluate — the
paper's figures (``fig2``/``fig4``/``fig5``), the Theorem 1 validation
fuzz (``validate``), the acceptance study (``study``), the engine Q
sweep (``sweep``), declarative campaigns over any registered scenario
family (``campaign``), shard-store merging (``merge``), the static
analysis pass (``check``, :mod:`repro.checks`) and the registry
listings themselves (``families``, ``backends``).  Each entry declares:

* its **parameters** (name, type, default, help) — what the CLI turns
  into flags and :class:`~repro.api.request.RunRequest` validates;
* which **shared execution flag groups** apply (``engine`` =
  ``--jobs/--chunk``, ``store`` = ``--store/--resume``, ``shard`` =
  ``--shard``, ``sink`` = ``--format/--out``, ``backend`` =
  ``--backend``), so every sweep-shaped command exposes the same
  caching/resume/shard/kernel surface;
* a **runner** evaluating a request into a typed
  :class:`~repro.api.result.RunResult` (grid workloads route through
  :func:`repro.api.execution.execute_scenarios` — the one pipeline);
* a **renderer** producing the CLI's stdout from the result, so the
  command bodies in :mod:`repro.cli` are pure dispatch.

:class:`Workbench` is the evaluation front door:
``Workbench().run(RunRequest.make("fig5", knots=256))``.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.api.execution import (
    check_resume,
    effective_results_dir,
    execute_scenarios,
    manifest_scenarios,
    open_sink,
    open_store,
    resolve_sinks,
)
from repro.api.options import ExecutionOptions
from repro.api.request import RunRequest
from repro.api.result import RunError, RunResult
from repro.engine.sinks import ResultSink
from repro.utils.checks import require

#: Sentinel for parameters without a default (must be supplied).
REQUIRED = object()


@dataclass(frozen=True)
class Parameter:
    """One declared workload parameter.

    Attributes:
        name: Parameter (and CLI ``--flag``) name.
        type: Expected Python type (``int``/``float``/``str``), or
            ``None`` for untyped parameters (e.g. a spec that may be a
            path or a mapping).
        default: Default value, or :data:`REQUIRED`.
        help: One-line description (CLI help, generated docs).
        choices: Allowed values, when closed.
        positional: Render as a positional CLI argument.
        repeatable: Accept multiple values (CLI ``append``/``nargs``).
        hidden: Programmatic-only — not rendered as a CLI flag.
        metavar: CLI value placeholder (default: argparse's; repeatable
            flags default to ``KEY=VALUE``).
    """

    name: str
    type: type | None = None
    default: Any = REQUIRED
    help: str = ""
    choices: tuple[Any, ...] | None = None
    positional: bool = False
    repeatable: bool = False
    hidden: bool = False
    metavar: str | None = None

    def resolve(self, workload: str, value: Any) -> Any:
        """Validate/coerce one supplied value against this declaration."""
        if self.type is float and isinstance(value, int) and not isinstance(
            value, bool
        ):
            value = float(value)
        if self.type is not None and not isinstance(value, self.type):
            raise ValueError(
                f"workload {workload!r} parameter {self.name!r} expects "
                f"{self.type.__name__}, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"workload {workload!r} parameter {self.name!r} must be "
                f"one of {', '.join(map(str, self.choices))}; "
                f"got {value!r}"
            )
        return value


@dataclass(frozen=True)
class Workload:
    """One registered workload: parameters, runner and renderer.

    Attributes:
        name: Registry key (the CLI subcommand name).
        summary: One-line description (CLI help).
        parameters: Declared parameters.
        runner: ``(request, resolved_params) -> RunResult``.
        render: ``RunResult -> str`` — the CLI's stdout.
        exit_code: ``RunResult -> int`` (default: 0 iff ``result.ok``).
        flags: Shared execution-flag groups that apply: any of
            ``"engine"``, ``"store"``, ``"shard"``, ``"sink"``,
            ``"backend"``.
    """

    name: str
    summary: str
    parameters: tuple[Parameter, ...]
    runner: Callable[[RunRequest, dict[str, Any]], RunResult]
    render: Callable[[RunResult], str]
    exit_code: Callable[[RunResult], int] = field(
        default=lambda result: 0 if result.ok else 1
    )
    flags: frozenset[str] = field(default=frozenset())

    def resolve_params(self, supplied: Mapping[str, Any]) -> dict[str, Any]:
        """Validate supplied parameters and fill in declared defaults."""
        declared = {param.name: param for param in self.parameters}
        unknown = sorted(set(supplied) - set(declared))
        require(
            not unknown,
            f"unknown parameter(s) {', '.join(unknown)} for workload "
            f"{self.name!r}; valid parameters: "
            f"{', '.join(declared) or '(none)'}",
        )
        resolved: dict[str, Any] = {}
        for name, param in declared.items():
            if name in supplied:
                resolved[name] = param.resolve(self.name, supplied[name])
            else:
                require(
                    param.default is not REQUIRED,
                    f"workload {self.name!r} requires parameter {name!r}",
                )
                resolved[name] = param.default
        return resolved


_WORKLOADS: dict[str, Workload] = {}


def register_workload(workload: Workload, replace: bool = False) -> None:
    """Register a workload under its name (duplicates fail loudly)."""
    require(
        replace or workload.name not in _WORKLOADS,
        f"workload {workload.name!r} is already registered",
    )
    _WORKLOADS[workload.name] = workload


def get_workload(name: str) -> Workload:
    """The registered workload called ``name`` (unknown names fail
    with the valid choices listed)."""
    require(
        name in _WORKLOADS,
        f"unknown workload {name!r}; registered workloads: "
        f"{', '.join(workload_names())}",
    )
    return _WORKLOADS[name]


def workload_names() -> tuple[str, ...]:
    """All registered workload names, in registration order."""
    return tuple(_WORKLOADS)


class Workbench:
    """Evaluate :class:`RunRequest` objects into :class:`RunResult`.

    The facade's single execution front door: every workload —
    figures, validation, sweeps, campaigns, merges — goes through
    :meth:`run`, which resolves the workload, validates parameters,
    times the evaluation and stamps the duration onto the result.
    """

    def run(self, request: RunRequest) -> RunResult:
        """Evaluate one request; raises the workload's errors as-is
        (:class:`ValueError` for usage problems,
        :class:`repro.engine.WorkerError` for failing scenarios,
        :class:`~repro.api.result.RunError` for failed runs)."""
        workload = get_workload(request.workload)
        params = workload.resolve_params(request.params_dict())
        started = perf_counter()
        result = workload.runner(request, params)
        elapsed = perf_counter() - started
        return replace(result, request=request, seconds=elapsed)


def run(
    workload: str,
    options: ExecutionOptions | None = None,
    **params: Any,
) -> RunResult:
    """One-call convenience: build the request and run it."""
    return Workbench().run(RunRequest.make(workload, options, **params))


# ----------------------------------------------------------------------
# helpers shared by the grid-shaped runners
# ----------------------------------------------------------------------


class _ConvergenceCounter(ResultSink):
    """Sink wrapper counting converged records as they stream past."""

    def __init__(self, inner: ResultSink | None) -> None:
        self._inner = inner
        self.total = 0
        self.converged = 0

    def write(self, record: Mapping[str, Any]) -> None:
        self.total += 1
        if record.get("converged"):
            self.converged += 1
        if self._inner is not None:
            self._inner.write(record)

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()


def _require_store_for_shard(options: ExecutionOptions, name: str) -> None:
    """Grid workloads whose artifact needs the *full* grid can only
    shard into a store (merged later); fail loudly otherwise."""
    if options.shard is not None and options.store is None:
        raise ValueError(
            f"--shard on {name} requires --store: a shard computes only "
            "its slice, so the final artifact is produced by merging "
            "the shard stores ('repro merge') and re-running with the "
            "merged store"
        )


def _artifact_directory(options: ExecutionOptions) -> Path | None:
    """Explicit artifact directory, or ``None`` for the env default."""
    if options.results_dir is None:
        return None
    return effective_results_dir(options)


def _shard_result(
    request: RunRequest, run, manifest: Mapping[str, Any]
) -> RunResult:
    """The result of a shard-slice run (no final artifact yet)."""
    return RunResult(
        request=request,
        records=tuple(run.results) if run.results is not None else None,
        manifest=manifest,
        total=run.total,
        cached=run.cached,
        computed=run.computed,
        extra={"sharded": True, "store": str(request.options.store)},
    )


def _render_shard(result: RunResult, name: str) -> str:
    from repro.experiments import render_table

    rows = [
        ["scenarios (this shard)", result.total],
        ["cached", result.cached],
        ["computed", result.computed],
        ["store", result.extra["store"]],
    ]
    return "\n".join(
        [
            render_table(["quantity", "value"], rows),
            f"shard checkpointed — merge the shard stores with "
            f"'repro merge' and rerun {name} with the merged store to "
            f"emit the final artifact",
        ]
    )


# ----------------------------------------------------------------------
# fig4
# ----------------------------------------------------------------------


def _run_fig4(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.experiments import generate_fig4, write_fig4_csv

    options = request.options
    manifest = {
        "kind": "fig4",
        "samples": params["samples"],
        "knots": params["knots"],
    }
    with open_store(options) as (store, owned):
        if store is not None and owned:
            # Same one-store-one-shape guard as the grid workloads: a
            # store filled by sweep/campaign (or a different fig4
            # parameterization) is refused instead of silently mixed.
            store.set_manifest(manifest)
            store.set_shard(options.shard_scope)
        data = generate_fig4(
            samples=params["samples"], knots=params["knots"], store=store
        )
    path = write_fig4_csv(data, directory=_artifact_directory(options))
    return RunResult(
        request=request,
        payload=data,
        manifest=manifest,
        artifacts=(str(path),),
        total=1,
        computed=1,
    )


def _render_fig4(result: RunResult) -> str:
    from repro.experiments import line_plot

    data = result.payload
    series = {
        name: list(zip(data.ts, values))
        for name, values in data.series.items()
    }
    return "\n".join(
        [
            line_plot(series, width=72, height=16, title="Figure 4"),
            f"wrote {result.artifacts[0]}",
        ]
    )


# ----------------------------------------------------------------------
# fig5
# ----------------------------------------------------------------------


def _run_fig5(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.engine import (
        bound_result_from_record,
        evaluate_bound_batch,
        evaluate_bound_scenario,
        q_sweep_scenarios,
    )
    from repro.engine.sweeps import bound_context_key
    from repro.experiments.fig5 import (
        default_q_grid,
        fig5_data_from_results,
        write_fig5_csv,
    )

    options = request.options
    points, knots = params["points"], params["knots"]
    _require_store_for_shard(options, "fig5")
    manifest = {"kind": "qsweep", "points": points, "knots": knots}
    qs = default_q_grid(points=points)
    scenarios = q_sweep_scenarios(qs, knots=knots)
    run = execute_scenarios(
        evaluate_bound_scenario,
        scenarios,
        options=options,
        manifest=manifest,
        group_by=bound_context_key,
        decode=bound_result_from_record,
        batch_worker=evaluate_bound_batch,
    )
    if options.shard is not None:
        return _shard_result(request, run, manifest)
    data = fig5_data_from_results(qs, run.results)
    path = write_fig5_csv(data, directory=_artifact_directory(options))
    return RunResult(
        request=request,
        payload=data,
        records=tuple(run.results),
        manifest=manifest,
        artifacts=(str(path),),
        total=run.total,
        cached=run.cached,
        computed=run.computed,
    )


def _render_fig5(result: RunResult) -> str:
    if result.extra.get("sharded"):
        return _render_shard(result, "fig5")
    from repro.experiments import (
        improvement_summary,
        line_plot,
        render_table,
    )

    data = result.payload
    summary = improvement_summary(data)
    return "\n".join(
        [
            line_plot(
                data.series(), width=72, height=20, log_y=True,
                title="Figure 5",
            ),
            render_table(
                ["function", "median SOA / Algorithm 1"],
                [[k, v] for k, v in sorted(summary.items())],
            ),
            f"wrote {result.artifacts[0]}",
        ]
    )


# ----------------------------------------------------------------------
# fig2
# ----------------------------------------------------------------------


def _run_fig2(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.experiments import run_figure2_demo

    demo = run_figure2_demo(q=params["q"])
    return RunResult(
        request=request,
        ok=demo.naive_is_violated and demo.algorithm1_is_safe,
        payload=demo,
        total=1,
        computed=1,
    )


def _render_fig2(result: RunResult) -> str:
    from repro.experiments import render_table

    demo = result.payload
    return render_table(
        ["quantity", "value"],
        [
            ["Q", demo.q],
            ["naive packing 'bound'", demo.naive_bound],
            ["simulated run delay", demo.simulated_delay],
            ["Algorithm 1 bound", demo.algorithm1_bound],
            ["naive violated", demo.naive_is_violated],
            ["Algorithm 1 safe", demo.algorithm1_is_safe],
        ],
    )


# ----------------------------------------------------------------------
# validate
# ----------------------------------------------------------------------


def _run_validate(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.sim import reference_validation_task_set, validation_campaign

    tasks = reference_validation_task_set(params["q"])
    report = validation_campaign(
        tasks,
        policy=params["policy"],
        seeds=range(params["seeds"]),
        horizon=params["horizon"],
    )
    return RunResult(
        request=request,
        ok=report.passed,
        payload=report,
        total=params["seeds"],
        computed=params["seeds"],
    )


def _render_validate(result: RunResult) -> str:
    report = result.payload
    return (
        f"jobs checked: {report.checked_jobs}; "
        f"max measured/bound: {report.max_tightness:.3f}; "
        f"passed: {report.passed}"
    )


# ----------------------------------------------------------------------
# study
# ----------------------------------------------------------------------


def _run_study(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.engine.sweeps import (
        evaluate_study_scenario,
        study_context_key,
        study_result_from_record,
    )
    from repro.experiments.schedulability_study import (
        STUDY_METHODS,
        STUDY_UTILIZATIONS,
        fold_study_points,
        reference_study_scenarios,
    )

    options = request.options
    tasks, sets = params["tasks"], params["sets"]
    _require_store_for_shard(options, "study")
    manifest = {"kind": "study", "tasks": tasks, "sets": sets}
    scenarios = reference_study_scenarios(tasks, sets)
    run = execute_scenarios(
        evaluate_study_scenario,
        scenarios,
        options=options,
        manifest=manifest,
        group_by=study_context_key,
        decode=study_result_from_record,
    )
    if options.shard is not None:
        return _shard_result(request, run, manifest)
    points = fold_study_points(
        list(STUDY_UTILIZATIONS), list(STUDY_METHODS), sets, run.results
    )
    return RunResult(
        request=request,
        payload=points,
        records=tuple(run.results),
        manifest=manifest,
        total=run.total,
        cached=run.cached,
        computed=run.computed,
    )


def _render_study(result: RunResult) -> str:
    if result.extra.get("sharded"):
        return _render_shard(result, "study")
    from repro.experiments import line_plot, render_table, study_series
    from repro.experiments.schedulability_study import STUDY_METHODS

    points = result.payload
    methods = list(STUDY_METHODS)
    rows = [
        [p.utilization, *(p.ratios[m] for m in methods)] for p in points
    ]
    return "\n".join(
        [
            render_table(["U", *methods], rows),
            line_plot(
                study_series(points),
                width=64,
                height=14,
                title="Acceptance ratio vs utilization",
            ),
        ]
    )


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------


def _run_sweep(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.api.plan import plan_scenarios

    options = request.options
    check_resume(options)  # before the sink truncates any output file
    plan = plan_scenarios("sweep", params)
    specs = resolve_sinks(options, plan.sink_name)
    counter = _ConvergenceCounter(open_sink(specs))
    with counter:
        run = execute_scenarios(
            plan.worker,
            plan.scenarios,
            options=options,
            manifest=plan.manifest,
            group_by=plan.group_by,
            collect=False,
            sink=counter,
            batch_worker=plan.batch_worker,
        )
    return RunResult(
        request=request,
        manifest=plan.manifest,
        artifacts=tuple(spec.path for spec in specs),
        total=run.total,
        cached=run.cached,
        computed=run.computed,
        extra={
            "converged": counter.converged,
            "store_used": options.store is not None,
        },
    )


def _render_stream_table(
    result: RunResult, head_rows: list[list[Any]]
) -> str:
    """The sweep/campaign summary table (shared row tail)."""
    from repro.experiments import render_table

    rows = list(head_rows)
    if result.extra.get("store_used"):
        rows += [["cached", result.cached], ["computed", result.computed]]
    elapsed = result.seconds
    rate = result.total / elapsed if elapsed > 0 else math.inf
    rows += [
        ["seconds", f"{elapsed:.2f}"],
        ["scenarios/s", f"{rate:.0f}"],
        ["output", ", ".join(result.artifacts)],
    ]
    return render_table(["quantity", "value"], rows)


def _render_sweep(result: RunResult) -> str:
    return _render_stream_table(
        result,
        [
            ["scenarios", result.total],
            ["converged", result.extra["converged"]],
            ["diverged", result.total - result.extra["converged"]],
        ],
    )


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------


def campaign_overrides(raw: Any) -> dict[str, Any]:
    """Normalize the ``set`` parameter: a mapping, ``(key, value)``
    pairs, or CLI-style ``key=value`` strings."""
    from repro.campaign import parse_set_overrides

    if not raw:
        return {}
    if isinstance(raw, Mapping):
        return dict(raw)
    items = list(raw)
    if all(isinstance(item, str) for item in items):
        return parse_set_overrides(items)
    return {key: value for key, value in items}


def _run_campaign(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.api.plan import plan_scenarios

    options = request.options
    check_resume(options)  # before the sink truncates any output file
    plan = plan_scenarios("campaign", params)
    collect = params["collect"]
    specs = resolve_sinks(options, plan.sink_name)
    sink = open_sink(specs)
    try:
        run = execute_scenarios(
            plan.worker,
            plan.scenarios,
            options=options,
            manifest=plan.manifest,
            group_by=plan.group_by,
            decode=plan.decode,
            collect=collect,
            sink=sink,
            batch_worker=plan.batch_worker,
        )
    finally:
        if sink is not None:
            sink.close()
    return RunResult(
        request=request,
        records=tuple(run.results) if run.results is not None else None,
        manifest=plan.manifest,
        artifacts=tuple(spec.path for spec in specs),
        total=run.total,
        cached=run.cached,
        computed=run.computed,
        extra={
            **plan.extra,
            "store_used": options.store is not None,
        },
    )


def _render_campaign(result: RunResult) -> str:
    return _render_stream_table(
        result,
        [
            ["campaign", result.extra["campaign"]],
            ["family", result.extra["family"]],
            ["scenarios", result.total],
        ],
    )


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------


def _run_merge(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.store import ResultStore, merge_stores, package_fingerprint

    sources_arg = list(params["sources"])
    missing = [path for path in sources_arg if not Path(path).exists()]
    if missing:
        raise ValueError(
            f"input store(s) not found: {', '.join(missing)}"
        )
    fingerprint = package_fingerprint("repro")
    artifacts = [str(params["target"])]
    with ResultStore(params["target"], fingerprint=fingerprint) as target:
        sources: list[ResultStore] = []
        try:
            for path in sources_arg:
                sources.append(ResultStore(path))
            added = merge_stores(target, sources)
        finally:
            for source in sources:
                source.close()
        total = len(target)
        out = params["out"]
        if out is not None:
            from repro.engine import CsvSink, JsonlSink, emit_from_store

            manifest = target.manifest
            if manifest is None:
                raise RunError(
                    "merged store has no sweep manifest; cannot emit a "
                    "result file (were the shards produced by 'repro "
                    "sweep --store'?)"
                )
            scenarios = manifest_scenarios(manifest)
            sink_cls = JsonlSink if params["format"] == "jsonl" else CsvSink
            with sink_cls(out) as sink:
                emit_from_store(target, scenarios, sink=sink, collect=False)
            artifacts.append(str(out))
    return RunResult(
        request=request,
        artifacts=tuple(artifacts),
        total=total,
        computed=added,
        extra={
            "inputs": len(sources_arg),
            "added": added,
            "out": params["out"],
        },
    )


def _render_merge(result: RunResult) -> str:
    from repro.experiments import render_table

    rows = [
        ["input stores", result.extra["inputs"]],
        ["rows added", result.extra["added"]],
        ["rows total", result.total],
        ["merged store", result.artifacts[0]],
    ]
    if result.extra["out"] is not None:
        rows.append(["output", result.extra["out"]])
    return render_table(["quantity", "value"], rows)


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------


def _run_serve(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.serve.server import ServeConfig, run_server

    options = request.options
    if options.store is None:
        raise ValueError(
            "serve requires --store PATH: the shared content-addressed "
            "store is what cross-client deduplication runs against"
        )
    if not isinstance(options.store, (str, Path)):
        raise ValueError(
            "serve opens its store inside the job-executor pool; pass "
            "the store as a path, not an open instance"
        )
    config = ServeConfig(
        host=params["host"],
        port=params["port"],
        store=str(options.store),
        jobs=options.jobs,
        chunk=options.chunk,
        workers=params["workers"],
        max_queued=params["queue"],
        line_limit=params["limit"],
        allow_fail_after=params["allow_fail_after"],
        ready_file=params["ready_file"],
    )
    stats = run_server(config)
    return RunResult(request=request, payload=stats, extra=dict(stats))


def _render_serve(result: RunResult) -> str:
    from repro.experiments import render_table

    rows = sorted(
        (key, value)
        for key, value in result.extra.items()
        if not isinstance(value, Mapping)
    )
    return render_table(["quantity", "value"], rows)


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------


def _run_check(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.checks import (
        load_baseline,
        load_tree,
        prune_baseline,
        repo_root,
        run_checks,
        run_with_cache,
        write_baseline,
    )

    root = Path(params["root"]) if params["root"] else repo_root()
    tree = load_tree(root)
    baseline_path = root / params["baseline"]
    select = list(params["select"]) or None
    ignore = list(params["ignore"]) or None
    cache_path = Path(params["cache"]) if params["cache"] else None

    def run(baseline=()):
        if cache_path is not None:
            return run_with_cache(
                tree, cache_path,
                select=select, ignore=ignore, baseline=baseline,
            )
        return run_checks(
            tree, select=select, ignore=ignore, baseline=baseline
        )

    if params["write_baseline"]:
        # Re-baseline: grandfather whatever is live right now (the
        # suppressions still apply) and report against the new file.
        report = run()
        write_baseline(baseline_path, report.findings)
        report = run(baseline=load_baseline(baseline_path))
    else:
        report = run(baseline=load_baseline(baseline_path))
    pruned = 0
    if params["prune_baseline"] and report.stale:
        # Self-cleaning: drop exactly the stale entries (keeping each
        # survivor's reason field) and re-report against the result.
        pruned = prune_baseline(baseline_path, report.stale)
        report = run(baseline=load_baseline(baseline_path))
    return RunResult(
        request=request,
        ok=report.ok,
        payload=report,
        total=report.files_checked,
        computed=len(report.codes_run),
        extra={
            "format": params["format"],
            "baseline": str(baseline_path),
            "baseline_written": bool(params["write_baseline"]),
            "baseline_pruned": pruned,
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "stale": len(report.stale),
        },
    )


def _render_check(result: RunResult) -> str:
    import json

    report = result.payload
    if result.extra["format"] == "json":
        return json.dumps(report.to_json(), indent=2, sort_keys=True)
    if result.extra["format"] == "sarif":
        from repro.checks import report_to_sarif

        return json.dumps(
            report_to_sarif(report), indent=2, sort_keys=True
        )
    text = report.render_text()
    if result.extra["baseline_written"]:
        text += f"\nwrote baseline {result.extra['baseline']}"
    if result.extra["baseline_pruned"]:
        text += (
            f"\npruned {result.extra['baseline_pruned']} stale "
            f"entr{'y' if result.extra['baseline_pruned'] == 1 else 'ies'} "
            f"from {result.extra['baseline']}"
        )
    return text


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------


def _run_families(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.engine.registry import family_names, get_family

    listing = tuple(
        (get_family(name), get_family(name).axes())
        for name in family_names()
    )
    return RunResult(request=request, payload=listing)


def _render_families(result: RunResult) -> str:
    from repro.experiments import render_table

    blocks = []
    for family, axes in result.payload:
        rows = [
            [
                axis.name,
                axis.type_name,
                "(required)" if axis.required else axis.default,
                axis.help,
            ]
            for axis in axes
        ]
        blocks.append(
            f"{family.name} — {family.summary}\n"
            + render_table(["axis", "type", "default", "description"], rows)
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


def _run_backends(request: RunRequest, params: dict[str, Any]) -> RunResult:
    from repro.piecewise.backends import backend_names, get_backend

    listing = tuple(get_backend(name) for name in backend_names())
    return RunResult(request=request, payload=listing)


def _render_backends(result: RunResult) -> str:
    from repro.experiments import render_table

    rows = []
    for backend in result.payload:
        if backend.available:
            available = "yes"
        else:
            available = f"no ({backend.requires} not importable)"
        rows.append(
            [
                backend.name,
                available,
                backend.exactness,
                "yes" if backend.supports_batch else "no",
                backend.description,
            ]
        )
    return render_table(
        ["backend", "available", "exactness", "batch", "description"], rows
    )


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------


def _register_builtins() -> None:
    register_workload(
        Workload(
            name="fig4",
            summary="sample the benchmark f functions",
            parameters=(
                Parameter("samples", int, 401, "sample points over [0, C]"),
                Parameter(
                    "knots", int, 2048,
                    "piecewise resolution of the functions",
                ),
            ),
            runner=_run_fig4,
            render=_render_fig4,
            flags=frozenset({"store", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="fig5",
            summary="the headline Q sweep",
            parameters=(
                Parameter("points", int, 40, "Q grid points"),
                Parameter(
                    "knots", int, 2048,
                    "benchmark-function resolution",
                ),
            ),
            runner=_run_fig5,
            render=_render_fig5,
            flags=frozenset({"engine", "store", "shard", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="fig2",
            summary="naive-bound counterexample",
            parameters=(
                Parameter("q", float, 100.0, "NPR length of the target"),
            ),
            runner=_run_fig2,
            render=_render_fig2,
            flags=frozenset({"backend"}),
        )
    )
    register_workload(
        Workload(
            name="validate",
            summary="Theorem 1 fuzzing campaign",
            parameters=(
                Parameter("q", float, 120.0, "target NPR length"),
                Parameter(
                    "policy", str, "fp", "scheduling policy",
                    choices=("fp", "edf"),
                ),
                Parameter("seeds", int, 6, "fuzzing seeds"),
                Parameter(
                    "horizon", float, 60_000.0, "simulated time per run"
                ),
            ),
            runner=_run_validate,
            render=_render_validate,
            flags=frozenset({"backend"}),
        )
    )
    register_workload(
        Workload(
            name="study",
            summary="schedulability study",
            parameters=(
                Parameter("tasks", int, 5, "tasks per generated set"),
                Parameter(
                    "sets", int, 25, "task sets per utilization level"
                ),
            ),
            runner=_run_study,
            render=_render_study,
            flags=frozenset({"engine", "store", "shard", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="sweep",
            summary="large-scale batch Q sweep via the engine",
            parameters=(
                Parameter(
                    "points", int, 400,
                    "Q grid points (scenarios = 3x this)",
                ),
                Parameter("knots", int, 1024, "function resolution"),
            ),
            runner=_run_sweep,
            render=_render_sweep,
            flags=frozenset({"engine", "store", "shard", "sink", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="campaign",
            summary="run a declarative scenario campaign from a spec "
            "file or built-in name",
            parameters=(
                Parameter(
                    "spec", None,
                    help="spec file (.json/.toml), inline mapping, or a "
                    "built-in campaign name (fig5, study, sim-validate, "
                    "edf-study)",
                    positional=True,
                ),
                Parameter(
                    "set", None, (),
                    "override a builtin parameter (e.g. points=5) or a "
                    "spec file default; repeatable",
                    repeatable=True,
                ),
                Parameter(
                    "collect", bool, False,
                    "collect decoded per-scenario results onto "
                    "RunResult.records (programmatic only; the CLI "
                    "streams to sinks)",
                    hidden=True,
                ),
            ),
            runner=_run_campaign,
            render=_render_campaign,
            flags=frozenset({"engine", "store", "shard", "sink", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="merge",
            summary="merge shard stores; optionally emit the final "
            "result file",
            parameters=(
                Parameter(
                    "target", str, help="merged (output) store path",
                    positional=True,
                ),
                Parameter(
                    "sources", None, help="input shard store paths",
                    positional=True, repeatable=True,
                ),
                Parameter(
                    "out", None, None,
                    "also emit the final result file from the merged "
                    "store",
                ),
                Parameter(
                    "format", str, "jsonl", "result file format",
                    choices=("jsonl", "csv"),
                ),
            ),
            runner=_run_merge,
            render=_render_merge,
            flags=frozenset({"backend"}),
        )
    )
    register_workload(
        Workload(
            name="serve",
            summary="run the analysis job server (async, store-deduped, "
            "resumable JSONL streams)",
            parameters=(
                Parameter("host", str, "127.0.0.1", "interface to bind"),
                Parameter(
                    "port", int, 7512,
                    "TCP port to listen on (0 = OS-assigned)",
                ),
                Parameter(
                    "workers", int, None,
                    "concurrent job slots; independent jobs run in "
                    "parallel and a large job fans out over idle slots "
                    "via shard sub-runs (default: cpu-count, capped)",
                ),
                Parameter(
                    "queue", int, 16,
                    "max queued jobs before submissions are rejected "
                    "(429-style 'busy' error frames)",
                ),
                Parameter(
                    "limit", int, 1_048_576,
                    "max request frame size in bytes (oversized "
                    "submissions are rejected with an error frame)",
                ),
                Parameter(
                    "ready_file", str, "",
                    "write 'host port' here once listening (lets "
                    "scripts wait for --port 0 startup)",
                ),
                Parameter(
                    "allow_fail_after", bool, False,
                    "honour fail_after in submitted requests (the "
                    "fault-injection test seam; never enable in "
                    "production)",
                    hidden=True,
                ),
            ),
            runner=_run_serve,
            render=_render_serve,
            flags=frozenset({"engine", "store", "backend"}),
        )
    )
    register_workload(
        Workload(
            name="check",
            summary="run the domain-invariant static-analysis pass "
            "(determinism, worker purity, async hygiene, concurrency, "
            "fork safety, contracts)",
            parameters=(
                Parameter(
                    "select", None, (),
                    "run only these checker codes, groups or prefixes "
                    "(e.g. DET001, determinism, RC); repeatable",
                    repeatable=True, metavar="CODE",
                ),
                Parameter(
                    "ignore", None, (),
                    "drop these checker codes, groups or prefixes from "
                    "the run; repeatable",
                    repeatable=True, metavar="CODE",
                ),
                Parameter(
                    "format", str, "text", "report format",
                    choices=("text", "json", "sarif"),
                ),
                Parameter(
                    "baseline", str, "checks-baseline.json",
                    "grandfathered-findings file, relative to the "
                    "checked root (missing file = empty baseline)",
                ),
                Parameter(
                    "root", str, "",
                    "repository root to check (default: auto-detected "
                    "from the installed package layout)",
                ),
                Parameter(
                    "write_baseline", bool, False,
                    "rewrite the baseline file to grandfather every "
                    "currently-live finding, then report against it",
                ),
                Parameter(
                    "prune_baseline", bool, False,
                    "drop stale baseline entries (findings that no "
                    "longer fire) from the baseline file, then "
                    "re-report against the pruned file",
                ),
                Parameter(
                    "cache", str, "",
                    "incremental-cache file: unchanged files replay "
                    "their previous findings (empty = run cold); cold "
                    "and cached runs report identically",
                ),
            ),
            runner=_run_check,
            render=_render_check,
            flags=frozenset({"backend"}),
        )
    )
    register_workload(
        Workload(
            name="families",
            summary="list the registered scenario families and their axes",
            parameters=(),
            runner=_run_families,
            render=_render_families,
            flags=frozenset({"backend"}),
        )
    )
    register_workload(
        Workload(
            name="backends",
            summary="list the registered kernel backends (availability, "
            "exactness, batch support)",
            parameters=(),
            runner=_run_backends,
            render=_render_backends,
            flags=frozenset({"backend"}),
        )
    )


_register_builtins()
