"""Generate the registry-driven sections of ``docs/api.md``.

The scenario-family axis tables, the workload table, the kernel-
backend table and the static-checker table in the public API reference
are *generated* from the live registries rather than hand-maintained:
``tests/api/test_docgen.py`` regenerates them and asserts the
committed markdown matches, so adding a family, a workload, a backend
or an axis without regenerating the docs fails the suite.

Regenerate with::

    PYTHONPATH=src python -m repro.api.docgen docs/api.md
"""

from __future__ import annotations

from pathlib import Path

#: Markers bracketing the generated block inside ``docs/api.md``.
BEGIN_MARKER = "<!-- BEGIN GENERATED (repro.api.docgen) -->"
END_MARKER = "<!-- END GENERATED (repro.api.docgen) -->"


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def workload_table() -> str:
    """One markdown table naming every registered workload."""
    from repro.api.workloads import get_workload, workload_names

    rows = []
    for name in workload_names():
        workload = get_workload(name)
        flag_groups = ", ".join(sorted(workload.flags)) or "—"
        rows.append([f"`{name}`", workload.summary, flag_groups])
    return _markdown_table(
        ["Workload", "What it runs", "Shared flag groups"], rows
    )


def backend_table() -> str:
    """One markdown table naming every registered kernel backend.

    Deliberately environment-*independent*: it lists each backend's
    requirement (the module that must be importable) rather than live
    availability, so the committed docs don't depend on which optional
    dependencies the regenerating machine happens to have.  Live
    availability is what ``python -m repro backends`` shows.
    """
    from repro.piecewise.backends import backend_names, get_backend

    rows = []
    for name in backend_names():
        backend = get_backend(name)
        requires = (
            "stdlib" if backend.requires is None else f"`{backend.requires}`"
        )
        batch = "yes" if backend.batch_capable else "no"
        rows.append(
            [
                f"`{name}`",
                requires,
                backend.exactness,
                batch,
                backend.description,
            ]
        )
    return _markdown_table(
        ["Backend", "Requires", "Exactness", "Batch", "Description"], rows
    )


def checks_table() -> str:
    """One markdown table naming every registered static checker."""
    from repro.checks import check_codes, get_check

    rows = []
    for code in check_codes():
        checker = get_check(code)
        rows.append(
            [
                f"`{code}`",
                f"`{checker.group}`",
                checker.severity,
                checker.summary,
            ]
        )
    return _markdown_table(["Code", "Group", "Severity", "Checks for"], rows)


def family_axes_tables() -> str:
    """One markdown section per scenario family, tables included."""
    from repro.engine.registry import family_names, get_family

    blocks = []
    for name in family_names():
        family = get_family(name)
        rows = []
        for axis in family.axes():
            default = (
                "*(required)*" if axis.required else f"`{axis.default!r}`"
            )
            rows.append(
                [f"`{axis.name}`", f"`{axis.type_name}`", default, axis.help]
            )
        blocks.append(
            f"### Family `{name}`\n\n{family.summary}.\n\n"
            + _markdown_table(
                ["Axis", "Type", "Default", "Description"], rows
            )
        )
    return "\n\n".join(blocks)


def generated_block() -> str:
    """The full generated block, markers included."""
    return "\n".join(
        [
            BEGIN_MARKER,
            "",
            "## Workloads",
            "",
            workload_table(),
            "",
            "## Kernel backends",
            "",
            "Generated from the kernel-backend registry "
            "(`repro.piecewise.backends`); select one per run with the "
            "uniform `--backend` flag (wire field `backend`).  The "
            "table lists *declared* capabilities — live availability "
            "in the current process is what `python -m repro backends` "
            "reports.",
            "",
            backend_table(),
            "",
            "## Static checkers",
            "",
            "Generated from the checker registry (`repro.checks`); run "
            "them with `python -m repro check`, select subsets with "
            "`--select`/`--ignore` (codes, groups or prefixes), and see "
            "`docs/checks.md` for what each invariant protects.",
            "",
            checks_table(),
            "",
            "## Scenario-family axes",
            "",
            "Generated from the engine registry "
            "(`ScenarioFamily.axes()`); campaign `axes`/`defaults` refer "
            "to these fields.",
            "",
            family_axes_tables(),
            "",
            END_MARKER,
        ]
    )


def inject(text: str) -> str:
    """Replace the generated block between the markers in ``text``."""
    begin = text.index(BEGIN_MARKER)
    end = text.index(END_MARKER) + len(END_MARKER)
    return text[:begin] + generated_block() + text[end:]


def main(path: str) -> None:
    """Rewrite the generated block of the file at ``path`` in place."""
    target = Path(path)
    target.write_text(inject(target.read_text()))


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1])
