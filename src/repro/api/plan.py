"""Scenario plans: what grid a record-streaming workload evaluates.

The ``sweep`` and ``campaign`` workloads share a shape: resolved
parameters determine a *manifest* (the grid-regeneration record a store
keeps), a concrete ordered scenario list, the family worker/decoder
that evaluates it, and a default sink name.  :func:`plan_scenarios`
computes that bundle once, from parameters alone — no execution — and
is the single source of truth used by

* the workload runners in :mod:`repro.api.workloads` (which feed the
  plan into :func:`repro.api.execution.execute_scenarios`), and
* the :mod:`repro.serve` job server (which evaluates the same plan
  against its shared store and streams the records back) — so a served
  request can never compile to a different grid than a local run of
  the same request.

The plan's scenarios are exactly what
:func:`repro.api.execution.manifest_scenarios` rebuilds from the
plan's manifest; ``tests/serve`` asserts the equivalence.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.utils.checks import require

#: Workloads that can be planned (and therefore served).
PLANNABLE_WORKLOADS = ("sweep", "campaign")


@dataclass(frozen=True)
class ScenarioPlan:
    """One record-streaming workload invocation, fully resolved.

    Attributes:
        workload: The planned workload name (``sweep``/``campaign``).
        manifest: Grid-regeneration parameters (what a store records).
        scenarios: The ordered scenario grid.
        worker: Module-level ``scenario -> result`` callable.
        group_by: Shared-artifact grouping key (family ``context_key``).
        decode: Record decoder for store-served results.
        sink_name: Default artifact stem (``results/<sink_name>.<fmt>``).
        extra: Rendering details (campaign/family names).
        batch_worker: The family's optional batch entry point
            ``(scenarios, *, backend) -> list[result]``; ``None`` for
            families without a struct-of-arrays kernel path.
    """

    workload: str
    manifest: dict[str, Any]
    scenarios: list[Any]
    worker: Callable[[Any], Any]
    group_by: Callable[[Any], Hashable] | None
    decode: Callable[[Mapping[str, Any]], Any] | None
    sink_name: str
    extra: dict[str, Any] = field(default_factory=dict)
    batch_worker: Callable[..., list[Any]] | None = None


def _plan_sweep(params: Mapping[str, Any]) -> ScenarioPlan:
    from repro.engine import (
        bound_result_from_record,
        evaluate_bound_batch,
        evaluate_bound_scenario,
        q_sweep_scenarios,
    )
    from repro.engine.sweeps import bound_context_key
    from repro.experiments import default_q_grid

    points, knots = params["points"], params["knots"]
    qs = default_q_grid(points=points)
    return ScenarioPlan(
        workload="sweep",
        manifest={"kind": "qsweep", "points": points, "knots": knots},
        scenarios=q_sweep_scenarios(qs, knots=knots),
        worker=evaluate_bound_scenario,
        group_by=bound_context_key,
        decode=bound_result_from_record,
        sink_name="sweep",
        batch_worker=evaluate_bound_batch,
    )


def _plan_campaign(params: Mapping[str, Any]) -> ScenarioPlan:
    from repro.api.workloads import campaign_overrides
    from repro.campaign import compile_campaign, resolve_spec

    spec = resolve_spec(params["spec"], campaign_overrides(params["set"]))
    compiled = compile_campaign(spec)
    return ScenarioPlan(
        workload="campaign",
        manifest={"kind": "campaign", "spec": compiled.spec},
        scenarios=compiled.scenarios,
        worker=compiled.family.worker,
        group_by=compiled.family.context_key,
        decode=compiled.family.decoder,
        sink_name=f"campaign-{compiled.name}",
        extra={
            "campaign": compiled.name,
            "family": compiled.family.name,
        },
        batch_worker=compiled.family.batch_worker,
    )


def plan_scenarios(
    workload: str, params: Mapping[str, Any]
) -> ScenarioPlan:
    """Resolve one plannable workload's parameters into its plan.

    Args:
        workload: ``"sweep"`` or ``"campaign"`` (see
            :data:`PLANNABLE_WORKLOADS`).
        params: The workload's *resolved* parameters
            (:meth:`repro.api.workloads.Workload.resolve_params`).

    Raises:
        ValueError: for non-plannable workloads — figure workloads fold
            their records into artifacts and are not servable streams.
    """
    require(
        workload in PLANNABLE_WORKLOADS,
        f"workload {workload!r} has no scenario plan; plannable "
        f"workloads: {', '.join(PLANNABLE_WORKLOADS)}",
    )
    if workload == "sweep":
        return _plan_sweep(params)
    return _plan_campaign(params)
