"""The unified programmatic facade (substrate S15): one typed surface
for every workload.

Before this package, the reproduction had five parallel ways to run
the same analyses — figure generators, raw ``run_batch`` /
``run_cached_batch`` calls, the campaign compiler and hand-written CLI
subcommands — each re-implementing ``--jobs/--store/--resume/--shard``
semantics.  ``repro.api`` collapses them into one pipeline:

* a :class:`RunRequest` freezes *what* to evaluate — a workload name
  (``fig2``/``fig4``/``fig5``/``validate``/``study``/``sweep``/
  ``campaign``/``merge``) plus parameters, with
  :meth:`RunRequest.family` exposing every registered scenario family
  through inline campaign specs;
* :class:`ExecutionOptions` freezes *how* — jobs, chunking, the
  persistent store, resume, shard slice, sinks and the results
  directory — parsed once and interpreted identically everywhere
  (:mod:`repro.api.execution`);
* :meth:`Workbench.run` evaluates the request and returns a
  :class:`RunResult` — records, typed payload, manifest, artifact
  paths, cache statistics and timing.

Every workload self-describes its parameters in the registry
(:mod:`repro.api.workloads`), which is what lets :mod:`repro.cli`
generate its subcommands declaratively and ``docs/api.md`` generate
its reference tables (:mod:`repro.api.docgen`).  The legacy entry
points (``generate_fig5``, ``acceptance_study``, ``campaign.run``,
direct ``run_cached_batch`` use) remain supported shims over the same
pipeline, so old callers and new ones produce byte-identical
artifacts.

Quick start::

    from repro.api import RunRequest, Workbench

    result = Workbench().run(RunRequest.make("fig5", points=8, knots=256))
    print(result.artifacts, result.seconds)

    # Any registered scenario family, campaign-style:
    result = Workbench().run(RunRequest.family(
        "bound",
        axes={"q": {"grid": [50.0, 100.0]},
              "function": {"grid": ["gaussian1"]}},
        defaults={"knots": 128},
    ))
"""

from repro.api.execution import (
    ScenarioRun,
    execute_scenarios,
    manifest_scenarios,
)
from repro.api.options import (
    ExecutionOptions,
    SinkSpec,
    format_shard,
    parse_shard,
)
from repro.api.request import RunRequest
from repro.api.result import RunError, RunResult
from repro.api.workloads import (
    Parameter,
    Workbench,
    Workload,
    get_workload,
    register_workload,
    run,
    workload_names,
)

__all__ = [
    "ExecutionOptions",
    "SinkSpec",
    "parse_shard",
    "format_shard",
    "RunRequest",
    "RunResult",
    "RunError",
    "ScenarioRun",
    "execute_scenarios",
    "manifest_scenarios",
    "Parameter",
    "Workload",
    "Workbench",
    "register_workload",
    "get_workload",
    "workload_names",
    "run",
]
