"""Execution options shared by every workload of the facade.

:class:`ExecutionOptions` is the one place the ``--jobs/--chunk/
--store/--resume/--shard`` + sink semantics live: the CLI parses its
shared flags into one instance, programmatic callers construct one
directly, and :mod:`repro.api.execution` interprets it identically for
every workload — so ``fig5``, ``study``, ``sweep`` and ``campaign``
cannot drift apart in how they cache, resume or shard.

The shard grammar (``i/N``, 1-based, leading zeros cosmetic) also lives
here; :func:`parse_shard` / :func:`format_shard` are re-exported by
:mod:`repro.cli` for backwards compatibility.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.utils.checks import require

#: Sink formats the facade understands.
SINK_FORMATS = ("jsonl", "csv")


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``i/N`` shard spec into ``(index, count)``.

    ``index`` is 1-based: ``1/4`` … ``4/4`` partition a sweep into four
    disjoint, deterministic slices (scenario ``k`` belongs to shard
    ``(k % N) + 1``), so independent machines can each run one shard
    and ``repro merge`` reassembles the full result set.

    Cosmetic variants (leading zeros, e.g. ``01/04``) parse to the
    same pair; :func:`format_shard` renders the canonical form, which
    is what gets recorded in stores so equal specs always compare
    equal.
    """
    match = re.fullmatch(r"(\d+)/(\d+)", spec)
    if match is None:
        raise ValueError(
            f"invalid shard spec {spec!r}: expected I/N, e.g. 2/4"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1:
        raise ValueError(
            f"invalid shard spec {spec!r}: shard count N must be >= 1"
        )
    if not 1 <= index <= count:
        raise ValueError(
            f"invalid shard spec {spec!r}: need 1 <= I <= N"
        )
    return index, count


def format_shard(index: int, count: int) -> str:
    """Canonical ``i/N`` rendering of a parsed shard spec."""
    return f"{index}/{count}"


def plan_fanout(
    n_scenarios: int, slots: int, min_per_shard: int = 2
) -> int:
    """How many shard sub-runs to split a grid across ``slots`` slots.

    Returns ``k`` such that ``1/k`` … ``k/k`` shard scopes partition
    the grid with at least ``min_per_shard`` scenarios per shard —
    splitting a tiny grid buys nothing and would change observable
    cache counters for no speedup.  ``k == 1`` means "run unsharded".

    Args:
        n_scenarios: Grid size.
        slots: Available execution slots (including the caller's own).
        min_per_shard: Smallest worthwhile shard.
    """
    require(min_per_shard >= 1, "min_per_shard must be >= 1")
    if slots <= 1 or n_scenarios < 2 * min_per_shard:
        return 1
    return max(1, min(slots, n_scenarios // min_per_shard))


@dataclass(frozen=True)
class SinkSpec:
    """One final-output file of a run.

    Attributes:
        path: Target file path.
        format: ``"jsonl"`` or ``"csv"``; ``None`` infers from the
            path suffix (``.csv`` → csv, anything else → jsonl).
    """

    path: str
    format: str | None = None

    def __post_init__(self) -> None:
        require(
            self.format is None or self.format in SINK_FORMATS,
            f"unknown sink format {self.format!r}; expected one of "
            f"{', '.join(SINK_FORMATS)}",
        )

    @property
    def resolved_format(self) -> str:
        """The effective format (explicit, else suffix-inferred)."""
        if self.format is not None:
            return self.format
        return "csv" if str(self.path).endswith(".csv") else "jsonl"


@dataclass(frozen=True)
class ExecutionOptions:
    """How a :class:`repro.api.RunRequest` is evaluated.

    Every knob is optional; the defaults reproduce the inline,
    store-less, unsharded single-machine run.

    Attributes:
        jobs: Batch-engine pool width (``None`` = inline reference
            path; results are bit-identical for every setting).
        chunk: Scenarios per engine chunk (``None`` = auto).
        store: Persistent result store — a path (opened, manifested and
            closed by the runner) or an already-open
            :class:`repro.store.ResultStore` (used as-is, caller owns
            its lifecycle and manifest).
        resume: Continue an interrupted run from an existing ``store``
            path; requires ``store`` and fails loudly when the store
            does not exist yet.
        shard: ``"i/N"`` slice of the scenario grid (1-based), or
            ``None`` for the full grid.  Validated at construction.
        sinks: Final-output files; strings are coerced to
            :class:`SinkSpec` with suffix-inferred formats.  Empty
            means "use the workload's default artifact path" (or no
            record output, for workloads without one).
        format: Default sink format when ``sinks`` is empty and the
            workload emits records to its default path.
        results_dir: Overrides the artifact directory (default: the
            ``REPRO_RESULTS_DIR`` environment variable or ``results/``).
        fail_after: Test seam — deterministically simulate a mid-run
            kill by raising :class:`KeyboardInterrupt` after N freshly
            checkpointed results (store-backed runs only).
        backend: Kernel backend evaluating the piecewise hot path
            (``None`` = the default ``vectorized`` per-scenario path).
            Validated against the :mod:`repro.piecewise.backends`
            registry at construction — an unknown name fails loudly
            with the available list.  Purely an execution knob: for
            bit-identical backends results, stores and job ids are
            unchanged.
        workers: Concurrent job slots a :mod:`repro.serve` server may
            use for this request (``None`` = server default).  Like
            ``jobs``/``backend`` this is purely an execution knob:
            results are bit-identical for every setting and the field
            is excluded from :func:`repro.serve.job_id_for` (servers
            drop it on submission).  Local runs ignore it.
    """

    jobs: int | None = None
    chunk: int | None = None
    store: Any = None
    resume: bool = False
    shard: str | None = None
    sinks: tuple[SinkSpec, ...] = field(default=())
    format: str = "jsonl"
    results_dir: str | Path | None = None
    fail_after: int | None = None
    backend: str | None = None
    workers: int | None = None

    def __post_init__(self) -> None:
        require(
            self.workers is None or self.workers >= 1,
            f"workers must be >= 1, got {self.workers!r}",
        )
        require(
            self.format in SINK_FORMATS,
            f"unknown sink format {self.format!r}; expected one of "
            f"{', '.join(SINK_FORMATS)}",
        )
        sinks = tuple(
            spec if isinstance(spec, SinkSpec) else SinkSpec(str(spec))
            for spec in self.sinks
        )
        object.__setattr__(self, "sinks", sinks)
        if self.shard is not None:
            parse_shard(self.shard)  # fail early on malformed specs
        if self.backend is not None:
            # Late import: options is a leaf module the CLI loads early.
            from repro.piecewise.backends import resolve_backend

            resolve_backend(self.backend)  # unknown/unavailable: fail now

    @property
    def shard_pair(self) -> tuple[int, int] | None:
        """The parsed ``(index, count)`` slice, or ``None``."""
        return None if self.shard is None else parse_shard(self.shard)

    @property
    def shard_scope(self) -> str:
        """The canonical scope a store records: ``i/N`` or ``full``."""
        if self.shard is None:
            return "full"
        return format_shard(*parse_shard(self.shard))
