"""Typed run requests: *what* to evaluate, separated from *how*.

A :class:`RunRequest` freezes one workload invocation — the workload
name (a :mod:`repro.api.workloads` registry key), its parameters, and
the :class:`~repro.api.options.ExecutionOptions` describing how to
evaluate it.  Requests are plain frozen dataclasses: hashable enough to
log, compare and replay, and the single argument
:meth:`repro.api.Workbench.run` accepts.

The scenario families of the engine registry are reached through the
``campaign`` workload: :meth:`RunRequest.family` builds the inline
campaign spec for a family + axes + defaults, and
:meth:`RunRequest.campaign` wraps a spec file, mapping or built-in
name.  Figure and validation workloads (``fig2``/``fig4``/``fig5``/
``validate``/``study``/``sweep``) are addressed by name with plain
keyword parameters.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.api.options import ExecutionOptions
from repro.utils.checks import require


#: Tag marking a tuple produced by freezing a mapping, so thawing can
#: tell real mappings apart from lists that merely look pair-shaped.
_MAPPING_TAG = "__frozen_mapping__"


def _freeze(value: Any) -> Any:
    """Coerce JSON-shaped parameter values into hashable frozen forms."""
    if isinstance(value, Mapping):
        return (
            _MAPPING_TAG,
            tuple((str(k), _freeze(v)) for k, v in value.items()),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze`; only tagged tuples become dicts."""
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] == _MAPPING_TAG
        and isinstance(value[1], tuple)
    ):
        return {key: _thaw(inner) for key, inner in value[1]}
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class RunRequest:
    """One frozen workload invocation.

    Attributes:
        workload: Registry key (see
            :func:`repro.api.workloads.workload_names`).
        params: Frozen ``(name, value)`` parameter pairs; mappings and
            lists are recursively frozen to tuples.  Use
            :meth:`params_dict` (or :meth:`make`) rather than building
            the tuples by hand.
        options: Execution options (jobs, store, resume, shard, sinks).
    """

    workload: str
    params: tuple[tuple[str, Any], ...] = field(default=())
    options: ExecutionOptions = field(default_factory=ExecutionOptions)

    def __post_init__(self) -> None:
        require(
            bool(self.workload),
            "RunRequest needs a non-empty workload name",
        )
        frozen = tuple(
            (str(name), _freeze(value)) for name, value in self.params
        )
        names = [name for name, _ in frozen]
        require(
            len(set(names)) == len(names),
            f"RunRequest repeats parameter(s): "
            f"{', '.join(sorted({n for n in names if names.count(n) > 1}))}",
        )
        object.__setattr__(self, "params", frozen)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def make(
        cls,
        workload: str,
        options: ExecutionOptions | None = None,
        **params: Any,
    ) -> "RunRequest":
        """Build a request from keyword parameters.

        ``RunRequest.make("fig5", points=40, knots=2048)`` is the
        ergonomic spelling of the frozen-pairs constructor.
        """
        return cls(
            workload=workload,
            params=tuple(params.items()),
            options=options if options is not None else ExecutionOptions(),
        )

    @classmethod
    def campaign(
        cls,
        spec: str | Mapping[str, Any],
        overrides: Mapping[str, Any] | None = None,
        options: ExecutionOptions | None = None,
    ) -> "RunRequest":
        """A campaign run from a spec mapping, spec file path or
        built-in name (``fig5``, ``study``, ``sim-validate``,
        ``edf-study``), optionally with ``--set``-style overrides."""
        return cls.make(
            "campaign",
            options,
            spec=spec if isinstance(spec, str) else dict(spec),
            set=dict(overrides) if overrides else {},
            collect=True,
        )

    @classmethod
    def family(
        cls,
        family: str,
        axes: Mapping[str, Any],
        defaults: Mapping[str, Any] | None = None,
        name: str | None = None,
        options: ExecutionOptions | None = None,
    ) -> "RunRequest":
        """A campaign run over one registered scenario family.

        The inline spec form of the facade: name a family from the
        engine registry, give each swept field an axis (see
        :mod:`repro.campaign.samplers`) and fix the rest with
        ``defaults``::

            RunRequest.family(
                "bound",
                axes={"q": {"grid": [50.0, 100.0]},
                      "function": {"grid": ["gaussian1"]}},
                defaults={"knots": 256},
            )
        """
        spec: dict[str, Any] = {"family": family, "axes": dict(axes)}
        if defaults:
            spec["defaults"] = dict(defaults)
        if name is not None:
            spec["name"] = name
        return cls.campaign(spec, options=options)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict (frozen mappings thawed)."""
        return {name: _thaw(value) for name, value in self.params}

    def with_options(self, options: ExecutionOptions) -> "RunRequest":
        """The same request under different execution options."""
        return RunRequest(
            workload=self.workload, params=self.params, options=options
        )
