"""The one scenario-evaluation pipeline behind every facade workload.

Before the facade, five entry points — ``experiments.generate_fig5``,
``engine.run_batch``, ``engine.run_cached_batch``, the campaign CLI and
the sweep CLI — each re-implemented the ``--jobs/--store/--resume/
--shard`` semantics.  :func:`execute_scenarios` is that logic exactly
once: shard slicing, resume validation, store lifecycle (manifest +
shard scope recording), cached-vs-fresh evaluation and the
``fail_after`` interruption seam, all driven by one
:class:`~repro.api.options.ExecutionOptions`.

Output-byte guarantees are inherited, not re-proven: the store path is
:func:`repro.engine.run_cached_batch` (byte-identical resume/merge) and
the direct path is :func:`repro.engine.run_batch` (bit-identical for
every worker count), so every workload built on this function gets the
same guarantees for free.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.options import ExecutionOptions, SinkSpec
from repro.engine.cached import Decoder, run_cached_batch
from repro.engine.engine import run_batch
from repro.engine.sinks import CsvSink, JsonlSink, ResultSink


@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of one :func:`execute_scenarios` call.

    Attributes:
        scenarios: The scenarios actually evaluated (the shard slice,
            when one was requested).
        results: Collected results in scenario order, or ``None`` for
            stream-only (``collect=False``) runs.
        total: ``len(scenarios)``.
        cached: Scenarios served from the store without recomputation.
        computed: Scenarios freshly evaluated this run.
    """

    scenarios: list[Any]
    results: list[Any] | None
    total: int
    cached: int
    computed: int


def effective_results_dir(options: ExecutionOptions) -> Path:
    """The artifact directory an options object selects.

    ``options.results_dir`` wins; otherwise the environment-driven
    default of :func:`repro.experiments.io.results_dir` applies.  The
    directory is created on demand either way.
    """
    if options.results_dir is None:
        from repro.experiments.io import results_dir

        return results_dir()
    root = Path(options.results_dir)
    root.mkdir(parents=True, exist_ok=True)
    return root


def resolve_sinks(
    options: ExecutionOptions, default_name: str | None
) -> tuple[SinkSpec, ...]:
    """The final-output sinks of a run.

    Explicit ``options.sinks`` win; otherwise a single default sink
    ``<results_dir>/<default_name>.<format>`` is used (``None`` means
    the workload has no record output and the result is empty).
    """
    if options.sinks:
        return options.sinks
    if default_name is None:
        return ()
    path = effective_results_dir(options) / f"{default_name}.{options.format}"
    return (SinkSpec(str(path), options.format),)


class TeeSink(ResultSink):
    """Fan one record stream out to several sinks."""

    def __init__(self, sinks: Sequence[ResultSink]) -> None:
        self._sinks = list(sinks)

    def write(self, record: Mapping[str, Any]) -> None:
        for sink in self._sinks:
            sink.write(record)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def open_sink(specs: Sequence[SinkSpec]) -> ResultSink | None:
    """Open the sink(s) a spec list describes (``None`` for empty)."""
    if not specs:
        return None
    sinks: list[ResultSink] = [
        CsvSink(spec.path)
        if spec.resolved_format == "csv"
        else JsonlSink(spec.path)
        for spec in specs
    ]
    return sinks[0] if len(sinks) == 1 else TeeSink(sinks)


def check_resume(options: ExecutionOptions) -> None:
    """Validate the ``resume``/``store`` combination.

    Raises:
        ValueError: when ``resume`` is set without a store, or with a
            store path that does not exist yet.
    """
    if not options.resume:
        return
    if options.store is None:
        raise ValueError("--resume requires --store")
    if isinstance(options.store, (str, Path)) and not Path(
        options.store
    ).exists():
        raise ValueError(
            f"--resume: store {options.store} does not exist"
        )


@contextmanager
def open_store(options: ExecutionOptions):
    """Yield ``(store, owned)`` for the options' store setting.

    A path opens a :class:`repro.store.ResultStore` under the package
    fingerprint and closes it afterwards (``owned=True`` — the runner
    records manifest and shard scope).  An already-open store instance
    is passed through untouched (``owned=False`` — the caller owns its
    lifecycle, manifest and scope), which is what keeps the legacy
    ``store=`` parameters of :func:`repro.experiments.generate_fig5`
    and friends byte-compatible.
    """
    check_resume(options)
    if options.store is None:
        yield None, False
        return
    if isinstance(options.store, (str, Path)):
        from repro.store import ResultStore, package_fingerprint

        with ResultStore(
            options.store, fingerprint=package_fingerprint("repro")
        ) as store:
            yield store, True
        return
    yield options.store, False


def execute_scenarios(
    worker: Callable[[Any], Any],
    scenarios: Sequence[Any],
    *,
    options: ExecutionOptions | None = None,
    manifest: Mapping[str, Any] | None = None,
    group_by: Callable[[Any], Hashable] | None = None,
    decode: Decoder | None = None,
    collect: bool = True,
    sink: ResultSink | None = None,
    batch_worker: Callable[..., list[Any]] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> ScenarioRun:
    """Evaluate a scenario grid under one set of execution options.

    Args:
        worker: Module-level callable ``scenario -> result`` (a
            family's worker).
        scenarios: The *full* grid; shard slicing happens here.
        options: Execution options (default: inline, store-less).
        manifest: Grid-regeneration parameters, recorded into stores
            this call opens itself (path stores) so ``repro merge``
            can re-emit the final output.
        group_by: Shared-artifact grouping key (a family's
            ``context_key``).
        decode: Record decoder for store-served results, so cached and
            fresh results come back as the same types.
        collect: ``False`` streams to ``sink`` only (constant memory).
        sink: Optional final-output sink, written in scenario order.
        batch_worker: Optional family batch entry point
            ``(scenarios, *, backend) -> list[result]``; engaged when
            ``options.backend`` names a batch-capable kernel backend
            (see :meth:`repro.engine.BatchEngine.map`).
        cancel: Optional cancellation predicate, forwarded to
            :func:`repro.engine.run_cached_batch` (store-backed runs
            only — a run with nowhere to checkpoint has nothing to
            resume, so cancelling it mid-flight would just lose work).

    Returns:
        The :class:`ScenarioRun` with results and cache statistics.
    """
    if options is None:
        options = ExecutionOptions()
    pair = options.shard_pair
    sliced = (
        list(scenarios)
        if pair is None
        else list(scenarios[pair[0] - 1 :: pair[1]])
    )

    fail_after = options.fail_after
    on_result: Callable[[int], None] | None = None
    if fail_after is not None:

        def on_result(count: int) -> None:
            if count >= fail_after:
                raise KeyboardInterrupt

    with open_store(options) as (store, owned):
        if store is not None:
            if owned:
                if manifest is not None:
                    store.set_manifest(dict(manifest))
                store.set_shard(options.shard_scope)
                from repro.piecewise.backends import (
                    DEFAULT_BACKEND,
                    get_backend,
                )

                effective = options.backend or DEFAULT_BACKEND
                store.set_backend_info(
                    effective, get_backend(effective).exactness
                )
            run = run_cached_batch(
                worker,
                sliced,
                store,
                sink=sink,
                collect=collect,
                decode=decode,
                max_workers=options.jobs,
                chunk_size=options.chunk,
                on_result=on_result,
                group_by=group_by,
                cancel=cancel,
                backend=options.backend,
                batch_worker=batch_worker,
            )
            return ScenarioRun(
                scenarios=sliced,
                results=run.results,
                total=run.total,
                cached=run.cached,
                computed=run.computed,
            )
    results = run_batch(
        worker,
        sliced,
        max_workers=options.jobs,
        chunk_size=options.chunk,
        sink=sink,
        collect=collect,
        group_by=group_by,
        backend=options.backend,
        batch_worker=batch_worker,
    )
    return ScenarioRun(
        scenarios=sliced,
        results=results,
        total=len(sliced),
        cached=0,
        computed=len(sliced),
    )


def manifest_scenarios(manifest: Mapping[str, Any]) -> list[Any]:
    """Rebuild the scenario grid a store manifest describes.

    The inverse of the ``manifest=`` argument above, used by ``repro
    merge`` to re-emit a merged store's final output in the original
    stream order.  Knows every grid-shaped workload's manifest kind.
    """
    kind = manifest.get("kind")
    if kind == "qsweep":
        from repro.engine import q_sweep_scenarios
        from repro.experiments import default_q_grid

        qs = default_q_grid(points=manifest["points"])
        return q_sweep_scenarios(qs, knots=manifest["knots"])
    if kind == "study":
        from repro.experiments.schedulability_study import (
            reference_study_scenarios,
        )

        return reference_study_scenarios(
            n_tasks=manifest["tasks"], sets_per_point=manifest["sets"]
        )
    if kind == "campaign":
        from repro.campaign import compile_campaign

        return compile_campaign(manifest["spec"]).scenarios
    raise ValueError(
        f"unsupported sweep manifest {dict(manifest)!r}; expected kind "
        "'qsweep', 'study' or 'campaign'"
    )
