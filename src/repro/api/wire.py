"""Wire (de)serialization of requests: the facade's network form.

:class:`~repro.api.request.RunRequest` is already wire-protocol-shaped
— a workload name plus JSON-shaped parameters plus validated execution
options — but its frozen in-memory form (tagged tuples, ``SinkSpec``
instances, possibly an open store object) is not itself JSON.  This
module defines the canonical JSON mapping both directions:

* :func:`request_to_wire` / :func:`request_from_wire` — the full
  request, options included;
* :func:`options_to_wire` / :func:`options_from_wire` — the execution
  options alone (only JSON-representable settings: an *open store
  instance* cannot travel and fails loudly).

The round trip is exact where it matters: a request rebuilt from its
wire form compiles to the **same scenario grid with the same
content-addressed store keys** (:func:`repro.store.scenario_key`), so a
client submitting a serialized request to :mod:`repro.serve` addresses
exactly the rows a local :meth:`~repro.api.Workbench.run` would.
``tests/serve/test_wire_roundtrip.py`` property-checks this for every
registered workload and scenario family.

Wire format (version :data:`WIRE_VERSION`)::

    {"version": 1,
     "workload": "campaign",
     "params":   {...},          # RunRequest.params_dict()
     "options":  {...}}          # omitted when all-default
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.api.options import ExecutionOptions, SinkSpec
from repro.api.request import RunRequest
from repro.utils.checks import require

#: Bump when the wire mapping changes incompatibly; checked on decode.
WIRE_VERSION = 1

#: ExecutionOptions fields that travel verbatim (JSON scalars).
_SCALAR_OPTION_FIELDS = (
    "jobs",
    "chunk",
    "resume",
    "shard",
    "format",
    "fail_after",
    "backend",
    "workers",
)

#: ExecutionOptions fields with bespoke wire encodings below.  Together
#: with the scalar tuple this must cover every ExecutionOptions field —
#: the RC004 contract check (repro.checks.contracts) enforces it.
_COMPOUND_OPTION_FIELDS = ("store", "results_dir", "sinks")

#: Top-level wire request keys; "version" plus every RunRequest field
#: (also enforced by RC004).
_REQUEST_FIELDS = ("version", "workload", "params", "options")


def options_to_wire(options: ExecutionOptions) -> dict[str, Any]:
    """The JSON mapping of one options object (defaults omitted).

    Raises:
        ValueError: when the options hold an open store *instance* —
            only path-addressed stores can travel over the wire.
    """
    defaults = ExecutionOptions()
    wire: dict[str, Any] = {}
    for name in _SCALAR_OPTION_FIELDS:
        value = getattr(options, name)
        if value != getattr(defaults, name):
            wire[name] = value
    if options.store is not None:
        require(
            isinstance(options.store, (str, Path)),
            "cannot serialize an open store instance to the wire; pass "
            "the store as a path",
        )
        wire["store"] = str(options.store)
    if options.results_dir is not None:
        wire["results_dir"] = str(options.results_dir)
    if options.sinks:
        wire["sinks"] = [
            {"path": spec.path, "format": spec.format}
            for spec in options.sinks
        ]
    return wire


def options_from_wire(payload: Mapping[str, Any]) -> ExecutionOptions:
    """Rebuild :class:`ExecutionOptions` from its wire mapping."""
    require(
        isinstance(payload, Mapping),
        f"wire options must be a mapping, got {type(payload).__name__}",
    )
    known = set(_SCALAR_OPTION_FIELDS) | set(_COMPOUND_OPTION_FIELDS)
    unknown = sorted(set(payload) - known)
    require(
        not unknown,
        f"wire options carry unknown field(s): {', '.join(unknown)}",
    )
    kwargs: dict[str, Any] = {
        name: payload[name]
        for name in _SCALAR_OPTION_FIELDS
        if name in payload
    }
    if "store" in payload:
        kwargs["store"] = str(payload["store"])
    if "results_dir" in payload:
        kwargs["results_dir"] = str(payload["results_dir"])
    if "sinks" in payload:
        sinks = payload["sinks"]
        require(
            isinstance(sinks, (list, tuple)),
            f"wire options 'sinks' must be a list, got {sinks!r}",
        )
        kwargs["sinks"] = tuple(
            SinkSpec(str(spec["path"]), spec.get("format"))
            for spec in sinks
        )
    return ExecutionOptions(**kwargs)


def request_to_wire(request: RunRequest) -> dict[str, Any]:
    """The JSON mapping of one request (see the module docstring)."""
    wire: dict[str, Any] = {
        "version": WIRE_VERSION,
        "workload": request.workload,
        "params": request.params_dict(),
    }
    options = options_to_wire(request.options)
    if options:
        wire["options"] = options
    return wire


def request_from_wire(payload: Mapping[str, Any]) -> RunRequest:
    """Rebuild a :class:`RunRequest` from its wire mapping.

    Raises:
        ValueError: for non-mappings, unsupported wire versions,
            missing/odd fields — every malformed input fails with a
            message, never a ``KeyError``/``TypeError`` traceback, so
            the server can turn any bad submission into an error frame.
    """
    require(
        isinstance(payload, Mapping),
        f"wire request must be a mapping, got {type(payload).__name__}",
    )
    version = payload.get("version", WIRE_VERSION)
    require(
        version == WIRE_VERSION,
        f"unsupported wire version {version!r}; this build speaks "
        f"version {WIRE_VERSION}",
    )
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    require(
        not unknown,
        f"wire request carries unknown field(s): {', '.join(unknown)}",
    )
    workload = payload.get("workload")
    require(
        isinstance(workload, str) and bool(workload),
        f"wire request needs a workload name, got {workload!r}",
    )
    params = payload.get("params", {})
    require(
        isinstance(params, Mapping),
        f"wire request 'params' must be a mapping, got {params!r}",
    )
    options = options_from_wire(payload.get("options", {}))
    return RunRequest(
        workload=workload,
        params=tuple(params.items()),
        options=options,
    )


def dumps_request(request: RunRequest) -> str:
    """One-line strict-JSON rendering of ``request``.

    Key order is *preserved*, never sorted: campaign ``axes`` are an
    ordered mapping (axis order defines grid enumeration order), so
    sorting would silently reorder the scenario grid.  Canonicalized
    ordering happens where identity is computed —
    :func:`repro.store.keys.canonical_bytes` — not on the transport.
    """
    try:
        return json.dumps(
            request_to_wire(request),
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"request is not wire-serializable: {exc}"
        ) from exc


def loads_request(text: str | bytes) -> RunRequest:
    """Parse the JSON produced by :func:`dumps_request`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"wire request is not valid JSON: {exc}") from exc
    return request_from_wire(payload)
