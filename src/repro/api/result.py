"""Typed run results: everything one workload evaluation produced.

Every facade run — figure regeneration, validation fuzzing, engine
sweep, declarative campaign — returns one :class:`RunResult`: the
records it streamed, the typed payload it built (``Fig5Data``, a
``ValidationReport``, study points…), the artifact files it wrote, the
manifest regenerating its scenario grid, cache statistics and timing.
Frontends render from this object; nothing about a run's outcome lives
only in printed text.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.api.request import RunRequest


class RunError(RuntimeError):
    """A run that failed for a non-usage reason (CLI exit code 1).

    Distinct from :class:`ValueError` (invalid parameters / store
    misuse, CLI exit code 2) and from
    :class:`repro.engine.WorkerError` (a failing scenario worker).
    """


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`repro.api.Workbench.run` call.

    Attributes:
        request: The request that produced this result.
        ok: Whether the workload's own acceptance check passed (e.g.
            Theorem 1 held, the Figure 2 counterexample reproduced);
            always ``True`` for workloads without one.
        payload: The workload's typed result object (``Fig4Data``,
            ``Fig5Data``, ``Figure2Demo``, ``ValidationReport``, a list
            of ``StudyPoint``…), or ``None`` for stream-only runs.
        records: Collected result records/objects in scenario order, or
            ``None`` when the run streamed without collecting.
        manifest: The parameters that regenerate the run's scenario
            grid (what a store-backed run records so ``repro merge``
            can re-emit it), or ``None`` for non-grid workloads.
        artifacts: Files written (figure CSVs, sink outputs, stores).
        total: Scenarios evaluated (post-shard), for grid workloads.
        cached: Scenarios served from the store without recomputation.
        computed: Scenarios freshly evaluated this run.
        seconds: Wall-clock duration of the workload runner.
        extra: Workload-specific rendering details (e.g. the campaign
            name, convergence counts).
    """

    request: RunRequest
    ok: bool = True
    payload: Any = None
    records: tuple[Any, ...] | None = None
    manifest: Mapping[str, Any] | None = None
    artifacts: tuple[str, ...] = field(default=())
    total: int = 0
    cached: int = 0
    computed: int = 0
    seconds: float = 0.0
    extra: Mapping[str, Any] = field(default_factory=dict)
