"""Strict-JSON value mapping shared by the sinks and the result store.

Sweep records may legitimately contain non-finite floats (a diverged
bound is ``inf``), but strict JSON has no syntax for them and
``json.dump`` would emit bare ``Infinity``/``NaN`` tokens that ``jq``,
pandas and every non-Python consumer reject.  Both the streaming sinks
(:mod:`repro.engine.sinks`) and the persistent store
(:mod:`repro.store.backend`) therefore route every value through
:func:`json_safe` — one definition, so a record checkpointed to the
store serializes byte-identically to one streamed straight to a sink.
"""

from __future__ import annotations

import math
from typing import Any


def json_safe(value: Any) -> Any:
    """Map non-finite floats to their ``repr`` strings; pass the rest.

    Returns ``'inf'``, ``'-inf'`` or ``'nan'`` for the three non-finite
    floats, and ``value`` unchanged otherwise.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf', '-inf' or 'nan'
    return value
