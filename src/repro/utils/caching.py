"""Shared sizing knob for the per-process memo caches.

The engine keeps several per-process LRU memos (flattened
``SegmentIndex`` arrays, shared-artifact ``AnalysisContext`` objects,
batched kernel grids).  Historically each had its own hard-coded
default and no runtime control, so a campaign whose working set
exceeded one of the defaults would silently thrash that cache while
the others sat oversized.  This module provides the one surface that
sizes them all:

* ``REPRO_CACHE_SIZE`` — environment variable overriding every memo's
  default capacity (one positive integer);
* :class:`SwappableLRU` — an ``functools.lru_cache`` wrapper whose
  capacity can be rebuilt at runtime (``resize()``), used instead of
  the bare decorator so the environment override and programmatic
  resizing share one code path.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from functools import lru_cache

from repro.utils.checks import require

#: Environment variable naming the shared memo-cache capacity.
CACHE_SIZE_ENV = "REPRO_CACHE_SIZE"


def cache_size(default: int) -> int:
    """Effective capacity for a memo cache with the given default.

    Reads ``REPRO_CACHE_SIZE`` at call time; an unset or empty variable
    yields ``default``.  A set value must be a positive integer and
    applies uniformly to every cache that consults this helper.

    Raises:
        ValueError: if the variable is set to a non-integer or a value
            below 1.
    """
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{CACHE_SIZE_ENV} must be a positive integer, got {raw!r}"
        ) from None
    require(value >= 1, f"{CACHE_SIZE_ENV} must be >= 1, got {value}")
    return value


class SwappableLRU:
    """An LRU memo whose capacity can be rebuilt at runtime.

    Behaves like ``functools.lru_cache(maxsize=...)(fn)`` — including
    ``cache_clear()`` and ``cache_info()`` — but the capacity is
    resolved through :func:`cache_size` (so ``REPRO_CACHE_SIZE``
    applies) and can be changed later with :meth:`resize`, which the
    bare decorator cannot do.  Resizing drops all memoised entries.

    Args:
        fn: The function to memoise (arguments must be hashable).
        default_size: Capacity used when ``REPRO_CACHE_SIZE`` is unset.
    """

    def __init__(self, fn: Callable, default_size: int):
        require(default_size >= 1, "default_size must be >= 1")
        self._fn = fn
        self._default_size = default_size
        self._cached = lru_cache(maxsize=cache_size(default_size))(fn)
        self.__doc__ = fn.__doc__
        self.__name__ = getattr(fn, "__name__", "SwappableLRU")
        self.__wrapped__ = fn

    def __call__(self, *args):
        return self._cached(*args)

    def resize(self, size: int | None = None) -> None:
        """Rebuild the memo with a new capacity (entries are dropped).

        Args:
            size: New capacity; ``None`` re-resolves the default through
                :func:`cache_size` (picking up ``REPRO_CACHE_SIZE``).
        """
        if size is None:
            size = cache_size(self._default_size)
        require(size >= 1, f"cache size must be >= 1, got {size}")
        self._cached = lru_cache(maxsize=size)(self._fn)

    def cache_clear(self) -> None:
        """Drop all memoised entries (capacity is unchanged)."""
        self._cached.cache_clear()

    def cache_info(self):
        """The underlying ``functools`` cache statistics."""
        return self._cached.cache_info()
