"""Sequence and arithmetic helpers."""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")


def pairwise(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """Yield consecutive pairs ``(items[k], items[k + 1])``."""
    iterator = iter(items)
    try:
        previous = next(iterator)
    except StopIteration:
        return
    for current in iterator:
        yield previous, current
        previous = current


def is_strictly_increasing(values: Sequence[float]) -> bool:
    """Return ``True`` when every element is strictly larger than the previous."""
    return all(a < b for a, b in pairwise(values))


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers."""
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"lcm is only defined for positive integers, got {value}")
        result = math.lcm(result, value)
    return result
