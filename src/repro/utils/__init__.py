"""Small shared helpers used across the :mod:`repro` package.

Argument-validation guards (:func:`require` and friends, raising
``ValueError`` with a caller-supplied message) and sequence utilities
(strict monotonicity checks, many-operand LCM, pairwise iteration).
Every layer depends on these and nothing else, keeping the dependency
graph a clean DAG.
"""

from repro.utils.checks import require, require_non_negative, require_positive
from repro.utils.seq import is_strictly_increasing, lcm_many, pairwise

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "is_strictly_increasing",
    "lcm_many",
    "pairwise",
]
