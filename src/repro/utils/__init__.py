"""Small shared helpers used across the :mod:`repro` package."""

from repro.utils.checks import require, require_positive, require_non_negative
from repro.utils.seq import is_strictly_increasing, lcm_many, pairwise

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "is_strictly_increasing",
    "lcm_many",
    "pairwise",
]
