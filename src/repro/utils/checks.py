"""Argument-validation helpers.

All public entry points of the library validate their inputs eagerly and
raise :class:`ValueError` with a descriptive message, so that misuse fails
at the call site rather than deep inside an analysis loop.
"""

from __future__ import annotations

import math


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    require(
        isinstance(value, (int, float)) and math.isfinite(value) and value > 0,
        f"{name} must be a finite positive number, got {value!r}",
    )


def require_non_negative(value: float, name: str) -> None:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    require(
        isinstance(value, (int, float)) and math.isfinite(value) and value >= 0,
        f"{name} must be a finite non-negative number, got {value!r}",
    )
