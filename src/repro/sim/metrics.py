"""Aggregate metrics over simulation results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import SimulationResult


@dataclass(frozen=True, slots=True)
class TaskMetrics:
    """Per-task summary of one simulation run.

    Attributes:
        task: Task name.
        jobs: Number of jobs released.
        completed: Number that finished within the horizon.
        max_total_delay: Largest cumulative preemption delay of any job.
        max_preemptions: Largest preemption count of any job.
        max_response_time: Largest observed response time (completed jobs).
        deadline_misses: Jobs that missed their deadline.
    """

    task: str
    jobs: int
    completed: int
    max_total_delay: float
    max_preemptions: int
    max_response_time: float
    deadline_misses: int


def task_metrics(result: SimulationResult, task_name: str) -> TaskMetrics:
    """Summarise one task's behaviour in a run."""
    jobs = result.jobs_of(task_name)
    completed = [j for j in jobs if j.finished]
    misses = [j for j in result.deadline_misses() if j.task.name == task_name]
    return TaskMetrics(
        task=task_name,
        jobs=len(jobs),
        completed=len(completed),
        max_total_delay=max((j.total_delay for j in jobs), default=0.0),
        max_preemptions=max(
            (len(j.delays_charged) for j in jobs), default=0
        ),
        max_response_time=max(
            (j.response_time for j in completed), default=0.0
        ),
        deadline_misses=len(misses),
    )


def all_task_metrics(result: SimulationResult) -> dict[str, TaskMetrics]:
    """Summaries for every task appearing in the run."""
    names = {j.task.name for j in result.jobs}
    return {name: task_metrics(result, name) for name in sorted(names)}
