"""Release-pattern generators for the simulator.

A release pattern is simply a sorted list of ``(time, task_name)``
pairs.  Besides the standard synchronous-periodic and sporadic patterns,
:func:`saturating_releases` builds the adversarial pattern used to stress
Theorem 1: interferer jobs arriving densely enough that the target task
is preempted at (nearly) every NPR boundary.
"""

from __future__ import annotations

import random

from repro.tasks.task import TaskSet
from repro.utils.checks import require, require_positive

Release = tuple[float, str]


def periodic_releases(
    tasks: TaskSet,
    horizon: float,
    offsets: dict[str, float] | None = None,
) -> list[Release]:
    """Strictly periodic releases (synchronous unless offsets given)."""
    require_positive(horizon, "horizon")
    offsets = offsets or {}
    releases: list[Release] = []
    for task in tasks:
        t = offsets.get(task.name, 0.0)
        require(t >= 0, f"offset of {task.name} must be >= 0")
        while t < horizon:
            releases.append((t, task.name))
            t += task.period
    releases.sort()
    return releases


def sporadic_releases(
    tasks: TaskSet,
    horizon: float,
    seed: int,
    max_extra_fraction: float = 0.5,
) -> list[Release]:
    """Sporadic releases: inter-arrival = period * (1 + U[0, extra])."""
    require_positive(horizon, "horizon")
    require(
        max_extra_fraction >= 0, "max_extra_fraction must be >= 0"
    )
    rng = random.Random(seed)
    releases: list[Release] = []
    for task in tasks:
        t = rng.uniform(0.0, task.period)
        while t < horizon:
            releases.append((t, task.name))
            t += task.period * (1.0 + rng.uniform(0.0, max_extra_fraction))
    releases.sort()
    return releases


def saturating_releases(
    target_name: str,
    interferer_name: str,
    target_release: float,
    target_q: float,
    horizon: float,
    interferer_cost: float = 0.0,
    spacing_slack: float = 0.0,
    first_offset: float = 1e-3,
) -> list[Release]:
    """An adversarial pattern preempting the target as often as possible.

    The target is released once; the first interferer arrives just after
    the target has started (``first_offset`` later), and subsequent ones
    every ``target_q + interferer_cost + spacing_slack``.  Each arrival
    triggers a fresh floating NPR of the target, so the target is
    preempted at (approximately) every ``Q`` boundary — the scenario
    Algorithm 1 charges for.

    ``interferer_cost`` should cover *only* the interferer's execution
    time: the worst case has the next arrival land while the target is
    still paying its reload delay, so that the following NPR window
    absorbs the payment and the target progresses only ``Q - delay``
    between preemptions (exactly the recurrence of Algorithm 1).

    Args:
        target_name: Task to be preempted.
        interferer_name: Higher-priority task doing the preempting.
        target_release: When the target job arrives.
        target_q: The target's NPR length.
        horizon: End of the release pattern.
        interferer_cost: Wall time of one preemptor execution.
        spacing_slack: Extra spacing between interferer arrivals (0 =
            maximum pressure).
        first_offset: Gap between the target's release and the first
            interferer arrival (must let the target get dispatched).
    """
    require_positive(target_q, "target_q")
    require_positive(horizon, "horizon")
    require(spacing_slack >= 0, "spacing_slack must be >= 0")
    require(interferer_cost >= 0, "interferer_cost must be >= 0")
    require_positive(first_offset, "first_offset")
    releases: list[Release] = [(target_release, target_name)]
    t = target_release + first_offset
    step = target_q + interferer_cost + spacing_slack
    while t < horizon:
        releases.append((t, interferer_name))
        t += step
    releases.sort()
    return releases
