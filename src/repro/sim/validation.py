"""Empirical validation of Theorem 1 (experiment EXT-A; see docs/paper_mapping.md).

For every completed job in a simulation, the cumulative preemption delay
observed at run time must be bounded by Algorithm 1's static bound for
that task's ``(f_i, Q_i)``.  :func:`validate_simulation` checks exactly
that; :func:`validation_campaign` fuzzes release patterns and delay
models to hunt for counterexamples (none exist, per Theorem 1 — the
campaign is the reproduction's executable proof-check).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.floating_npr import floating_npr_delay_bound
from repro.sim.release import periodic_releases, sporadic_releases
from repro.sim.simulator import (
    FloatingNPRSimulator,
    SimulationResult,
    scaled_delay_model,
    worst_case_delay_model,
)
from repro.tasks.task import TaskSet
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class JobViolation:
    """A job whose measured delay exceeded the static bound (never
    produced by a correct implementation; surfaced for debugging)."""

    task: str
    job_id: int
    measured: float
    bound: float


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Outcome of one bound-versus-simulation check.

    Attributes:
        checked_jobs: Number of jobs compared against their bound.
        max_tightness: Largest observed ``measured / bound`` ratio over
            jobs with a positive bound (1.0 = the bound was reached).
        violations: Jobs exceeding the bound (empty iff Theorem 1 holds).
    """

    checked_jobs: int
    max_tightness: float
    violations: tuple[JobViolation, ...]

    @property
    def passed(self) -> bool:
        """Whether no job exceeded its static bound."""
        return not self.violations


def validate_simulation(
    tasks: TaskSet,
    result: SimulationResult,
    tolerance: float = 1e-6,
) -> ValidationReport:
    """Compare every job's measured delay with Algorithm 1's bound."""
    bounds: dict[str, float] = {}
    for task in tasks:
        if task.delay_function is None or task.npr_length is None:
            bounds[task.name] = math.inf if task.npr_length is None else 0.0
            continue
        bounds[task.name] = floating_npr_delay_bound(
            task.delay_function, task.npr_length
        ).total_delay

    checked = 0
    tightness = 0.0
    violations: list[JobViolation] = []
    for job in result.jobs:
        bound = bounds[job.task.name]
        if math.isinf(bound):
            continue
        checked += 1
        measured = job.total_delay
        if bound > 0:
            tightness = max(tightness, measured / bound)
        if measured > bound + tolerance:
            violations.append(
                JobViolation(
                    task=job.task.name,
                    job_id=job.job_id,
                    measured=measured,
                    bound=bound,
                )
            )
    return ValidationReport(
        checked_jobs=checked,
        max_tightness=tightness,
        violations=tuple(violations),
    )


def reference_validation_task_set(q: float, knots: int = 512) -> TaskSet:
    """The canonical 3-task set the validation frontends fuzz.

    One low-priority target carrying the ``gaussian2`` benchmark delay
    function with NPR length ``q``, under two fast high-priority
    interferers — shared by ``python -m repro validate`` (the
    ``validate`` workload of :mod:`repro.api`) and
    :func:`repro.experiments.generate_all`, so the CLI and programmatic
    campaigns fuzz the same instance.
    """
    from repro.experiments.functions_fig4 import fig4_delay_function
    from repro.tasks.task import Task

    f = fig4_delay_function("gaussian2", knots=knots)
    return TaskSet(
        [
            Task(
                "target", 4000.0, 40_000.0, npr_length=q, delay_function=f
            ),
            Task("hp1", 40.0, 900.0),
            Task("hp2", 25.0, 2100.0),
        ]
    ).rate_monotonic()


def validation_campaign(
    tasks: TaskSet,
    policy: str,
    seeds: range,
    horizon: float,
    sporadic: bool = True,
) -> ValidationReport:
    """Fuzz release patterns and delay fractions; merge the reports.

    Args:
        tasks: Task set with ``f_i`` and ``Q_i`` attached.
        policy: ``"fp"`` or ``"edf"``.
        seeds: Seeds for the randomized patterns/models.
        horizon: Simulated time per run.
        sporadic: Randomize inter-arrival times too.

    Returns:
        The merged :class:`ValidationReport` over all runs.
    """
    require(len(seeds) > 0, "need at least one seed")
    total_checked = 0
    max_tightness = 0.0
    all_violations: list[JobViolation] = []
    for seed in seeds:
        rng = random.Random(seed)
        if sporadic and seed % 2 == 1:
            releases = sporadic_releases(tasks, horizon, seed=seed)
        else:
            offsets = {
                t.name: rng.uniform(0, t.period) for t in tasks
            }
            releases = periodic_releases(tasks, horizon, offsets=offsets)
        model = (
            worst_case_delay_model
            if seed % 3 == 0
            else scaled_delay_model(rng.random())
        )
        sim = FloatingNPRSimulator(tasks, policy=policy, delay_model=model)
        result = sim.run(releases, horizon)
        report = validate_simulation(tasks, result)
        total_checked += report.checked_jobs
        max_tightness = max(max_tightness, report.max_tightness)
        all_violations.extend(report.violations)
    return ValidationReport(
        checked_jobs=total_checked,
        max_tightness=max_tightness,
        violations=tuple(all_violations),
    )
