"""Run-time job state for the floating-NPR simulator.

A job tracks its *progression* (useful work completed, the abscissa of
the paper's ``f_i``) separately from *pending delay* (reload work owed
because of an earlier preemption).  When a preempted job resumes it first
pays the pending delay, then continues useful work — exactly the run-time
behaviour sketched in the paper's Figure 2 bottom plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tasks.task import Task
from repro.utils.checks import require


@dataclass
class Job:
    """One job instance inside the simulator.

    Attributes:
        task: The generating task.
        release_time: Absolute release instant.
        absolute_deadline: ``release_time + D_i``.
        job_id: Sequential id within the simulation (for traceability).
        progression: Useful work executed so far (0 .. C_i).
        pending_delay: Reload work owed before useful work can resume.
        delay_paid: Delay already paid (sum of consumed reload work).
        delays_charged: Delay charged at each preemption, in order.
        preemption_progressions: Progression at each preemption.
        preemption_times: Wall-clock instant of each preemption; under
            floating-NPR scheduling consecutive entries are at least
            ``Q_i`` apart (property-tested).
        completion_time: Set when the job finishes.
    """

    task: Task
    release_time: float
    job_id: int
    absolute_deadline: float = field(init=False)
    progression: float = 0.0
    pending_delay: float = 0.0
    delay_paid: float = 0.0
    delays_charged: list[float] = field(default_factory=list)
    preemption_progressions: list[float] = field(default_factory=list)
    preemption_times: list[float] = field(default_factory=list)
    completion_time: float | None = None

    def __post_init__(self) -> None:
        require(self.release_time >= 0, "release time must be >= 0")
        self.absolute_deadline = self.release_time + self.task.deadline

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    @property
    def remaining_work(self) -> float:
        """Total processor time still needed (delay first, then useful)."""
        return self.pending_delay + (self.task.wcet - self.progression)

    @property
    def finished(self) -> bool:
        """Whether all useful work and owed delay are done."""
        return self.completion_time is not None

    @property
    def total_delay(self) -> float:
        """Cumulative preemption delay charged to this job."""
        return sum(self.delays_charged)

    @property
    def response_time(self) -> float | None:
        """Completion minus release, if completed."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    def execute(self, duration: float) -> None:
        """Consume ``duration`` of processor time: delay first, then work."""
        require(duration >= -1e-12, f"negative execution duration {duration}")
        duration = max(duration, 0.0)
        pay = min(self.pending_delay, duration)
        self.pending_delay -= pay
        self.delay_paid += pay
        self.progression = min(
            self.progression + (duration - pay), self.task.wcet
        )

    def charge_preemption(self, delay: float, now: float) -> None:
        """Record a preemption at the current progression costing ``delay``.

        Args:
            delay: The charged reload cost (>= 0).
            now: Wall-clock instant of the preemption.
        """
        require(delay >= 0, f"negative preemption delay {delay}")
        self.preemption_progressions.append(self.progression)
        self.preemption_times.append(now)
        self.delays_charged.append(delay)
        self.pending_delay += delay

    def __repr__(self) -> str:
        return (
            f"Job({self.task.name}#{self.job_id} rel={self.release_time:g} "
            f"prog={self.progression:g}/{self.task.wcet:g} "
            f"owed={self.pending_delay:g})"
        )
