"""Discrete-event unicore simulator with floating non-preemptive regions.

Implements the paper's system model (Section III) operationally:

* the highest-priority ready job runs (fixed priority or EDF);
* when a higher-priority job is released while a lower-priority job is
  running and no NPR is active, the running job *starts a floating NPR*
  of its configured length ``Q_i``;
* further releases during an active NPR do not extend it (preemptions
  collate at the NPR boundary);
* when the NPR elapses, the highest-priority ready job is dispatched —
  if that preempts the NPR's owner, the owner is charged a preemption
  delay ``delay_model(job, progression)`` (by default its ``f_i`` at the
  current progression), which it must pay off before doing further
  useful work after it resumes;
* a job completing inside its NPR simply ends it.

Time is continuous; the event loop advances directly to the next release,
NPR expiry or completion, so there is no tick-quantisation error.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.jobs import Job
from repro.sim.policies import SchedulingPolicy, make_policy
from repro.sim.release import Release
from repro.sim.trace import EventKind, TraceEvent, TraceRecorder
from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require, require_positive

#: A delay model maps (job, progression at preemption) -> charged delay.
DelayModel = Callable[[Job, float], float]

_TIME_EPS = 1e-9


def worst_case_delay_model(job: Job, progression: float) -> float:
    """Charge the full ``f_i`` value — the bound-validation adversary.

    The progression is clamped to ``f``'s domain ``[0, C_i]`` on *both*
    sides: event times carry ``_TIME_EPS``-scale noise, so a preemption
    at the very start of a job can report a progression of ``-1e-9``,
    which must query ``f(0)`` rather than raise a domain error.
    """
    f = job.task.delay_function
    if f is None:
        return 0.0
    return f.value(min(max(progression, 0.0), f.wcet))


def scaled_delay_model(fraction: float) -> DelayModel:
    """Charge ``fraction * f_i(progression)`` (randomised-run studies)."""
    require(0.0 <= fraction <= 1.0, "fraction must lie in [0, 1]")

    def model(job: Job, progression: float) -> float:
        return fraction * worst_case_delay_model(job, progression)

    return model


def zero_delay_model(job: Job, progression: float) -> float:
    """No preemption cost (ideal-hardware baseline)."""
    return 0.0


@dataclass(frozen=True, slots=True)
class ExecutionSegment:
    """A maximal interval during which one job occupied the processor.

    Attributes:
        job: Identifier ``task#job_id``.
        start: Segment start time.
        end: Segment end time.
        kind: ``"work"``, ``"delay"`` or ``"mixed"`` (delay then work).
    """

    job: str
    start: float
    end: float
    kind: str


@dataclass
class SimulationResult:
    """Everything observable from one simulation run.

    Attributes:
        jobs: Every job instance, in release order.
        segments: Processor-occupancy trace.
        events: Typed scheduler event log (releases, NPR starts/ends,
            preemptions, dispatches, completions).
        horizon: Simulated time span.
        policy_name: The scheduling policy used.
    """

    jobs: list[Job]
    segments: list[ExecutionSegment]
    events: list[TraceEvent]
    horizon: float
    policy_name: str

    def events_of(self, kind: EventKind) -> list[TraceEvent]:
        """All events of one kind, in chronological order."""
        return [e for e in self.events if e.kind == kind]

    def jobs_of(self, task_name: str) -> list[Job]:
        """All jobs of one task."""
        return [j for j in self.jobs if j.task.name == task_name]

    def deadline_misses(self) -> list[Job]:
        """Completed jobs that finished after their absolute deadline,
        plus unfinished jobs whose deadline passed within the horizon."""
        missed = []
        for job in self.jobs:
            if job.completion_time is not None:
                if job.completion_time > job.absolute_deadline + _TIME_EPS:
                    missed.append(job)
            elif job.absolute_deadline <= self.horizon:
                missed.append(job)
        return missed

    def preemption_count(self, task_name: str | None = None) -> int:
        """Total preemptions observed (optionally for one task)."""
        return sum(
            len(j.delays_charged)
            for j in self.jobs
            if task_name is None or j.task.name == task_name
        )

    def busy_time(self) -> float:
        """Total processor-busy time."""
        return sum(s.end - s.start for s in self.segments)


class FloatingNPRSimulator:
    """Event-driven simulator for FP/EDF with floating NPRs.

    Args:
        tasks: The task set; every task that should enjoy NPR protection
            needs ``npr_length`` set (``None`` = fully preemptive task).
        policy: ``"fp"``, ``"edf"`` or a custom
            :class:`~repro.sim.policies.SchedulingPolicy`.
        delay_model: Preemption-cost model; defaults to charging the full
            ``f_i(progression)``.
    """

    def __init__(
        self,
        tasks: TaskSet,
        policy: str | SchedulingPolicy = "fp",
        delay_model: DelayModel = worst_case_delay_model,
    ):
        self.tasks = tasks
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.delay_model = delay_model
        self._task_by_name: dict[str, Task] = {t.name: t for t in tasks}

    # ------------------------------------------------------------------
    def run(self, releases: list[Release], horizon: float) -> SimulationResult:
        """Simulate the given release pattern until ``horizon``.

        Args:
            releases: Sorted ``(time, task_name)`` pairs (releases beyond
                the horizon are ignored).
            horizon: End of simulated time (> 0).

        Returns:
            The :class:`SimulationResult` trace.
        """
        require_positive(horizon, "horizon")
        for time, name in releases:
            require(name in self._task_by_name, f"unknown task {name!r}")
            require(time >= 0, f"release at negative time {time}")
        pending = sorted(
            (t, name) for t, name in releases if t < horizon
        )

        clock = 0.0
        release_idx = 0
        ready: list[Job] = []
        running: Job | None = None
        npr_end: float | None = None  # active NPR expiry (for `running`)
        jobs: list[Job] = []
        segments: list[ExecutionSegment] = []
        segment_start: float | None = None
        recorder = TraceRecorder()

        def job_tag(job: Job) -> str:
            return f"{job.task.name}#{job.job_id}"

        def close_segment(end: float) -> None:
            nonlocal segment_start
            if running is not None and segment_start is not None:
                if end > segment_start + _TIME_EPS:
                    segments.append(
                        ExecutionSegment(
                            job=f"{running.task.name}#{running.job_id}",
                            start=segment_start,
                            end=end,
                            kind="mixed" if running.delay_paid else "work",
                        )
                    )
            segment_start = None

        def dispatch(now: float) -> None:
            """Put the most urgent ready job on the processor."""
            nonlocal running, segment_start, npr_end
            if not ready:
                running = None
                return
            ready.sort(key=self.policy.key)
            running = ready.pop(0)
            segment_start = now
            npr_end = None
            recorder.record(now, EventKind.DISPATCH, job_tag(running))

        while True:
            # ----------------------------------------------------------
            # Next event time.
            # ----------------------------------------------------------
            candidates = [horizon]
            if release_idx < len(pending):
                candidates.append(pending[release_idx][0])
            if running is not None:
                candidates.append(clock + running.remaining_work)
                if npr_end is not None:
                    candidates.append(npr_end)
            t_next = min(candidates)
            require(
                t_next >= clock - _TIME_EPS,
                f"time went backwards: {clock} -> {t_next}",
            )

            # ----------------------------------------------------------
            # Advance the running job to t_next.
            # ----------------------------------------------------------
            if running is not None:
                running.execute(t_next - clock)
            clock = t_next
            if clock >= horizon - _TIME_EPS:
                close_segment(horizon)
                break

            # ----------------------------------------------------------
            # 1) Completion.
            # ----------------------------------------------------------
            if (
                running is not None
                and running.remaining_work <= _TIME_EPS
            ):
                running.completion_time = clock
                recorder.record(clock, EventKind.COMPLETE, job_tag(running))
                close_segment(clock)
                running = None
                npr_end = None
                dispatch(clock)

            # ----------------------------------------------------------
            # 2) Releases at this instant.
            # ----------------------------------------------------------
            released_now: list[Job] = []
            while (
                release_idx < len(pending)
                and pending[release_idx][0] <= clock + _TIME_EPS
            ):
                time, name = pending[release_idx]
                release_idx += 1
                job = Job(
                    task=self._task_by_name[name],
                    release_time=time,
                    job_id=len(jobs),
                )
                jobs.append(job)
                released_now.append(job)
                recorder.record(time, EventKind.RELEASE, job_tag(job))
            if released_now:
                ready.extend(released_now)
                if running is None:
                    dispatch(clock)
                else:
                    urgent = any(
                        self.policy.higher_priority(j, running)
                        for j in released_now
                    )
                    if urgent and npr_end is None:
                        q = running.task.npr_length
                        if q is None:
                            # Fully preemptive task: immediate preemption.
                            recorder.record(
                                clock,
                                EventKind.PREEMPT,
                                job_tag(running),
                                self.delay_model(running, running.progression),
                            )
                            self._preempt(running, ready, clock)
                            close_segment(clock)
                            dispatch(clock)
                        else:
                            npr_end = clock + q
                            recorder.record(
                                clock, EventKind.NPR_START, job_tag(running), q
                            )

            # ----------------------------------------------------------
            # 3) NPR expiry.
            # ----------------------------------------------------------
            if (
                running is not None
                and npr_end is not None
                and clock >= npr_end - _TIME_EPS
            ):
                npr_end = None
                recorder.record(clock, EventKind.NPR_END, job_tag(running))
                ready.sort(key=self.policy.key)
                if ready and self.policy.higher_priority(ready[0], running):
                    recorder.record(
                        clock,
                        EventKind.PREEMPT,
                        job_tag(running),
                        self.delay_model(running, running.progression),
                    )
                    self._preempt(running, ready, clock)
                    close_segment(clock)
                    dispatch(clock)

        return SimulationResult(
            jobs=jobs,
            segments=segments,
            events=recorder.events,
            horizon=horizon,
            policy_name=self.policy.name,
        )

    # ------------------------------------------------------------------
    def _preempt(self, job: Job, ready: list[Job], now: float) -> None:
        """Charge the delay model and move the job back to the ready queue."""
        delay = self.delay_model(job, job.progression)
        require(delay >= 0, f"delay model returned negative delay {delay}")
        job.charge_preemption(delay, now)
        ready.append(job)
