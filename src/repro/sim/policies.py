"""Scheduling policies for the floating-NPR simulator.

Both policies supported by the paper's system model (Section III): fixed
task priority and EDF, each combined with preemption-triggered floating
non-preemptive regions by the simulator itself.
"""

from __future__ import annotations

from repro.sim.jobs import Job
from repro.utils.checks import require


class SchedulingPolicy:
    """Priority order over jobs: smaller key = more urgent."""

    name: str = "abstract"

    def key(self, job: Job) -> tuple:
        """Total-order key; ties broken by release time then job id."""
        raise NotImplementedError

    def higher_priority(self, a: Job, b: Job) -> bool:
        """Whether job ``a`` is strictly more urgent than ``b``."""
        return self.key(a) < self.key(b)


class FixedPriorityPolicy(SchedulingPolicy):
    """Fixed task priorities (smaller ``task.priority`` = higher)."""

    name = "fixed-priority"

    def key(self, job: Job) -> tuple:
        require(
            job.task.priority is not None,
            f"task {job.task.name} has no priority; assign one first",
        )
        return (job.task.priority, job.release_time, job.job_id)


class EDFPolicy(SchedulingPolicy):
    """Earliest deadline first on absolute deadlines."""

    name = "edf"

    def key(self, job: Job) -> tuple:
        return (job.absolute_deadline, job.release_time, job.job_id)


def make_policy(name: str) -> SchedulingPolicy:
    """Policy factory: ``"fp"`` or ``"edf"``."""
    if name == "fp":
        return FixedPriorityPolicy()
    if name == "edf":
        return EDFPolicy()
    raise ValueError(f"unknown policy {name!r}; pick 'fp' or 'edf'")
