"""Structured event log for simulation runs.

Beyond the processor-occupancy segments, the simulator can record a
typed event stream — releases, NPR starts/ends, preemptions, dispatches
and completions — which makes the floating-NPR protocol itself testable
(e.g. "an NPR starts exactly when a higher-priority job arrives while a
lower-priority one runs, and never restarts while active").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class EventKind(Enum):
    """The observable scheduler events."""

    RELEASE = "release"
    DISPATCH = "dispatch"
    NPR_START = "npr_start"
    NPR_END = "npr_end"
    PREEMPT = "preempt"
    COMPLETE = "complete"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One scheduler event.

    Attributes:
        time: When it happened.
        kind: The event type.
        job: ``task#job_id`` of the job concerned.
        value: Event-specific payload: NPR length for ``NPR_START``,
            charged delay for ``PREEMPT``, 0 otherwise.
    """

    time: float
    kind: EventKind
    job: str
    value: float = 0.0


class TraceRecorder:
    """Accumulates :class:`TraceEvent` objects during a run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(
        self, time: float, kind: EventKind, job: str, value: float = 0.0
    ) -> None:
        """Append one event."""
        self.events.append(
            TraceEvent(time=time, kind=kind, job=job, value=value)
        )

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]
