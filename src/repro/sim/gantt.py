"""ASCII Gantt rendering of simulation traces.

Turns a :class:`~repro.sim.SimulationResult` into a per-task timeline —
one row per task, one column per time quantum — so FNPR behaviour
(regions, collated preemptions, delay payment) can be inspected by eye
in tests and examples.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.sim.simulator import SimulationResult
from repro.utils.checks import require

#: Characters used in the timeline.
RUN_CHAR = "#"
IDLE_CHAR = "."


def gantt(
    result: SimulationResult,
    width: int = 80,
    start: float = 0.0,
    end: float | None = None,
) -> str:
    """Render the run as one timeline row per task.

    Args:
        result: The simulation trace.
        width: Number of character columns for the timeline.
        start: Left edge of the rendered window.
        end: Right edge (defaults to the simulation horizon).

    Returns:
        The rendered multi-line string: header, one row per task, and a
        release-marker row (``^`` at each job release).
    """
    require(width >= 10, "gantt width must be >= 10")
    end = end if end is not None else result.horizon
    require(end > start, f"empty gantt window [{start}, {end}]")
    span = end - start
    quantum = span / width

    task_names = sorted({j.task.name for j in result.jobs})
    rows: dict[str, list[str]] = {
        name: [IDLE_CHAR] * width for name in task_names
    }

    for segment in result.segments:
        task_name = segment.job.split("#", 1)[0]
        first = int((segment.start - start) / quantum)
        last = int((segment.end - start) / quantum)
        for col in range(max(first, 0), min(last + 1, width)):
            col_t0 = start + col * quantum
            col_t1 = col_t0 + quantum
            if segment.end <= col_t0 or segment.start >= col_t1:
                continue
            rows[task_name][col] = RUN_CHAR

    releases = [IDLE_CHAR] * width
    for job in result.jobs:
        if start <= job.release_time < end:
            col = int((job.release_time - start) / quantum)
            releases[min(col, width - 1)] = "^"

    label_width = max((len(n) for n in task_names), default=4) + 1
    lines = [
        f"{'time':>{label_width}} |{start:g} .. {end:g} "
        f"({quantum:g} per column)"
    ]
    for name in task_names:
        lines.append(f"{name:>{label_width}} |{''.join(rows[name])}|")
    lines.append(f"{'rel':>{label_width}} |{''.join(releases)}|")
    return "\n".join(lines)


def utilization_summary(result: SimulationResult) -> Mapping[str, float]:
    """Fraction of the horizon each task occupied the processor."""
    by_task: dict[str, float] = {}
    for segment in result.segments:
        task_name = segment.job.split("#", 1)[0]
        by_task[task_name] = by_task.get(task_name, 0.0) + (
            segment.end - segment.start
        )
    return {
        name: busy / result.horizon for name, busy in sorted(by_task.items())
    }
