"""Discrete-event floating-NPR scheduler simulator (substrate S10).

Operational ground truth for the paper's analyses: FP/EDF scheduling
with preemption-triggered floating non-preemptive regions, progression-
indexed delay charging via ``f_i``, release-pattern generators (including
the saturating adversary) and the Theorem 1 validation harness.
"""

from repro.sim.gantt import gantt, utilization_summary
from repro.sim.jobs import Job
from repro.sim.metrics import TaskMetrics, all_task_metrics, task_metrics
from repro.sim.policies import (
    EDFPolicy,
    FixedPriorityPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.sim.release import (
    Release,
    periodic_releases,
    saturating_releases,
    sporadic_releases,
)
from repro.sim.simulator import (
    DelayModel,
    ExecutionSegment,
    FloatingNPRSimulator,
    SimulationResult,
    scaled_delay_model,
    worst_case_delay_model,
    zero_delay_model,
)
from repro.sim.trace import EventKind, TraceEvent, TraceRecorder
from repro.sim.validation import (
    JobViolation,
    ValidationReport,
    reference_validation_task_set,
    validate_simulation,
    validation_campaign,
)

__all__ = [
    "gantt",
    "utilization_summary",
    "Job",
    "SchedulingPolicy",
    "FixedPriorityPolicy",
    "EDFPolicy",
    "make_policy",
    "Release",
    "periodic_releases",
    "sporadic_releases",
    "saturating_releases",
    "FloatingNPRSimulator",
    "SimulationResult",
    "ExecutionSegment",
    "DelayModel",
    "worst_case_delay_model",
    "scaled_delay_model",
    "zero_delay_model",
    "TaskMetrics",
    "task_metrics",
    "all_task_metrics",
    "JobViolation",
    "ValidationReport",
    "reference_validation_task_set",
    "validate_simulation",
    "validation_campaign",
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
]
