"""Per-basic-block CRPD bounds: gluing UCB, ECB and BRT together.

``CRPD_b = BRT * max_p |UCB(p) ∩ ECB|`` over the program points ``p``
inside block ``b`` (paper, Section IV: "state of the art methods like
[3]" produce exactly this per-block quantity).  The resulting annotation
feeds :func:`repro.cfg.delay_function_from_cfg`, completing the pipeline
from program + cache model to the preemption-delay function ``f_i``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.cache.geometry import CacheGeometry
from repro.cache.ucb import AccessMap, UCBAnalysis, direct_mapped_ucb, lru_may_ucb
from repro.cfg.graph import ControlFlowGraph
from repro.core.delay_function import PreemptionDelayFunction


def ucb_analysis_for(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
) -> UCBAnalysis:
    """Dispatch to the exact direct-mapped or conservative LRU analysis."""
    if geometry.is_direct_mapped:
        return direct_mapped_ucb(cfg, accesses, geometry)
    return lru_may_ucb(cfg, accesses, geometry)


def crpd_per_block(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
    ecb_sets: frozenset[int] | None = None,
) -> dict[str, float]:
    """CRPD bound of every basic block.

    Args:
        cfg: The preempted task's CFG.
        accesses: Its per-block memory accesses.
        geometry: Cache shape (provides the BRT).
        ecb_sets: Cache sets the preemptor(s) may touch; ``None`` assumes
            the worst case (every set).

    Returns:
        Mapping block name -> ``BRT * max_p |UCB(p) ∩ ECB|``.
    """
    analysis = ucb_analysis_for(cfg, accesses, geometry)
    result: dict[str, float] = {}
    for name, points in analysis.ucb_per_point.items():
        worst = 0
        for point in points:
            if ecb_sets is None:
                damage = len(point)
            else:
                damage = sum(
                    1 for m in point if geometry.set_of(m) in ecb_sets
                )
            worst = max(worst, damage)
        result[name] = worst * geometry.block_reload_time
    return result


def annotate_cfg_with_crpd(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
    ecb_sets: frozenset[int] | None = None,
) -> ControlFlowGraph:
    """A copy of ``cfg`` whose blocks carry their computed CRPD bounds."""
    crpd = crpd_per_block(cfg, accesses, geometry, ecb_sets)
    replacements = {
        name: cfg.block(name).with_crpd(crpd[name]) for name in cfg.blocks
    }
    return cfg.with_blocks(replacements)


def delay_function_from_program(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
    iteration_bounds: Mapping[str, tuple[int, int]] | None = None,
    ecb_sets: frozenset[int] | None = None,
) -> PreemptionDelayFunction:
    """Full Section IV pipeline: program + cache model -> ``f_i``.

    Combines the UCB/ECB CRPD annotation with the execution-window
    envelope of :mod:`repro.cfg.delay_profile`.
    """
    from repro.cfg.delay_profile import delay_function_from_cfg

    annotated = annotate_cfg_with_crpd(cfg, accesses, geometry, ecb_sets)
    return delay_function_from_cfg(annotated, iteration_bounds)


def per_preemptor_delay_functions(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
    preemptor_ecbs: Mapping[str, frozenset[int]],
    iteration_bounds: Mapping[str, tuple[int, int]] | None = None,
) -> dict[str, PreemptionDelayFunction]:
    """One ``f_{i,j}`` per potential preemptor ``j`` (future-work (i)).

    The paper's ``f_i`` discards who the preemptor is; filtering each
    basic block's UCBs by a *specific* preemptor's ECBs yields a tighter
    per-preemptor delay function ``f_{i,j} <= f_i``.  Under floating-NPR
    scheduling any higher-priority task can be the one dispatched at an
    NPR boundary, so the safe single-function summary is the pointwise
    maximum of the returned family — equal to running the pipeline with
    the *union* of the ECBs — but scheduling-aware analyses (e.g. a
    Petters-style damage accounting) can exploit the individual curves.

    Args:
        cfg: The preempted task's CFG.
        accesses: Its per-block memory accesses.
        geometry: Cache shape.
        preemptor_ecbs: Mapping preemptor name -> its ECB set.
        iteration_bounds: Loop bounds for ``cfg``.

    Returns:
        Mapping preemptor name -> ``f_{i,j}``.
    """
    return {
        name: delay_function_from_program(
            cfg, accesses, geometry, iteration_bounds, ecb_sets=ecbs
        )
        for name, ecbs in preemptor_ecbs.items()
    }
