"""Useful-cache-block (UCB) analysis in the style of Lee et al. [3].

A memory block ``m`` is *useful* at program point ``p`` when

* ``m`` may reside in the cache at ``p`` (forward "reaching cache
  blocks" analysis), and
* some path from ``p`` re-references ``m`` before any conflicting access
  would evict it anyway (backward "live memory blocks" analysis).

A preemption at ``p`` can then cost at most ``BRT * |UCB(p)|`` — or,
when the preemptor's evicting cache blocks (ECBs) are known,
``BRT * |{m in UCB(p) : set(m) in ECB_sets}|``.

For direct-mapped caches both analyses are exact under the standard
may/may abstraction (joins are set unions).  For set-associative LRU
caches we implement the classic may-analysis with minimal ages
(Ferdinand-style), paired with an eviction-oblivious liveness — a
documented over-approximation that keeps the result a safe upper bound.

Program points: within a basic block with accesses ``a_1 .. a_k`` there
are ``k + 1`` points (before each access and after the last); the
per-block CRPD bound takes the maximum over all of them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.cfg.graph import ControlFlowGraph
from repro.utils.checks import require

#: Type alias: per-basic-block memory access sequences.
AccessMap = Mapping[str, Sequence[int]]


def _validated_accesses(cfg: ControlFlowGraph, accesses: AccessMap) -> dict[str, list[int]]:
    result: dict[str, list[int]] = {}
    for name in cfg.blocks:
        trace = list(accesses.get(name, ()))
        require(
            all(isinstance(b, int) and b >= 0 for b in trace),
            f"block {name!r}: memory blocks must be non-negative ints",
        )
        result[name] = trace
    unknown = set(accesses) - set(cfg.blocks)
    require(not unknown, f"accesses given for unknown blocks: {sorted(unknown)}")
    return result


# ----------------------------------------------------------------------
# Direct-mapped analysis (exact may/may)
# ----------------------------------------------------------------------
def _dm_transfer_forward(
    state: frozenset[int], trace: Sequence[int], geometry: CacheGeometry
) -> frozenset[int]:
    """Forward transfer of the reaching-cache-blocks analysis."""
    current = set(state)
    for m in trace:
        s = geometry.set_of(m)
        current = {b for b in current if geometry.set_of(b) != s}
        current.add(m)
    return frozenset(current)


def _dm_transfer_backward(
    state: frozenset[int], trace: Sequence[int], geometry: CacheGeometry
) -> frozenset[int]:
    """Backward transfer of the live-memory-blocks analysis."""
    current = set(state)
    for m in reversed(trace):
        s = geometry.set_of(m)
        current = {b for b in current if geometry.set_of(b) != s}
        current.add(m)
    return frozenset(current)


@dataclass(frozen=True, slots=True)
class UCBAnalysis:
    """Result of the UCB dataflow.

    Attributes:
        reaching_in: May-cached blocks at each basic-block entry.
        live_in: May-live blocks at each basic-block entry.
        ucb_per_point: For every block, the UCB set at each of its
            ``k + 1`` internal program points.
        max_ucb_per_block: ``max_p |UCB(p)|`` over the block's points.
    """

    reaching_in: Mapping[str, frozenset[int]]
    live_in: Mapping[str, frozenset[int]]
    ucb_per_point: Mapping[str, tuple[frozenset[int], ...]]
    max_ucb_per_block: Mapping[str, int]

    def ucb_at_entry(self, block: str) -> frozenset[int]:
        """UCB set at the entry point of ``block``."""
        return self.ucb_per_point[block][0]


def direct_mapped_ucb(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
) -> UCBAnalysis:
    """Run the Lee-style UCB analysis for a direct-mapped cache.

    Args:
        cfg: The task's control-flow graph (cycles allowed: the dataflow
            iterates to a fixpoint).
        accesses: Memory blocks referenced by each basic block, in
            program order.
        geometry: Cache shape (must be direct-mapped).

    Returns:
        The dataflow result with per-point UCB sets.
    """
    require(geometry.is_direct_mapped, "use lru_may_ucb for associative caches")
    traces = _validated_accesses(cfg, accesses)

    # Forward reaching fixpoint: IN(b) = union of OUT(preds).
    reaching_in: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    reaching_out: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for name in cfg.blocks:
            incoming = frozenset().union(
                *(reaching_out[p] for p in cfg.predecessors(name))
            ) if cfg.predecessors(name) else frozenset()
            outgoing = _dm_transfer_forward(incoming, traces[name], geometry)
            if incoming != reaching_in[name] or outgoing != reaching_out[name]:
                reaching_in[name] = incoming
                reaching_out[name] = outgoing
                changed = True

    # Backward liveness fixpoint: OUT(b) = union of IN(succs).
    live_in: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    live_out: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for name in cfg.blocks:
            outgoing = frozenset().union(
                *(live_in[s] for s in cfg.successors(name))
            ) if cfg.successors(name) else frozenset()
            incoming = _dm_transfer_backward(outgoing, traces[name], geometry)
            if outgoing != live_out[name] or incoming != live_in[name]:
                live_out[name] = outgoing
                live_in[name] = incoming
                changed = True

    # Per-point UCB inside each block.
    ucb_per_point: dict[str, tuple[frozenset[int], ...]] = {}
    max_per_block: dict[str, int] = {}
    for name in cfg.blocks:
        trace = traces[name]
        # Forward states before each access and after the last.
        forward_states = [reaching_in[name]]
        for m in trace:
            forward_states.append(
                _dm_transfer_forward(forward_states[-1], [m], geometry)
            )
        # Backward states: live before each access (and after the last).
        backward_states = [live_out[name]]
        for m in reversed(trace):
            backward_states.append(
                _dm_transfer_backward(backward_states[-1], [m], geometry)
            )
        backward_states.reverse()
        points = tuple(
            f & b for f, b in zip(forward_states, backward_states)
        )
        ucb_per_point[name] = points
        max_per_block[name] = max((len(p) for p in points), default=0)

    return UCBAnalysis(
        reaching_in=reaching_in,
        live_in=live_in,
        ucb_per_point=ucb_per_point,
        max_ucb_per_block=max_per_block,
    )


# ----------------------------------------------------------------------
# Set-associative LRU (conservative may-analysis)
# ----------------------------------------------------------------------
def _lru_transfer(
    ages: dict[int, int], trace: Sequence[int], geometry: CacheGeometry
) -> dict[int, int]:
    """May-analysis transfer: minimal ages, eviction at ``associativity``."""
    current = dict(ages)
    for m in trace:
        s = geometry.set_of(m)
        old_age = current.get(m, geometry.associativity)
        for b in list(current):
            if b != m and geometry.set_of(b) == s and current[b] < old_age:
                current[b] += 1
                if current[b] >= geometry.associativity:
                    del current[b]
        current[m] = 0
    return current


def _lru_join(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    """May join: union of blocks with pointwise minimal age."""
    result = dict(a)
    for block, age in b.items():
        if block not in result or age < result[block]:
            result[block] = age
    return result


def lru_may_ucb(
    cfg: ControlFlowGraph,
    accesses: AccessMap,
    geometry: CacheGeometry,
) -> UCBAnalysis:
    """Conservative UCB analysis for set-associative LRU caches.

    May-content analysis with minimal ages determines which blocks may be
    cached; liveness is *eviction-oblivious* (any future re-reference
    keeps a block live), which over-approximates usefulness and therefore
    keeps every derived CRPD bound safe.
    """
    traces = _validated_accesses(cfg, accesses)

    may_in: dict[str, dict[int, int]] = {n: {} for n in cfg.blocks}
    may_out: dict[str, dict[int, int]] = {n: {} for n in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for name in cfg.blocks:
            incoming: dict[int, int] = {}
            for p in cfg.predecessors(name):
                incoming = _lru_join(incoming, may_out[p])
            outgoing = _lru_transfer(incoming, traces[name], geometry)
            if incoming != may_in[name] or outgoing != may_out[name]:
                may_in[name] = incoming
                may_out[name] = outgoing
                changed = True

    # Eviction-oblivious liveness: block live if referenced on some path.
    live_in: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    live_out: dict[str, frozenset[int]] = {n: frozenset() for n in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for name in cfg.blocks:
            outgoing = frozenset().union(
                *(live_in[s] for s in cfg.successors(name))
            ) if cfg.successors(name) else frozenset()
            incoming = outgoing | frozenset(traces[name])
            if outgoing != live_out[name] or incoming != live_in[name]:
                live_out[name] = outgoing
                live_in[name] = incoming
                changed = True

    ucb_per_point: dict[str, tuple[frozenset[int], ...]] = {}
    max_per_block: dict[str, int] = {}
    for name in cfg.blocks:
        trace = traces[name]
        forward = [may_in[name]]
        for m in trace:
            forward.append(_lru_transfer(forward[-1], [m], geometry))
        backward: list[frozenset[int]] = [live_out[name]]
        for i in range(len(trace) - 1, -1, -1):
            backward.append(backward[-1] | frozenset(trace[i:]))
        backward.reverse()
        points = tuple(
            frozenset(f) & b for f, b in zip(forward, backward)
        )
        ucb_per_point[name] = points
        max_per_block[name] = max((len(p) for p in points), default=0)

    return UCBAnalysis(
        reaching_in={n: frozenset(m) for n, m in may_in.items()},
        live_in=live_in,
        ucb_per_point=ucb_per_point,
        max_ucb_per_block=max_per_block,
    )
