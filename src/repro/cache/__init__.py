"""Cache substrate (S6): CRPD estimation in the style of Lee et al. [3].

Provides cache geometry, concrete direct-mapped / LRU simulators (ground
truth for tests), the useful-cache-block (UCB) dataflow analyses, ECB
computation for preemptors, per-basic-block CRPD bounds and synthetic
access-pattern generators — everything needed to derive the paper's
``f_i`` from a program instead of assuming it.
"""

from repro.cache.crpd import (
    annotate_cfg_with_crpd,
    crpd_per_block,
    delay_function_from_program,
    per_preemptor_delay_functions,
    ucb_analysis_for,
)
from repro.cache.ecb import combined_ecbs, evicting_cache_sets, task_ecbs
from repro.cache.geometry import CacheGeometry
from repro.cache.patterns import (
    SyntheticProgram,
    phased_accesses,
    random_accesses,
)
from repro.cache.simulators import LRUCache, extra_misses_after_preemption
from repro.cache.ucb import (
    UCBAnalysis,
    direct_mapped_ucb,
    lru_may_ucb,
)

from repro.cache.writeback import (
    Access,
    AccessCosts,
    WritebackLRUCache,
    preemption_cost_with_writebacks,
)

__all__ = [
    "CacheGeometry",
    "LRUCache",
    "extra_misses_after_preemption",
    "UCBAnalysis",
    "direct_mapped_ucb",
    "lru_may_ucb",
    "evicting_cache_sets",
    "task_ecbs",
    "combined_ecbs",
    "crpd_per_block",
    "annotate_cfg_with_crpd",
    "delay_function_from_program",
    "per_preemptor_delay_functions",
    "ucb_analysis_for",
    "SyntheticProgram",
    "phased_accesses",
    "random_accesses",
    "Access",
    "AccessCosts",
    "WritebackLRUCache",
    "preemption_cost_with_writebacks",
]
