"""Synthetic memory-access pattern generators.

The paper motivates shape-aware delay analysis with a task that "starts
its execution by loading from the memory an important amount of data",
processes it, then performs "a long-time computation using only a small
subset of the data" — a pattern whose delay function is front-loaded.
:func:`phased_accesses` reproduces exactly that three-phase shape on a
linear CFG; :func:`random_accesses` provides seeded noise for property
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class SyntheticProgram:
    """A generated program: CFG plus per-block memory accesses."""

    cfg: ControlFlowGraph
    accesses: dict[str, list[int]]


def phased_accesses(
    working_set: int = 64,
    hot_subset: int = 4,
    load_time: tuple[float, float] = (10.0, 14.0),
    process_time: tuple[float, float] = (20.0, 26.0),
    compute_time: tuple[float, float] = (60.0, 80.0),
    compute_blocks: int = 6,
) -> SyntheticProgram:
    """The paper's motivating load/process/compute program.

    Phase 1 (``load``) touches the whole working set; phase 2
    (``process``) re-reads all of it (making every block useful); phase 3
    (``compute``, split into several basic blocks for a finer delay
    profile) loops over a small hot subset only.

    Args:
        working_set: Number of distinct memory blocks loaded up front.
        hot_subset: Blocks still referenced during the compute phase.
        load_time: ``(emin, emax)`` of the load block.
        process_time: ``(emin, emax)`` of the process block.
        compute_time: Total ``(emin, emax)`` of the compute phase.
        compute_blocks: Number of basic blocks forming the compute phase.

    Returns:
        The linear CFG and its access map.
    """
    require(working_set >= 1, "working_set must be >= 1")
    require(
        0 <= hot_subset <= working_set,
        "hot_subset must lie in [0, working_set]",
    )
    require(compute_blocks >= 1, "compute_blocks must be >= 1")

    all_blocks = list(range(working_set))
    hot = all_blocks[:hot_subset]

    names = ["load", "process"] + [f"compute{k}" for k in range(compute_blocks)]
    blocks = [
        BasicBlock("load", *load_time),
        BasicBlock("process", *process_time),
    ]
    per_block = (
        compute_time[0] / compute_blocks,
        compute_time[1] / compute_blocks,
    )
    for k in range(compute_blocks):
        blocks.append(BasicBlock(f"compute{k}", *per_block))
    edges = list(zip(names, names[1:]))
    cfg = ControlFlowGraph(blocks, edges, entry="load")

    accesses = {
        "load": list(all_blocks),
        "process": list(all_blocks),
    }
    for k in range(compute_blocks):
        accesses[f"compute{k}"] = list(hot)
    return SyntheticProgram(cfg=cfg, accesses=accesses)


def random_accesses(
    cfg: ControlFlowGraph,
    seed: int,
    address_space: int = 256,
    max_accesses_per_block: int = 12,
    locality: float = 0.6,
) -> dict[str, list[int]]:
    """Seeded random access map for an existing CFG.

    Args:
        cfg: The CFG whose blocks receive accesses.
        seed: RNG seed.
        address_space: Number of distinct memory blocks to draw from.
        max_accesses_per_block: Upper bound on accesses per basic block.
        locality: Probability that an access repeats a recently used
            block (temporal locality knob).

    Returns:
        Per-block access sequences.
    """
    require(address_space >= 1, "address_space must be >= 1")
    require(0.0 <= locality <= 1.0, "locality must lie in [0, 1]")
    rng = random.Random(seed)
    recent: list[int] = []
    result: dict[str, list[int]] = {}
    for name in sorted(cfg.blocks):
        count = rng.randint(0, max_accesses_per_block)
        trace: list[int] = []
        for _ in range(count):
            if recent and rng.random() < locality:
                block = rng.choice(recent[-8:])
            else:
                block = rng.randrange(address_space)
            trace.append(block)
            recent.append(block)
        result[name] = trace
    return result
