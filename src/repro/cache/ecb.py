"""Evicting cache blocks (ECBs) of a preempting task.

The ECBs of a task are the cache sets its memory accesses may touch: a
preemption by that task can only evict a preempted task's useful blocks
that reside in those sets.  Combining UCBs of the preempted task with
ECBs of the preemptor(s) is the classic refinement of Busquets' and
Petters' analyses and feeds the per-block CRPD bounds here.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.cache.geometry import CacheGeometry
from repro.cfg.graph import ControlFlowGraph


def evicting_cache_sets(
    accesses: Mapping[str, Sequence[int]] | Iterable[int],
    geometry: CacheGeometry,
) -> frozenset[int]:
    """Cache sets a task may touch.

    Args:
        accesses: Either a per-basic-block access map or a flat iterable
            of memory blocks.
        geometry: Cache shape.

    Returns:
        The set of cache-set indices the task's accesses map to.
    """
    if isinstance(accesses, Mapping):
        blocks: set[int] = set()
        for trace in accesses.values():
            blocks.update(trace)
    else:
        blocks = set(accesses)
    return frozenset(geometry.set_of(b) for b in blocks)


def task_ecbs(
    cfg: ControlFlowGraph,
    accesses: Mapping[str, Sequence[int]],
    geometry: CacheGeometry,
) -> frozenset[int]:
    """ECB sets of a task given its CFG and per-block accesses."""
    relevant = {n: accesses.get(n, ()) for n in cfg.blocks}
    return evicting_cache_sets(relevant, geometry)


def combined_ecbs(ecb_sets: Iterable[frozenset[int]]) -> frozenset[int]:
    """Union of the ECBs of several (potential) preemptors.

    Under floating-NPR scheduling any higher-priority task may be the
    preemptor at a given point, so the safe combination is the union.
    """
    result: frozenset[int] = frozenset()
    for ecb in ecb_sets:
        result |= ecb
    return result
