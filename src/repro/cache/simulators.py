"""Concrete cache simulators (direct-mapped and set-associative LRU).

These are *executable ground truth* for the static analyses in
:mod:`repro.cache.ucb`: tests replay concrete access traces, inject a
preemption (evicting the preemptor's cache blocks) and check that the
measured number of extra misses never exceeds the statically computed
useful-cache-block count.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.geometry import CacheGeometry
from repro.utils.checks import require


class LRUCache:
    """A set-associative LRU cache simulator.

    Direct-mapped behaviour falls out of ``associativity == 1``.

    Args:
        geometry: The cache shape.
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        # One recency-ordered mapping per set: most recent last.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]

    def access(self, memory_block: int) -> bool:
        """Access a memory block.

        Returns:
            ``True`` on a hit, ``False`` on a miss (the block is loaded,
            evicting the least recently used block of a full set).
        """
        line = self._sets[self.geometry.set_of(memory_block)]
        if memory_block in line:
            line.move_to_end(memory_block)
            return True
        if len(line) >= self.geometry.associativity:
            line.popitem(last=False)
        line[memory_block] = None
        return False

    def run(self, trace: list[int]) -> int:
        """Process a whole trace; returns the number of misses."""
        return sum(0 if self.access(b) else 1 for b in trace)

    def contains(self, memory_block: int) -> bool:
        """Whether the block currently resides in the cache."""
        return memory_block in self._sets[self.geometry.set_of(memory_block)]

    def contents(self) -> set[int]:
        """The set of memory blocks currently cached."""
        return {b for line in self._sets for b in line}

    def evict_sets(self, cache_sets: set[int]) -> set[int]:
        """Evict every block residing in the given cache sets.

        Models the damage of a preempting task whose evicting cache
        blocks (ECBs) cover ``cache_sets``.

        Returns:
            The set of memory blocks that were evicted.
        """
        evicted: set[int] = set()
        for s in cache_sets:
            require(
                0 <= s < self.geometry.num_sets,
                f"cache set {s} out of range [0, {self.geometry.num_sets})",
            )
            evicted.update(self._sets[s])
            self._sets[s].clear()
        return evicted

    def flush(self) -> None:
        """Empty the cache."""
        for line in self._sets:
            line.clear()

    def clone(self) -> "LRUCache":
        """An independent copy of the current cache state."""
        copy = LRUCache(self.geometry)
        for idx, line in enumerate(self._sets):
            copy._sets[idx] = OrderedDict(line)
        return copy


def extra_misses_after_preemption(
    geometry: CacheGeometry,
    warmup_trace: list[int],
    resume_trace: list[int],
    evicted_sets: set[int],
) -> int:
    """Measured CRPD (in misses) of one preemption on a concrete trace.

    Runs ``warmup_trace``, then compares the misses of ``resume_trace``
    with and without an intervening eviction of ``evicted_sets``.

    Returns:
        ``misses(preempted) - misses(undisturbed)`` — never negative for
        LRU caches on identical resume traces.
    """
    warm = LRUCache(geometry)
    warm.run(warmup_trace)
    disturbed = warm.clone()
    disturbed.evict_sets(evicted_sets)
    baseline_misses = warm.run(resume_trace)
    disturbed_misses = disturbed.run(resume_trace)
    return disturbed_misses - baseline_misses
