"""Write-back cache simulation: the dirty-line component of CRPD.

The paper's CRPD model counts *reload* cost only.  On write-back caches
a preemption has a second component: the preemptor's accesses evict
dirty lines, forcing memory writes that the preempted task would
otherwise have deferred (or merged).  This module extends the concrete
LRU simulator with dirty-bit tracking so the extra write-back traffic of
a preemption can be *measured* and compared against the reload-only
bound — quantifying how much of the real cost the paper's model covers
on write-heavy workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.utils.checks import require

#: A trace item: (memory block, is_write).
Access = tuple[int, bool]


@dataclass(frozen=True, slots=True)
class AccessCosts:
    """Cost accounting for a trace replay.

    Attributes:
        misses: Number of cache misses (each costs one block reload).
        writebacks: Number of dirty lines written back to memory.
    """

    misses: int
    writebacks: int

    def total(self, geometry: CacheGeometry, writeback_time: float) -> float:
        """Weighted cost: ``misses * BRT + writebacks * writeback_time``."""
        return (
            self.misses * geometry.block_reload_time
            + self.writebacks * writeback_time
        )


class WritebackLRUCache:
    """Set-associative LRU cache with write-back / write-allocate policy.

    Args:
        geometry: Cache shape (BRT used for cost weighting).
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        # Per set: block -> dirty flag, most recently used last.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]

    def access(self, memory_block: int, write: bool = False) -> tuple[bool, int]:
        """Access a block.

        Args:
            memory_block: The block referenced.
            write: Whether the access is a store (marks the line dirty).

        Returns:
            ``(hit, writebacks)`` — whether it hit, and how many dirty
            lines were written back due to the (possible) eviction.
        """
        line = self._sets[self.geometry.set_of(memory_block)]
        writebacks = 0
        if memory_block in line:
            dirty = line.pop(memory_block)
            line[memory_block] = dirty or write
            return True, 0
        if len(line) >= self.geometry.associativity:
            _, victim_dirty = line.popitem(last=False)
            if victim_dirty:
                writebacks = 1
        line[memory_block] = write
        return False, writebacks

    def run(self, trace: list[Access]) -> AccessCosts:
        """Replay a (block, is_write) trace and return its costs."""
        misses = 0
        writebacks = 0
        for block, write in trace:
            hit, wb = self.access(block, write)
            misses += 0 if hit else 1
            writebacks += wb
        return AccessCosts(misses=misses, writebacks=writebacks)

    def evict_sets(self, cache_sets: set[int]) -> AccessCosts:
        """Evict every line in the given sets (a preemptor's damage).

        Dirty victims are written back immediately — this is the cost the
        *preemption* adds on write-back hardware even before the
        preempted task resumes.
        """
        writebacks = 0
        for s in cache_sets:
            require(
                0 <= s < self.geometry.num_sets,
                f"cache set {s} out of range [0, {self.geometry.num_sets})",
            )
            line = self._sets[s]
            writebacks += sum(1 for dirty in line.values() if dirty)
            line.clear()
        return AccessCosts(misses=0, writebacks=writebacks)

    def contents(self) -> set[int]:
        """Currently cached blocks."""
        return {b for line in self._sets for b in line}

    def dirty_blocks(self) -> set[int]:
        """Currently dirty blocks."""
        return {
            b for line in self._sets for b, dirty in line.items() if dirty
        }

    def clone(self) -> "WritebackLRUCache":
        """Independent copy of the cache state."""
        copy = WritebackLRUCache(self.geometry)
        for idx, line in enumerate(self._sets):
            copy._sets[idx] = OrderedDict(line)
        return copy


def preemption_cost_with_writebacks(
    geometry: CacheGeometry,
    warmup_trace: list[Access],
    resume_trace: list[Access],
    evicted_sets: set[int],
    writeback_time: float,
) -> tuple[float, float]:
    """Measured preemption cost split into reload and write-back parts.

    Replays ``warmup_trace``, injects an eviction of ``evicted_sets``,
    and compares the resume costs with an undisturbed clone.

    Returns:
        ``(reload_cost, writeback_cost)`` where ``reload_cost`` is the
        extra-miss cost (the paper's CRPD) and ``writeback_cost`` the
        extra write-back traffic caused by the preemption (including the
        immediate flush of dirty victims).
    """
    require(writeback_time >= 0, "writeback_time must be >= 0")
    warm = WritebackLRUCache(geometry)
    warm.run(warmup_trace)
    disturbed = warm.clone()
    flush = disturbed.evict_sets(evicted_sets)
    base = warm.run(resume_trace)
    after = disturbed.run(resume_trace)
    reload_cost = (after.misses - base.misses) * geometry.block_reload_time
    writeback_cost = (
        flush.writebacks + after.writebacks - base.writebacks
    ) * writeback_time
    return reload_cost, writeback_cost
