"""Cache geometry and address mapping.

Memory is modelled at the granularity of *memory blocks* (cache-line-sized
chunks).  A block maps to cache set ``block % num_sets``; a direct-mapped
cache is the special case ``associativity == 1``.  ``block_reload_time``
(BRT) is the penalty for re-fetching one evicted block, the unit in which
all CRPD values are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Shape and timing of one cache level.

    Attributes:
        num_sets: Number of cache sets (> 0).
        associativity: Ways per set (> 0); 1 = direct-mapped.
        line_size: Bytes per cache line (> 0); used only by the
            byte-address helpers.
        block_reload_time: Time to reload one evicted block (BRT, >= 0).
    """

    num_sets: int
    associativity: int = 1
    line_size: int = 32
    block_reload_time: float = 1.0

    def __post_init__(self) -> None:
        require(self.num_sets > 0, f"num_sets must be > 0, got {self.num_sets}")
        require(
            self.associativity > 0,
            f"associativity must be > 0, got {self.associativity}",
        )
        require(self.line_size > 0, f"line_size must be > 0, got {self.line_size}")
        require(
            self.block_reload_time >= 0,
            f"block_reload_time must be >= 0, got {self.block_reload_time}",
        )

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.num_sets * self.associativity

    @property
    def is_direct_mapped(self) -> bool:
        """Whether each set holds a single block."""
        return self.associativity == 1

    def set_of(self, memory_block: int) -> int:
        """Cache set a memory block maps to."""
        require(memory_block >= 0, f"memory block must be >= 0, got {memory_block}")
        return memory_block % self.num_sets

    def block_of_address(self, address: int) -> int:
        """Memory block containing a byte address."""
        require(address >= 0, f"address must be >= 0, got {address}")
        return address // self.line_size

    def conflicts(self, block_a: int, block_b: int) -> bool:
        """Whether two memory blocks compete for the same cache set."""
        return self.set_of(block_a) == self.set_of(block_b)
