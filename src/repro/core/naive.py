"""The naive — and *unsound* — point-selection bound (paper, Section V, Fig. 2).

A tempting way to bound the cumulative preemption delay is to select the
set of points ``p_1 < p_2 < ...`` of ``f_i``, pairwise at least ``Q_i``
apart (and with ``p_1 >= Q_i``), maximising ``sum f_i(p_k)``.  The paper's
Figure 2 shows why this is wrong: *paying* preemption delay consumes wall
time without advancing progression, so at run time the preemption points
can be closer than ``Q_i`` on the progression axis, allowing more
preemptions than the static packing admits.

We implement the packing exactly for piecewise-constant functions on an
integer-valued grid (dynamic programming), so the unsoundness can be
demonstrated programmatically: :mod:`repro.experiments.figure2` constructs
an ``f`` and a concrete simulated run whose measured delay exceeds this
"bound".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.delay_function import PreemptionDelayFunction
from repro.utils.checks import require, require_positive


@dataclass(frozen=True, slots=True)
class NaivePointSelection:
    """Result of the naive packing.

    Attributes:
        total_delay: ``sum f(p_k)`` over the selected points (NOT a safe
            bound — see module docstring).
        points: The selected preemption points, increasing, pairwise >= Q
            apart, first one >= Q.
        q: The spacing constraint used.
    """

    total_delay: float
    points: tuple[float, ...]
    q: float


def naive_point_selection_bound(
    f: PreemptionDelayFunction,
    q: float,
    grid_step: float = 1.0,
) -> NaivePointSelection:
    """Maximum-weight selection of preemption points pairwise >= ``q`` apart.

    The continuous packing problem is solved on a uniform grid of pitch
    ``grid_step``; for piecewise-constant ``f`` whose breakpoints and ``q``
    are integer multiples of ``grid_step`` the grid solution is exact,
    because an optimal solution can always be shifted onto plateau edges.

    Args:
        f: The preemption-delay function.
        q: Minimum spacing between selected points (> 0), also the earliest
            admissible first point.
        grid_step: Grid pitch (> 0).

    Returns:
        The optimal selection and its (unsound) delay total.
    """
    require_positive(q, "q")
    require_positive(grid_step, "grid_step")
    wcet = f.wcet
    if q >= wcet:
        return NaivePointSelection(total_delay=0.0, points=(), q=q)

    # Candidate points: the uniform grid on [q, wcet), open at wcet since a
    # task that has completed cannot be preempted.
    n_points = int(math.floor((wcet - q) / grid_step)) + 1
    xs = [q + k * grid_step for k in range(n_points)]
    xs = [x for x in xs if x < wcet]
    if not xs:
        return NaivePointSelection(total_delay=0.0, points=(), q=q)
    values = [f.value(x) for x in xs]

    # DP over candidates: best[i] = best total using points up to index i
    # with i selected; prev[i] = predecessor index or -1.
    best = [0.0] * len(xs)
    prev = [-1] * len(xs)
    # prefix_best[i] = (value, index) of the best selection ending at <= i.
    prefix_best_value = [0.0] * len(xs)
    prefix_best_index = [-1] * len(xs)
    for i, x in enumerate(xs):
        best[i] = values[i]
        prev[i] = -1
        # Find the last candidate at distance >= q to the left.
        j = int(math.floor((x - q - xs[0]) / grid_step + 1e-9))
        if j >= 0:
            j = min(j, i - 1)
            while j >= 0 and xs[j] > x - q:
                j -= 1
            if j >= 0 and prefix_best_value[j] > 0.0:
                best[i] += prefix_best_value[j]
                prev[i] = prefix_best_index[j]
        if i == 0:
            prefix_best_value[i] = best[i]
            prefix_best_index[i] = i
        elif best[i] > prefix_best_value[i - 1]:
            prefix_best_value[i] = best[i]
            prefix_best_index[i] = i
        else:
            prefix_best_value[i] = prefix_best_value[i - 1]
            prefix_best_index[i] = prefix_best_index[i - 1]

    end = prefix_best_index[-1]
    total = prefix_best_value[-1]
    chosen: list[float] = []
    i = end
    while i >= 0:
        chosen.append(xs[i])
        i = prev[i]
    chosen.reverse()
    require(
        all(b - a >= q - 1e-9 for a, b in zip(chosen, chosen[1:])),
        "internal error: selected points violate spacing",
    )
    return NaivePointSelection(total_delay=total, points=tuple(chosen), q=q)
