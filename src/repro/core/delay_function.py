"""The preemption-delay function ``f_i`` of a task (paper, Sections III–IV).

``f_i(t)`` upper-bounds the delay a task pays if it is preempted when its
*progression* — useful work executed so far, excluding previously paid
preemption delay — equals ``t``.  The function is only meaningful on
``[0, C_i]`` where ``C_i`` is the task's worst-case execution time, must be
non-negative, and is only valid for the *first* preemption at each point
(the cumulative analyses of :mod:`repro.core.floating_npr` and
:mod:`repro.core.state_of_the_art` account for repeated preemptions).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.piecewise import PiecewiseFunction, constant, from_points, step
from repro.utils.checks import require, require_positive


class PreemptionDelayFunction:
    """A validated wrapper around a piecewise ``f_i`` on ``[0, C]``.

    Args:
        function: The underlying piecewise function.  Its domain must start
            at 0 and it must be non-negative everywhere.

    Attributes:
        function: The wrapped :class:`~repro.piecewise.PiecewiseFunction`.
    """

    __slots__ = ("function",)

    def __init__(self, function: PiecewiseFunction):
        require(
            function.domain_start == 0,
            f"f_i must be defined from progression 0, domain is {function.domain}",
        )
        require(function.is_non_negative(), "f_i must be non-negative everywhere")
        self.function = function

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_constant(cls, value: float, wcet: float) -> "PreemptionDelayFunction":
        """Constant delay ``value`` over ``[0, wcet]``."""
        require_positive(wcet, "wcet")
        return cls(constant(value, 0.0, wcet))

    @classmethod
    def from_points(
        cls, xs: Sequence[float], ys: Sequence[float]
    ) -> "PreemptionDelayFunction":
        """Continuous piecewise-linear ``f_i`` through the given points."""
        return cls(from_points(xs, ys))

    @classmethod
    def from_step(
        cls, bounds: Sequence[float], values: Sequence[float]
    ) -> "PreemptionDelayFunction":
        """Piecewise-constant ``f_i`` (e.g. one plateau per basic block)."""
        return cls(step(bounds, values))

    @classmethod
    def from_callable_upper(
        cls,
        fn: Callable[[float], float],
        wcet: float,
        knots: int = 2048,
        oversample: int = 8,
    ) -> "PreemptionDelayFunction":
        """Safe piecewise-constant upper bound of a closed-form delay curve."""
        from repro.piecewise import upper_step_from_callable

        require_positive(wcet, "wcet")
        return cls(upper_step_from_callable(fn, 0.0, wcet, knots, oversample))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def wcet(self) -> float:
        """The task's WCET ``C_i`` — the right end of the domain of ``f_i``."""
        return self.function.domain_end

    def value(self, progression: float) -> float:
        """Delay bound for a (first) preemption at ``progression``."""
        return self.function.value(progression)

    def __call__(self, progression: float) -> float:
        return self.value(progression)

    def max_value(self) -> float:
        """The global maximum of ``f_i`` (what Eq. 4 exclusively relies on)."""
        return self.function.max_value()

    def max_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Maximum and leftmost argmax of ``f_i`` on ``[lo, hi] ∩ [0, C]``."""
        lo = max(lo, 0.0)
        hi = min(hi, self.wcet)
        return self.function.max_on(lo, hi)

    def first_meeting_with_descending_line(
        self, lo: float, hi: float, c: float
    ) -> float | None:
        """The paper's ``p∩`` on ``[lo, hi]`` for the line ``D(x) = c - x``."""
        lo = max(lo, 0.0)
        hi = min(hi, self.wcet)
        return self.function.first_meeting_with_descending_line(lo, hi, c)

    def __repr__(self) -> str:
        return (
            f"PreemptionDelayFunction(C={self.wcet:g}, "
            f"max={self.max_value():g}, {len(self.function)} pieces)"
        )
