"""State-of-the-art baseline bound (paper, Eq. 4).

The pre-existing approach the paper compares against charges the *global*
maximum of the delay function once per possible preemption, and iterates
because paying delay lengthens the execution, which in turn admits more
preemptions::

    C'(0) = C
    C'(k) = C + ceil(C'(k-1) / Q) * max_t f(t)

The fixpoint (when it exists) gives ``total_delay = C' - C``.  The method
is oblivious to the *shape* of ``f`` — which is exactly the pessimism
Algorithm 1 removes — so its output is identical for any two functions
sharing ``C`` and ``max f`` (paper, Section VI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.delay_function import PreemptionDelayFunction
from repro.utils.checks import require_non_negative, require_positive

#: Iteration cap; with ``max f < Q`` the recurrence is a contraction on the
#: integer preemption count so real inputs converge in a handful of steps.
DEFAULT_MAX_ITERATIONS = 100_000


@dataclass(frozen=True, slots=True)
class StateOfTheArtBound:
    """Result of the Eq. 4 fixpoint iteration.

    Attributes:
        total_delay: ``C' - C`` at the fixpoint (``math.inf`` on divergence).
        wcet: The task WCET ``C``.
        q: The NPR length ``Q``.
        max_delay: The global maximum of ``f`` used by the recurrence.
        converged: Whether the recurrence reached a fixpoint.
        preemptions: ``ceil(C'/Q)`` at the fixpoint — the number of
            preemptions the bound charges for.
        trace: Successive ``C'`` values, starting at ``C``.
    """

    total_delay: float
    wcet: float
    q: float
    max_delay: float
    converged: bool
    preemptions: int
    trace: tuple[float, ...] = field(repr=False)

    @property
    def inflated_wcet(self) -> float:
        """``C' = C + total_delay``."""
        return self.wcet + self.total_delay


def state_of_the_art_delay_bound(
    f: PreemptionDelayFunction,
    q: float,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    f_max: float | None = None,
) -> StateOfTheArtBound:
    """Compute the Eq. 4 bound for delay function ``f`` and NPR length ``q``.

    Divergence: when ``max f >= q`` each charged preemption admits at least
    one more, so no fixpoint exists; the bound is reported infinite with
    ``converged=False`` (the paper's Figure 5 simply starts its Q sweep
    above that threshold).

    Args:
        f: Preemption-delay function (only ``C`` and ``max f`` are used).
        q: Floating-NPR length (> 0).
        max_iterations: Safety cap on fixpoint iterations.
        f_max: Precomputed ``f.max_value()``.  The recurrence only ever
            reads ``C`` and ``max f``, and the maximum is the expensive
            part — a sweep evaluating many Q against one ``f`` (the
            shared-artifact context layer, :mod:`repro.engine.context`)
            computes it once and passes it here.  Must equal
            ``f.max_value()`` exactly; ``None`` computes it.

    Raises:
        ValueError: if the cap is exhausted before reaching a fixpoint even
            though ``max f < q`` (cannot happen for finite inputs).
    """
    require_positive(q, "q")
    wcet = f.wcet
    max_delay = f.max_value() if f_max is None else f_max
    require_non_negative(max_delay, "max f")

    if max_delay == 0.0:
        return StateOfTheArtBound(
            total_delay=0.0,
            wcet=wcet,
            q=q,
            max_delay=0.0,
            converged=True,
            preemptions=0,
            trace=(wcet,),
        )
    if max_delay >= q:
        # Each window of Q wall-clock units is fully consumed by the charged
        # delay: the recurrence grows without bound.
        return StateOfTheArtBound(
            total_delay=math.inf,
            wcet=wcet,
            q=q,
            max_delay=max_delay,
            converged=False,
            preemptions=0,
            trace=(wcet,),
        )

    trace = [wcet]
    c_prime = wcet
    for _ in range(max_iterations):
        preemptions = math.ceil(c_prime / q)
        updated = wcet + preemptions * max_delay
        trace.append(updated)
        if updated == c_prime:
            return StateOfTheArtBound(
                total_delay=c_prime - wcet,
                wcet=wcet,
                q=q,
                max_delay=max_delay,
                converged=True,
                preemptions=preemptions,
                trace=tuple(trace),
            )
        c_prime = updated
    raise ValueError(
        f"Eq. 4 fixpoint did not stabilise within {max_iterations} iterations "
        f"(C={wcet}, Q={q}, max f={max_delay})"
    )
