"""The paper's primary contribution (substrates S2–S4).

* :func:`floating_npr_delay_bound` — Algorithm 1 (Theorem 1 bound).
* :func:`state_of_the_art_delay_bound` — the Eq. 4 baseline.
* :func:`naive_point_selection_bound` — the unsound packing of Figure 2.
* :func:`compare_bounds` — side-by-side report with dominance checking.
"""

from repro.core.bounds import (
    BoundComparison,
    algorithm1_dominates,
    compare_bounds,
)
from repro.core.delay_function import PreemptionDelayFunction
from repro.core.floating_npr import (
    FloatingNPRBound,
    WindowStep,
    floating_npr_delay_bound,
)
from repro.core.naive import NaivePointSelection, naive_point_selection_bound
from repro.core.state_of_the_art import (
    StateOfTheArtBound,
    state_of_the_art_delay_bound,
)

__all__ = [
    "PreemptionDelayFunction",
    "FloatingNPRBound",
    "WindowStep",
    "floating_npr_delay_bound",
    "StateOfTheArtBound",
    "state_of_the_art_delay_bound",
    "NaivePointSelection",
    "naive_point_selection_bound",
    "BoundComparison",
    "compare_bounds",
    "algorithm1_dominates",
]
