"""Algorithm 1 of the paper: cumulative preemption-delay bound under
floating non-preemptive region (FNPR) scheduling.

Under FNPR scheduling a running task executes at least ``Q_i`` wall-clock
time units between consecutive preemption *opportunities*.  Algorithm 1
walks the progression axis in windows: starting from progression ``prog``,
within the next ``Q_i`` wall-clock units the task pays at most
``delay_max = max f_i`` over ``[prog, p∩]`` and therefore progresses by at
least ``Q_i - delay_max``.  Here ``p∩`` is the first point where ``f_i``
meets the descending line ``D(x) = (prog + Q_i) - x``: a preemption beyond
``p∩`` would leave that point reachable in a later window, so it is
deferred to the next iteration (paper, Fig. 3 and Theorem 1).

Extensions implemented beyond the paper's pseudo-code:

* a divergence guard — when ``delay_max >= Q_i`` the analysis cannot
  guarantee forward progress and the bound is reported as infinite
  (``converged=False``), exactly as Eq. 4 diverges when ``max f >= Q``;
* an optional cap on the number of preemptions (the paper's future-work
  item (ii)): when the release pattern of higher-priority tasks can only
  cause ``k`` preemptions, the bound becomes the sum of the ``k``
  *largest* window charges.  This is sound because (a) the analysis
  windows ``[prog_i, prog_{i+1})`` cover the whole progression axis from
  ``Q`` on, (b) consecutive run-time preemptions are at least
  ``Q - f(x_j)`` apart in progression while window ``i`` is exactly
  ``Q - delay_i <= Q - f(x)`` wide for any ``x`` it contains — so no two
  preemptions share a window — and (c) each window's charge dominates
  ``f`` everywhere inside it.  (Simply stopping after ``k`` windows would
  be UNSOUND: it charges the ``k`` earliest windows, while an adversary
  places its ``k`` preemptions at the worst ones.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.delay_function import PreemptionDelayFunction
from repro.utils.checks import require, require_positive

#: Default hard cap on iterations; Algorithm 1 performs at most
#: ``C / (Q - delay_max)`` iterations, so hitting this cap indicates either
#: a pathological input or near-divergence.
DEFAULT_MAX_ITERATIONS = 1_000_000

#: Minimum guaranteed progression per window before the analysis declares
#: divergence, as a fraction of Q.  Guards against float-precision stalls.
_MIN_PROGRESS_FRACTION = 1e-12


@dataclass(frozen=True, slots=True)
class WindowStep:
    """One iteration of Algorithm 1 (one analysis window).

    Attributes:
        index: 1-based iteration number.
        prog: Progression at the start of the window (paper's ``prog``).
        p_cross: The paper's ``p∩`` — end of the range in which the
            preemption is assumed to happen within this window.
        p_max: Leftmost argmax of ``f`` on ``[prog, p_cross]`` (the assumed
            preemption point).
        delay: ``f(p_max)`` — the delay charged in this window.
        p_next: Progression at the start of the next window
            (``prog + Q - delay``).
    """

    index: int
    prog: float
    p_cross: float
    p_max: float
    delay: float
    p_next: float


@dataclass(frozen=True, slots=True)
class FloatingNPRBound:
    """Result of Algorithm 1.

    Attributes:
        total_delay: Upper bound on the cumulative preemption delay
            (``math.inf`` when the analysis diverges).
        wcet: The task's ``C_i`` (domain of ``f_i``).
        q: The NPR length ``Q_i`` used.
        converged: ``False`` when ``delay_max >= Q`` stalled the analysis.
        preemptions: Number of windows in which a delay was charged.
        steps: Per-iteration trace (useful for plots and for regenerating
            the paper's Figure 3 walkthrough).
    """

    total_delay: float
    wcet: float
    q: float
    converged: bool
    preemptions: int
    steps: tuple[WindowStep, ...] = field(repr=False)

    @property
    def inflated_wcet(self) -> float:
        """``C'_i = C_i + total_delay`` (paper, Eq. 5)."""
        return self.wcet + self.total_delay


def floating_npr_delay_bound(
    f: PreemptionDelayFunction,
    q: float,
    max_preemptions: int | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> FloatingNPRBound:
    """Run Algorithm 1 and return the cumulative preemption-delay bound.

    Args:
        f: The task's preemption-delay function ``f_i`` on ``[0, C_i]``.
        q: The floating non-preemptive region length ``Q_i`` (> 0).
        max_preemptions: Optional upper bound on the number of preemptions
            the release pattern permits (future-work extension): the
            result charges only the ``max_preemptions`` largest window
            delays.  ``None`` reproduces the paper's Algorithm 1 exactly.
        max_iterations: Hard safety cap on the number of windows.

    Returns:
        A :class:`FloatingNPRBound` with the bound, a convergence flag and
        the full per-window trace.

    Raises:
        ValueError: on invalid ``q``/``max_preemptions`` or if
            ``max_iterations`` is exhausted while still converging.
    """
    require_positive(q, "q")
    if max_preemptions is not None:
        require(max_preemptions >= 0, f"max_preemptions must be >= 0, got {max_preemptions}")

    wcet = f.wcet
    steps: list[WindowStep] = []
    total_delay = 0.0
    prog = 0.0
    p_next = q  # no preemption can occur during the first Q units (line 4)

    iteration = 0
    while p_next < wcet:
        iteration += 1
        if iteration > max_iterations:
            raise ValueError(
                f"Algorithm 1 exceeded {max_iterations} iterations "
                f"(C={wcet}, Q={q}); the bound is close to divergence"
            )
        prog = p_next
        window_end = min(prog + q, wcet)
        # p∩: first point where f meets D(x) = (prog + q) - x (lines 7-10).
        p_cross = f.first_meeting_with_descending_line(prog, window_end, prog + q)
        if p_cross is None:
            p_cross = window_end
        delay, p_max = f.max_on(prog, p_cross)
        if delay >= q - q * _MIN_PROGRESS_FRACTION:
            # No forward progress can be guaranteed: the bound diverges.
            return FloatingNPRBound(
                total_delay=math.inf,
                wcet=wcet,
                q=q,
                converged=False,
                preemptions=len(steps),
                steps=tuple(steps),
            )
        p_next = prog + q - delay
        total_delay += delay
        steps.append(
            WindowStep(
                index=iteration,
                prog=prog,
                p_cross=p_cross,
                p_max=p_max,
                delay=delay,
                p_next=p_next,
            )
        )

    preemptions = len(steps)
    if max_preemptions is not None and max_preemptions < len(steps):
        # Release-pattern cap: the adversary gets to pick which windows
        # its (at most) k preemptions land in, so charge the k largest.
        largest = sorted((s.delay for s in steps), reverse=True)
        total_delay = sum(largest[:max_preemptions])
        preemptions = max_preemptions
    return FloatingNPRBound(
        total_delay=total_delay,
        wcet=wcet,
        q=q,
        converged=True,
        preemptions=preemptions,
        steps=tuple(steps),
    )
