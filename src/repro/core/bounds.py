"""Side-by-side comparison of the delay bounds (paper, Section VI).

Bundles Algorithm 1, the Eq. 4 state of the art and (optionally) the naive
packing into a single report per ``(f, Q)`` pair, and provides the
dominance check the paper proves: Algorithm 1's bound never exceeds the
state of the art's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.delay_function import PreemptionDelayFunction
from repro.core.floating_npr import FloatingNPRBound, floating_npr_delay_bound
from repro.core.naive import NaivePointSelection, naive_point_selection_bound
from repro.core.state_of_the_art import (
    StateOfTheArtBound,
    state_of_the_art_delay_bound,
)


@dataclass(frozen=True, slots=True)
class BoundComparison:
    """All bounds for one ``(f, Q)`` pair.

    Attributes:
        q: The NPR length.
        algorithm1: Result of the paper's Algorithm 1.
        state_of_the_art: Result of the Eq. 4 recurrence.
        naive: Optional naive packing result (unsound; for Fig. 2 demos).
    """

    q: float
    algorithm1: FloatingNPRBound
    state_of_the_art: StateOfTheArtBound
    naive: NaivePointSelection | None = None

    @property
    def improvement_factor(self) -> float:
        """``state_of_the_art / algorithm1`` delay ratio (>= 1 by Thm. 1 +
        the SOA's shape-obliviousness); ``inf`` when only SOA diverges and
        ``nan`` when both bounds are zero or both diverge."""
        soa = self.state_of_the_art.total_delay
        alg = self.algorithm1.total_delay
        if math.isinf(soa) and math.isinf(alg):
            return math.nan
        if math.isinf(soa):
            return math.inf
        if alg == 0.0:
            return math.nan if soa == 0.0 else math.inf
        return soa / alg


def compare_bounds(
    f: PreemptionDelayFunction,
    q: float,
    include_naive: bool = False,
    naive_grid_step: float = 1.0,
    f_max: float | None = None,
) -> BoundComparison:
    """Compute every implemented bound for ``(f, q)``.

    Args:
        f: The preemption-delay function.
        q: The floating-NPR length.
        include_naive: Also run the (unsound) naive packing.
        naive_grid_step: Grid pitch for the naive DP.
        f_max: Precomputed ``f.max_value()`` for the Eq. 4 recurrence
            (see :func:`repro.core.state_of_the_art_delay_bound`); a
            context-holding sweep passes it so the global maximum is
            found once per function instead of once per ``(f, q)`` pair.
    """
    return BoundComparison(
        q=q,
        algorithm1=floating_npr_delay_bound(f, q),
        state_of_the_art=state_of_the_art_delay_bound(f, q, f_max=f_max),
        naive=(
            naive_point_selection_bound(f, q, naive_grid_step)
            if include_naive
            else None
        ),
    )


def algorithm1_dominates(comparison: BoundComparison, tolerance: float = 1e-9) -> bool:
    """Whether Algorithm 1's bound is at most the state of the art's.

    Divergence cases: if Algorithm 1 diverges, the SOA must diverge too
    (both stall exactly when ``max f >= Q``); a diverging SOA is dominated
    by any finite Algorithm 1 bound.
    """
    soa = comparison.state_of_the_art.total_delay
    alg = comparison.algorithm1.total_delay
    if math.isinf(alg):
        return math.isinf(soa)
    if math.isinf(soa):
        return True
    return alg <= soa + tolerance
