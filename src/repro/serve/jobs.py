"""Server-side jobs: state machine, single-flight registry, counters.

A *job* is one submitted request's evaluation: content-addressed id,
the sanitized :class:`~repro.api.RunRequest`, the JSONL lines streamed
so far, and a state machine (``queued → running → done | failed |
cancelled``).  Jobs are **shared**: every client submitting the same
request attaches to the same job (single-flight), and any client can
re-attach later by job id and replay the stream from an offset — which
is what makes streams resumable across disconnects.

Thread topology: jobs are *created and observed* on the server's event
loop, but *evaluated* on a job-executor pool thread (one slot per job;
a fanned-out job additionally drives shard subprocesses from its
slot's thread).  The executor thread
appends lines and flips states directly (atomic under the GIL) and
wakes loop-side subscribers through
:meth:`Job.pulse` → ``loop.call_soon_threadsafe``; subscribers follow
the capture-event-then-check pattern (:meth:`Job.change_event`) so no
wakeup can be lost between draining lines and sleeping.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Mapping
from typing import Any

from repro.api.request import RunRequest
from repro.store.keys import scenario_key

#: States a job can rest in (no further lines will be appended).
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_id_for(
    workload: str, params: Mapping[str, Any], fingerprint: str
) -> str:
    """The content-addressed job id of one (workload, params) pair.

    Reuses :func:`repro.store.keys.scenario_key` — sorted-key
    canonical bytes under the server's code fingerprint — so the same
    request from any client on any connection maps to the same job,
    and a code change can never revive a stale job id.
    """
    return scenario_key(
        {"serve-job": {"workload": workload, "params": dict(params)}},
        fingerprint,
    )


class Job:
    """One submitted request's shared evaluation state.

    Attributes:
        id: Content-addressed job id (:func:`job_id_for`).
        request: The sanitized request being evaluated (replaced on
            restart with the resubmitting client's request).
        state: ``queued``/``running``/``done``/``failed``/``cancelled``.
        lines: JSONL record lines streamed so far (grows append-only
            within one attempt; reset on restart).
        error: ``(code, message)`` for failed/cancelled attempts.
        total/cached/computed: Cache statistics of the completed run.
        subscribers: Currently attached client streams.
        attempt: Evaluation attempt counter (restarts increment it).
    """

    def __init__(
        self, job_id: str, request: RunRequest, loop: asyncio.AbstractEventLoop
    ) -> None:
        self.id = job_id
        self.request = request
        self.state = "queued"
        self.lines: list[str] = []
        self.error: tuple[str, str] | None = None
        self.total = 0
        self.cached = 0
        self.computed = 0
        self.subscribers = 0
        self.attempt = 1
        self.cancel_event = threading.Event()
        self._loop = loop
        self._change = asyncio.Event()

    # ------------------------------------------------------------------
    # loop-side observation
    # ------------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        """Whether no further lines or state changes will occur."""
        return self.state in TERMINAL_STATES

    def change_event(self) -> asyncio.Event:
        """The event the *next* :meth:`pulse` will set.

        Capture it **before** inspecting ``lines``/``state``; any
        change after the capture sets exactly this event, so waiting on
        it can never miss an update.
        """
        return self._change

    def _pulse(self) -> None:
        previous, self._change = self._change, asyncio.Event()
        previous.set()

    # ------------------------------------------------------------------
    # executor-side mutation
    # ------------------------------------------------------------------

    def pulse(self) -> None:
        """Wake every loop-side subscriber (thread-safe)."""
        self._loop.call_soon_threadsafe(self._pulse)

    def append_line(self, line: str) -> None:
        """Append one JSONL record line and wake subscribers."""
        self.lines.append(line)
        self.pulse()

    def complete(self, total: int, cached: int, computed: int) -> None:
        """Mark the job done with its cache statistics."""
        self.total, self.cached, self.computed = total, cached, computed
        self.state = "done"
        self.pulse()

    def fail(self, code: str, message: str, state: str = "failed") -> None:
        """Mark the job failed (or ``cancelled``) with an error."""
        self.error = (code, message)
        self.state = state
        self.pulse()

    # ------------------------------------------------------------------
    # restart
    # ------------------------------------------------------------------

    def reset_for_restart(self, request: RunRequest) -> None:
        """Re-arm a terminal failed/cancelled job for a fresh attempt.

        The stream starts over (a failed attempt's partial lines must
        not prefix a clean rerun), under the resubmitting client's
        request — identical params by construction of the job id, but
        possibly different options (e.g. without the fault seam).
        """
        assert self.state in ("failed", "cancelled"), self.state
        self.request = request
        self.state = "queued"
        self.lines = []
        self.error = None
        self.total = self.cached = self.computed = 0
        self.attempt += 1
        self.cancel_event = threading.Event()
        self._pulse()


class JobRegistry:
    """All jobs the server knows, with single-flight submission.

    Lives on the event loop (no locking): every mutation happens in
    loop callbacks.  :meth:`submit` implements the dedup decision —
    attach to a live job, replay a finished one, restart a failed one,
    or admit a new one — and keeps the counters the ``status`` frame
    reports.
    """

    def __init__(self) -> None:
        self.jobs: dict[str, Job] = {}
        self.submitted = 0
        self.singleflight_hits = 0
        self.replays = 0
        self.restarts = 0

    def get(self, job_id: str) -> Job | None:
        """The job called ``job_id``, or ``None``."""
        return self.jobs.get(job_id)

    def queued_count(self) -> int:
        """Jobs currently waiting for the executor."""
        return sum(1 for job in self.jobs.values() if job.state == "queued")

    def submit(
        self,
        job_id: str,
        request: RunRequest,
        loop: asyncio.AbstractEventLoop,
    ) -> tuple[Job, str]:
        """Admit one submission under single-flight semantics.

        Returns:
            ``(job, dedup)`` where ``dedup`` is ``"new"`` (job must be
            enqueued by the caller), ``"inflight"`` (attached to a
            queued/running job), ``"replay"`` (job already done; the
            stream is served from memory/store without recomputation)
            or ``"restart"`` (a failed/cancelled job re-armed — the
            caller must enqueue it again).
        """
        self.submitted += 1
        job = self.jobs.get(job_id)
        if job is None:
            job = Job(job_id, request, loop)
            self.jobs[job_id] = job
            return job, "new"
        if job.state in ("queued", "running"):
            self.singleflight_hits += 1
            return job, "inflight"
        if job.state == "done":
            self.replays += 1
            return job, "replay"
        job.reset_for_restart(request)
        self.restarts += 1
        return job, "restart"

    def state_counts(self) -> dict[str, int]:
        """Jobs per state (for the ``status`` frame)."""
        counts = {
            state: 0
            for state in ("queued", "running", *TERMINAL_STATES)
        }
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
