"""Blocking TCP client for the analysis server.

:class:`ServeClient` is the reference consumer of the
:mod:`repro.serve.protocol` frames — deliberately synchronous (plain
``socket`` + ``makefile``) so tests, benchmarks and shell-style
examples need no event loop.  One client holds one connection; ops are
sequential per connection, matching the server's contract that a
``submit``/``resume`` streams to completion before the next op.

Typical use::

    with ServeClient(host, port) as client:
        lines = client.run(RunRequest.make("sweep", points=20))

``run`` returns the job's JSONL record lines — byte-identical to the
lines a local :class:`repro.engine.JsonlSink` run of the same request
would write.  For resumable consumption, :meth:`ServeClient.submit`
returns a :class:`JobStream`; after a disconnect, a fresh client's
:meth:`ServeClient.resume` with the stream's ``received`` count yields
exactly the remaining records.
"""

from __future__ import annotations

import socket
from typing import IO, Any

from repro.api.request import RunRequest
from repro.api.wire import request_to_wire
from repro.serve.protocol import (
    DEFAULT_LINE_LIMIT,
    PROTOCOL_VERSION,
    encode_frame,
)


class ServeError(RuntimeError):
    """A server-reported error frame, or a transport failure.

    Attributes:
        code: The protocol error code (``busy``, ``unknown-job`` …) or
            ``"disconnected"`` for transport failures.
        job: The job id the error concerns, when the server sent one.
    """

    def __init__(
        self, code: str, message: str, job: str | None = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.job = job


class JobStream:
    """Iterator over one job's record lines (strings, no newline).

    Attributes:
        job: The job id (resume handle).
        state: Job state at attach time.
        dedup: ``new``/``inflight``/``replay``/``restart``/``resume``.
        received: Records consumed so far **including** any pre-resume
            offset — exactly the ``last_record`` value a later
            :meth:`ServeClient.resume` needs.
        end: The ``end`` frame (total/cached/computed), once exhausted.
    """

    def __init__(
        self, client: "ServeClient", frame: dict[str, Any], offset: int = 0
    ) -> None:
        self._client = client
        self.job: str = frame["job"]
        self.state: str = frame.get("state", "")
        self.dedup: str = frame.get("dedup", "")
        self.received = offset
        self.end: dict[str, Any] | None = None

    def __iter__(self) -> "JobStream":
        return self

    def __next__(self) -> str:
        if self.end is not None:
            raise StopIteration
        frame = self._client._recv()
        kind = frame.get("frame")
        if kind == "record":
            seq = frame.get("seq")
            if seq != self.received + 1:
                raise ServeError(
                    "disconnected",
                    f"record out of order: expected seq "
                    f"{self.received + 1}, got {seq!r}",
                    job=self.job,
                )
            self.received += 1
            return frame["line"]
        if kind == "end":
            self.end = frame
            raise StopIteration
        if kind == "error":
            raise ServeError(
                frame.get("code", "job-failed"),
                frame.get("message", "server reported an error"),
                job=frame.get("job", self.job),
            )
        raise ServeError(
            "disconnected",
            f"unexpected frame {kind!r} inside a job stream",
            job=self.job,
        )

    def lines(self) -> list[str]:
        """Drain the stream into a list of record lines."""
        return list(self)


class ServeClient:
    """One blocking connection to an analysis server.

    Args:
        host: Server address.
        port: Server port.
        timeout: Socket timeout in seconds for connect and reads —
            generous by default because a submit blocks while the
            server evaluates fresh scenarios.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 120.0
    ) -> None:
        self._sock: socket.socket | None = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file: IO[bytes] = self._sock.makefile("rb")
        self.hello = self._recv()
        if self.hello.get("frame") != "hello":
            raise ServeError(
                "disconnected",
                f"expected a hello frame, got {self.hello.get('frame')!r}",
            )
        if self.hello.get("protocol") != PROTOCOL_VERSION:
            raise ServeError(
                "disconnected",
                f"server speaks protocol {self.hello.get('protocol')!r}, "
                f"client speaks {PROTOCOL_VERSION}",
            )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _send(self, frame: dict[str, Any]) -> None:
        if self._sock is None:
            raise ServeError("disconnected", "client is closed")
        self._sock.sendall(encode_frame(frame))

    def _recv(self) -> dict[str, Any]:
        import json

        line = self._file.readline(DEFAULT_LINE_LIMIT + 1024)
        if not line:
            raise ServeError(
                "disconnected", "server closed the connection"
            )
        try:
            frame = json.loads(line)
        except ValueError as exc:
            raise ServeError(
                "disconnected", f"unparseable server frame: {exc}"
            ) from exc
        if not isinstance(frame, dict):
            raise ServeError(
                "disconnected",
                f"server frame is not an object: {type(frame).__name__}",
            )
        return frame

    def _expect_job(self, offset: int = 0) -> JobStream:
        frame = self._recv()
        kind = frame.get("frame")
        if kind == "error":
            raise ServeError(
                frame.get("code", "bad-frame"),
                frame.get("message", "server rejected the request"),
                job=frame.get("job"),
            )
        if kind != "job":
            raise ServeError(
                "disconnected", f"expected a job frame, got {kind!r}"
            )
        return JobStream(self, frame, offset=offset)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def submit(self, request: RunRequest) -> JobStream:
        """Submit a request; returns the (possibly deduped) job stream.

        Raises:
            ServeError: ``busy`` under backpressure, ``bad-request``/
                ``unsupported-workload`` for rejected requests.
        """
        self._send({"op": "submit", "request": request_to_wire(request)})
        return self._expect_job()

    def resume(self, job_id: str, last_record: int = 0) -> JobStream:
        """Re-attach to a job, streaming records after ``last_record``.

        Raises:
            ServeError: ``unknown-job`` or ``bad-offset``.
        """
        self._send(
            {"op": "resume", "job": job_id, "last_record": last_record}
        )
        return self._expect_job(offset=last_record)

    def run(self, request: RunRequest) -> list[str]:
        """Submit and drain: the job's record lines, in order.

        Raises:
            ServeError: any rejection, or a failed/cancelled job.
        """
        return self.submit(request).lines()

    def status(self) -> dict[str, Any]:
        """The server's counters snapshot (``status`` frame).

        Includes the worker-pool gauges ``workers`` (slot count) and
        ``busy_slots`` (slots currently held by jobs and their shard
        fan-outs) alongside the dedup/backpressure counters.
        """
        self._send({"op": "status"})
        frame = self._recv()
        if frame.get("frame") != "status":
            raise ServeError(
                "disconnected",
                f"expected a status frame, got {frame.get('frame')!r}",
            )
        return frame

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation of a job (ack'd immediately).

        Raises:
            ServeError: ``unknown-job``.
        """
        self._send({"op": "cancel", "job": job_id})
        frame = self._recv()
        if frame.get("frame") == "error":
            raise ServeError(
                frame.get("code", "unknown-job"),
                frame.get("message", "cancel failed"),
                job=frame.get("job"),
            )
        return frame

    def ping(self) -> bool:
        """Round-trip liveness check."""
        self._send({"op": "ping"})
        return self._recv().get("frame") == "pong"

    def send_raw(self, payload: bytes) -> dict[str, Any]:
        """Send raw bytes and read one frame (fault-injection tests)."""
        if self._sock is None:
            raise ServeError("disconnected", "client is closed")
        self._sock.sendall(payload)
        return self._recv()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        if self._sock is not None:
            try:
                self._file.close()
            finally:
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
