"""The asyncio analysis server: accept, dedup, evaluate, stream.

One :class:`AnalysisServer` owns four cooperating pieces:

* an **asyncio TCP server** speaking the :mod:`repro.serve.protocol`
  frames, one connection per client, ops handled sequentially per
  connection (a ``submit``/``resume`` streams to completion before the
  next op is read);
* a **job registry** (:class:`repro.serve.jobs.JobRegistry`) giving
  every request a content-addressed job id with single-flight
  semantics;
* a **bounded job queue** — at most ``max_queued`` jobs wait for the
  executor; submissions beyond that are rejected with a ``busy`` error
  frame (the backpressure contract);
* a **single job-executor thread** that evaluates queued jobs one at a
  time through :func:`repro.engine.run_cached_batch` against one
  shared :class:`repro.store.ResultStore`.  The store is opened
  lazily *inside* that thread (sqlite connections are thread-bound),
  which is also why jobs are strictly serial: one thread, one
  connection, no cross-thread sqlite traffic.

Dedup therefore happens at two levels: identical requests collapse to
one job (single-flight), and distinct requests sharing scenarios hit
the store's content-addressed cache — a scenario any client ever
computed is never computed again.

Entry points: :func:`run_server` (blocking; the ``repro serve`` CLI
workload), and :func:`start_server` (background thread returning a
:class:`ServerHandle`; tests, benchmarks and examples).
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.options import ExecutionOptions
from repro.api.plan import PLANNABLE_WORKLOADS, plan_scenarios
from repro.api.request import RunRequest
from repro.api.wire import request_from_wire
from repro.api.workloads import get_workload
from repro.engine import JobCancelled, WorkerError, record_line, run_cached_batch
from repro.engine.sinks import ResultSink
from repro.serve.jobs import Job, JobRegistry, job_id_for
from repro.serve.protocol import (
    CLIENT_OPS,
    DEFAULT_LINE_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
)
from repro.store import ResultStore
from repro.store.keys import package_fingerprint

#: Extra reader allowance so a frame exactly at the limit still parses
#: (the protocol limit is on the payload; the newline needs a byte too).
_READER_SLACK = 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server needs to run.

    Attributes:
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free one (tests).
        store: Path of the shared result store (opened inside the
            job-executor thread; must be a path, never an open store).
        jobs: Engine pool width for fresh scenarios (``None`` inline).
        chunk: Engine chunk size (``None`` auto).
        max_queued: Queued-job bound; submissions beyond it get
            ``busy`` error frames instead of unbounded queueing.
        line_limit: Per-frame byte budget for client lines.
        allow_fail_after: Honor the ``fail_after`` fault-injection
            option of submitted requests (tests only; off by default
            so no client can crash a production server's jobs).
        ready_file: Optional path that receives ``"<host> <port>"``
            once the server is listening (lets a shell script with
            ``port=0`` discover the bound port).
    """

    host: str = "127.0.0.1"
    port: int = 0
    store: str = ""
    jobs: int | None = None
    chunk: int | None = None
    max_queued: int = 16
    line_limit: int = DEFAULT_LINE_LIMIT
    allow_fail_after: bool = False
    ready_file: str = ""


class _JobSink(ResultSink):
    """Feeds a job's stream: one verbatim JSONL line per record.

    Uses :func:`repro.engine.record_line` — the exact serialization
    :class:`repro.engine.JsonlSink` writes — so a served stream is
    byte-identical to a local sink file by construction.
    """

    def __init__(self, job: Job) -> None:
        self._job = job

    def write(self, record: Any) -> None:
        self._job.append_line(record_line(record))


class AnalysisServer:
    """The running server: loop-side state and the executor bridge.

    Construct with a :class:`ServeConfig`, then ``await start()`` from
    a running loop; ``await stop()`` tears everything down and the
    statistics remain readable via :meth:`stats`.
    """

    def __init__(self, config: ServeConfig) -> None:
        if not config.store:
            raise ValueError("ServeConfig.store must be a store path")
        self._config = config
        self._registry = JobRegistry()
        self._fingerprint = package_fingerprint("repro")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._worker_task: asyncio.Task[None] | None = None
        self._queue: asyncio.Queue[Job] | None = None
        self._executor: Any = None
        self._store: ResultStore | None = None
        self.host = config.host
        self.port = config.port
        # loop-side counters beyond what the registry keeps
        self._connections = 0
        self._live_connections = 0
        self._records_streamed = 0
        self._rejected = 0
        self._bad_frames = 0
        self._scenarios_cached = 0
        self._scenarios_computed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the job worker, and (optionally) report ready."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job"
        )
        self._server = await asyncio.start_server(
            self._handle_client,
            self._config.host,
            self._config.port,
            limit=self._config.line_limit + _READER_SLACK,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._worker_task = asyncio.create_task(self._job_worker())
        if self._config.ready_file:
            ready = Path(self._config.ready_file)
            banner = f"{self.host} {self.port}\n"

            def publish() -> None:
                ready.parent.mkdir(parents=True, exist_ok=True)
                ready.write_text(banner)

            await asyncio.to_thread(publish)

    async def stop(self) -> None:
        """Stop accepting, cancel live jobs, close the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
        # A running job stops at its next record checkpoint; the work
        # already computed is committed, so a restart resumes it.
        for job in self._registry.jobs.values():
            if not job.terminal:
                job.cancel_event.set()
        if self._executor is not None:
            if self._store is not None:
                await self._loop.run_in_executor(
                    self._executor, self._store.close
                )
                self._store = None
            self._executor.shutdown(wait=True)
            self._executor = None

    def stats(self) -> dict[str, Any]:
        """Counters snapshot (also the ``status`` frame payload)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "connections": self._connections,
            "live_connections": self._live_connections,
            "submitted": self._registry.submitted,
            "singleflight_hits": self._registry.singleflight_hits,
            "replays": self._registry.replays,
            "restarts": self._registry.restarts,
            "rejected": self._rejected,
            "bad_frames": self._bad_frames,
            "records_streamed": self._records_streamed,
            "scenarios_cached": self._scenarios_cached,
            "scenarios_computed": self._scenarios_computed,
            "jobs": self._registry.state_counts(),
        }

    # ------------------------------------------------------------------
    # job execution (executor thread)
    # ------------------------------------------------------------------

    def _job_store(self) -> ResultStore:
        # Lazily opened on first use *inside* the executor thread:
        # sqlite connections refuse cross-thread use, and every job
        # runs on this one thread, so one connection serves them all.
        if self._store is None:
            self._store = ResultStore(
                self._config.store, fingerprint=self._fingerprint
            )
        return self._store

    def _run_job(self, job: Job) -> None:
        """Evaluate one job on the executor thread."""
        try:
            workload = get_workload(job.request.workload)
            params = workload.resolve_params(job.request.params_dict())
            plan = plan_scenarios(job.request.workload, params)
            store = self._job_store()
            store.set_job_manifest(job.id, plan.manifest)
            fail_after = job.request.options.fail_after
            on_result: Callable[[int], None] | None = None
            if fail_after is not None:

                def on_result(count: int, _limit: int = fail_after) -> None:
                    if count >= _limit:
                        raise KeyboardInterrupt(
                            f"fail_after={_limit} fault injected"
                        )

            run = run_cached_batch(
                plan.worker,
                plan.scenarios,
                store,
                sink=_JobSink(job),
                collect=False,
                max_workers=self._config.jobs,
                chunk_size=self._config.chunk,
                group_by=plan.group_by,
                on_result=on_result,
                cancel=job.cancel_event.is_set,
                backend=job.request.options.backend,
                batch_worker=plan.batch_worker,
            )
            # Count scenarios *before* the job turns terminal: the end
            # frame releases subscribers, and a client that saw it must
            # find these totals already reflected in ``status``.
            self._scenarios_cached += run.cached
            self._scenarios_computed += run.computed
            job.complete(run.total, run.cached, run.computed)
        except JobCancelled as exc:
            job.fail("job-cancelled", str(exc), state="cancelled")
        except KeyboardInterrupt as exc:
            job.fail(
                "job-failed",
                f"job killed mid-run ({exc}); completed scenarios are "
                "checkpointed — resubmit to resume from them",
            )
        except WorkerError as exc:
            job.fail("job-failed", str(exc))
        except ValueError as exc:
            # Plan-time rejection: bad campaign spec, unknown family …
            job.fail("bad-request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            job.fail("job-failed", f"{type(exc).__name__}: {exc}")

    async def _job_worker(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            job = await self._queue.get()
            if job.state != "queued":
                continue  # cancelled while waiting
            job.state = "running"
            job.pulse()
            await self._loop.run_in_executor(
                self._executor, self._run_job, job
            )

    # ------------------------------------------------------------------
    # connection handling (event loop)
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._live_connections += 1
        try:
            await self._send(
                writer,
                {
                    "frame": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "workloads": list(PLANNABLE_WORKLOADS),
                },
            )
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        break  # clean EOF: client closed
                    line = exc.partial  # final unterminated line
                except asyncio.LimitOverrunError:
                    # The line outgrew the reader buffer.  Report it,
                    # then discard through the next newline so the
                    # connection's framing recovers — one bad client
                    # frame must never cost anyone the connection.
                    self._bad_frames += 1
                    oversized = ProtocolError(
                        "oversized",
                        "frame exceeds the "
                        f"{self._config.line_limit}-byte limit",
                    )
                    await self._send(writer, oversized.frame())
                    if not await self._discard_line_tail(reader):
                        break  # EOF while discarding
                    continue
                if not line.strip():
                    continue
                try:
                    await self._handle_frame(line, reader, writer)
                except ProtocolError as exc:
                    self._bad_frames += 1
                    await self._send(writer, exc.frame())
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away; jobs keep their own lifecycle
        finally:
            self._live_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _discard_line_tail(reader: asyncio.StreamReader) -> bool:
        """Discard input through the next newline; ``False`` on EOF.

        Recovers framing after an over-limit line: everything up to
        and including the line's terminating newline is dropped, and
        whatever follows it is left intact for the normal read loop.
        """
        while True:
            try:
                await reader.readuntil(b"\n")
                return True
            except asyncio.IncompleteReadError:
                return False
            except asyncio.LimitOverrunError as exc:
                if not await reader.read(exc.consumed or 1):
                    return False

    async def _handle_frame(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from repro.serve.protocol import decode_frame

        frame = decode_frame(line, limit=self._config.line_limit)
        op = frame.get("op")
        if op not in CLIENT_OPS:
            raise ProtocolError(
                "bad-frame",
                f"unknown op {op!r}; expected one of "
                f"{', '.join(CLIENT_OPS)}",
            )
        if op == "ping":
            await self._send(writer, {"frame": "pong"})
        elif op == "status":
            await self._send(writer, {"frame": "status", **self.stats()})
        elif op == "cancel":
            await self._op_cancel(frame, writer)
        elif op == "submit":
            await self._op_submit(frame, reader, writer)
        else:  # resume
            await self._op_resume(frame, reader, writer)

    # -- ops -----------------------------------------------------------

    def _sanitize(self, request: RunRequest) -> RunRequest:
        """The request the server actually evaluates.

        Execution policy (store, pool width, sinks) is the *server's*;
        client-supplied options are discarded except

        * ``backend`` — the kernel backend is a *client* execution
          option: every registered backend produces bit-identical
          records, so honoring it changes how the job computes, never
          what it computes — which is also why it must not (and,
          :func:`~repro.serve.jobs.job_id_for` deriving the id from
          workload + params + fingerprint alone, structurally cannot)
          enter the job id;
        * the ``fail_after`` fault seam, and that only when the config
          opts in.
        """
        fail_after = None
        if self._config.allow_fail_after:
            fail_after = request.options.fail_after
        return RunRequest(
            workload=request.workload,
            params=request.params,
            options=ExecutionOptions(
                fail_after=fail_after,
                backend=request.options.backend,
            ),
        )

    async def _op_submit(
        self,
        frame: dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._loop is not None and self._queue is not None
        try:
            request = request_from_wire(frame.get("request"))
            if request.workload not in PLANNABLE_WORKLOADS:
                raise ProtocolError(
                    "unsupported-workload",
                    f"workload {request.workload!r} is not servable; "
                    f"servable: {', '.join(PLANNABLE_WORKLOADS)}",
                )
            request = self._sanitize(request)
            workload = get_workload(request.workload)
            params = workload.resolve_params(request.params_dict())
        except ProtocolError:
            raise
        except ValueError as exc:
            raise ProtocolError("bad-request", str(exc)) from exc
        job_id = job_id_for(request.workload, params, self._fingerprint)
        existing = self._registry.get(job_id)
        needs_enqueue = existing is None or existing.state in (
            "failed",
            "cancelled",
        )
        if (
            needs_enqueue
            and self._registry.queued_count() >= self._config.max_queued
        ):
            self._rejected += 1
            raise ProtocolError(
                "busy",
                f"job queue is full ({self._config.max_queued} queued); "
                "retry later",
            )
        job, dedup = self._registry.submit(job_id, request, self._loop)
        if dedup in ("new", "restart"):
            self._queue.put_nowait(job)
        await self._send(
            writer,
            {
                "frame": "job",
                "job": job.id,
                "state": job.state,
                "dedup": dedup,
            },
        )
        await self._stream(job, reader, writer, cursor=0)

    async def _op_resume(
        self,
        frame: dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self._registry.get(str(frame.get("job")))
        if job is None:
            raise ProtocolError(
                "unknown-job", f"no job {frame.get('job')!r} on this server"
            )
        last = frame.get("last_record", 0)
        if not isinstance(last, int) or isinstance(last, bool) or last < 0:
            raise ProtocolError(
                "bad-offset",
                f"last_record must be a non-negative integer, got {last!r}",
            )
        if last > len(job.lines):
            raise ProtocolError(
                "bad-offset",
                f"last_record={last} but job {job.id[:12]}… has only "
                f"{len(job.lines)} record(s)",
            )
        await self._send(
            writer,
            {
                "frame": "job",
                "job": job.id,
                "state": job.state,
                "dedup": "resume",
            },
        )
        await self._stream(job, reader, writer, cursor=last)

    async def _op_cancel(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self._registry.get(str(frame.get("job")))
        if job is None:
            raise ProtocolError(
                "unknown-job", f"no job {frame.get('job')!r} on this server"
            )
        job.cancel_event.set()
        if job.state == "queued":
            job.fail(
                "job-cancelled", "cancelled while queued", state="cancelled"
            )
        await self._send(writer, {"frame": "cancelled", "job": job.id})

    # -- streaming -----------------------------------------------------

    async def _stream(
        self,
        job: Job,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        cursor: int,
    ) -> None:
        """Send record frames from ``cursor`` until the job is terminal.

        The capture-event-then-check pattern pairs with
        :meth:`Job.change_event`: the event captured *before* draining
        is the one any later change sets, so no update is missed
        between the drain and the wait.

        While waiting, a one-byte read watches the connection: sends
        only fail once the OS notices, so without it a vanished client
        would pin its subscription (and keep a queued job alive) until
        the job produced output.  The protocol forbids client frames
        during an active stream, so any inbound byte here — data or
        EOF — means the subscription is over.
        """
        job.subscribers += 1
        eof_watch = asyncio.create_task(reader.read(1))
        try:
            while True:
                changed = job.change_event()
                while cursor < len(job.lines):
                    line = job.lines[cursor]
                    cursor += 1
                    self._records_streamed += 1
                    await self._send(
                        writer,
                        {
                            "frame": "record",
                            "job": job.id,
                            "seq": cursor,
                            "line": line,
                        },
                    )
                if job.terminal:
                    break
                waiter = asyncio.create_task(changed.wait())
                done, _ = await asyncio.wait(
                    {waiter, eof_watch},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_watch in done:
                    waiter.cancel()
                    raise ConnectionResetError(
                        "client disconnected (or spoke) mid-stream"
                    )
            # Stop watching *before* the final frame: the client may
            # legally send its next op the moment it sees the stream
            # end, and the watcher must not swallow that op's bytes.
            if not eof_watch.done():
                eof_watch.cancel()
                try:
                    await eof_watch
                except asyncio.CancelledError:
                    pass
            else:
                # Completed watcher: EOF, or a byte we already consumed
                # (a protocol violation) — either way the line framing
                # is unrecoverable, so the connection is done.
                raise ConnectionResetError(
                    "client disconnected (or spoke) mid-stream"
                )
            if job.state == "done":
                await self._send(
                    writer,
                    {
                        "frame": "end",
                        "job": job.id,
                        "state": "done",
                        "total": job.total,
                        "cached": job.cached,
                        "computed": job.computed,
                    },
                )
            else:
                code, message = job.error or ("job-failed", "job failed")
                await self._send(
                    writer,
                    {
                        "frame": "error",
                        "code": code,
                        "message": message,
                        "job": job.id,
                    },
                )
        finally:
            if not eof_watch.done():
                eof_watch.cancel()
            job.subscribers -= 1
            if job.state == "queued" and job.subscribers == 0:
                # Nobody is waiting for it and it never started: drop
                # it (a running job keeps going — its results land in
                # the shared store, and the client may resume later).
                job.cancel_event.set()
                job.fail(
                    "job-cancelled",
                    "all subscribers disconnected before the job started",
                    state="cancelled",
                )

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, frame: dict[str, Any]
    ) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()


def run_server(
    config: ServeConfig,
    stop_event: threading.Event | None = None,
    on_started: Callable[[str, int], None] | None = None,
) -> dict[str, Any]:
    """Run a server until interrupted; returns the final statistics.

    Args:
        config: Server configuration.
        stop_event: Optional external stop signal (polled); without
            one the server runs until :class:`KeyboardInterrupt`.
        on_started: Optional ``(host, port)`` callback once listening.

    Returns:
        The final :meth:`AnalysisServer.stats` snapshot.
    """
    server = AnalysisServer(config)

    async def main() -> dict[str, Any]:
        await server.start()
        if on_started is not None:
            on_started(server.host, server.port)
        try:
            if stop_event is None:
                await asyncio.Event().wait()  # until KeyboardInterrupt
            else:
                while not stop_event.is_set():
                    await asyncio.sleep(0.05)
        finally:
            await server.stop()
        return server.stats()

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return server.stats()


class ServerHandle:
    """A server running on a background thread (tests and examples).

    Obtained from :func:`start_server`; ``host``/``port`` give the
    bound address and :meth:`stop` shuts down and returns the final
    statistics.  Usable as a context manager.
    """

    def __init__(self, config: ServeConfig) -> None:
        self._config = config
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._stats: dict[str, Any] | None = None
        self._error: BaseException | None = None
        self.host = config.host
        self.port = config.port
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _on_started(self, host: str, port: int) -> None:
        self.host, self.port = host, port
        self._ready.set()

    def _run(self) -> None:
        try:
            self._stats = run_server(
                self._config,
                stop_event=self._stop,
                on_started=self._on_started,
            )
        except BaseException as exc:  # noqa: BLE001 - reported in start/stop
            self._error = exc
        finally:
            self._ready.set()

    def _start(self, timeout: float) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            self._stop.set()
            raise TimeoutError(
                f"server did not start within {timeout:.0f}s"
            )
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout: float = 30.0) -> dict[str, Any]:
        """Shut the server down; returns the final statistics."""
        self._stop.set()
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error
        return dict(self._stats or {})

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._thread.is_alive():
            self.stop()


def start_server(config: ServeConfig, timeout: float = 30.0) -> ServerHandle:
    """Start a server on a background thread and wait until it listens.

    Args:
        config: Server configuration (``port=0`` picks a free port;
            read the bound one off the returned handle).
        timeout: Seconds to wait for the listener before giving up.

    Returns:
        A :class:`ServerHandle` whose ``host``/``port`` are live.
    """
    return ServerHandle(config)._start(timeout)
