"""The asyncio analysis server: accept, dedup, evaluate, stream.

One :class:`AnalysisServer` owns four cooperating pieces:

* an **asyncio TCP server** speaking the :mod:`repro.serve.protocol`
  frames, one connection per client, ops handled sequentially per
  connection (a ``submit``/``resume`` streams to completion before the
  next op is read);
* a **job registry** (:class:`repro.serve.jobs.JobRegistry`) giving
  every request a content-addressed job id with single-flight
  semantics;
* a **bounded job queue** — at most ``max_queued`` jobs wait for a
  pool slot; submissions beyond that are rejected with a ``busy``
  error frame (the backpressure contract);
* a **job-executor pool** of ``workers`` slots.  Independent jobs run
  concurrently, one slot each, and a single large job additionally
  *fans out* across the idle slots: the server plans ``k`` shard
  sub-runs (``1/k`` … ``k/k`` of the grid, ``k`` from
  :func:`repro.api.options.plan_fanout`), evaluates each in a worker
  process through :func:`repro.api.execution.execute_scenarios` into a
  scratch per-shard store, merges the shards back into the shared
  store and emits the final records from it — byte-identical to a solo
  :meth:`repro.api.Workbench.run` by construction, because emission
  always happens from the merged store in scenario order
  (:func:`repro.engine.emit_from_store`).

Dedup happens at three levels: identical requests collapse to one job
(single-flight), concurrently *running* jobs that overlap claim their
scenario keys so no two slots ever compute the same scenario, and
distinct requests sharing scenarios hit the store's content-addressed
cache — a scenario any client ever computed is never computed again.

Entry points: :func:`run_server` (blocking; the ``repro serve`` CLI
workload), and :func:`start_server` (background thread returning a
:class:`ServerHandle`; tests, benchmarks and examples).
"""

from __future__ import annotations

import asyncio
import os
import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.execution import execute_scenarios
from repro.api.options import ExecutionOptions, format_shard, plan_fanout
from repro.api.plan import PLANNABLE_WORKLOADS, plan_scenarios
from repro.api.request import RunRequest
from repro.api.wire import request_from_wire
from repro.api.workloads import get_workload
from repro.engine import (
    CachedRun,
    JobCancelled,
    WorkerError,
    emit_from_store,
    record_line,
    run_cached_batch,
)
from repro.engine.sinks import ResultSink
from repro.serve.jobs import Job, JobRegistry, job_id_for
from repro.serve.protocol import (
    CLIENT_OPS,
    DEFAULT_LINE_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
)
from repro.store import ResultStore
from repro.store.keys import package_fingerprint, scenario_key

#: Extra reader allowance so a frame exactly at the limit still parses
#: (the protocol limit is on the payload; the newline needs a byte too).
_READER_SLACK = 1024

#: Upper bound of the default pool width: serving is I/O-light and the
#: engine already parallelizes inside a shard, so past a handful of
#: slots more concurrency only buys scheduler churn.
_DEFAULT_WORKER_CAP = 8


def default_workers() -> int:
    """The pool width used when :attr:`ServeConfig.workers` is unset."""
    return max(1, min(os.cpu_count() or 1, _DEFAULT_WORKER_CAP))


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server needs to run.

    Attributes:
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free one (tests).
        store: Path of the shared result store (opened per job run;
            must be a path, never an open store).
        jobs: Engine pool width for fresh scenarios (``None`` inline).
        chunk: Engine chunk size (``None`` auto).
        workers: Concurrent job slots (``None`` =
            :func:`default_workers`, i.e. ``os.cpu_count()`` capped).
            Independent jobs each take one slot; a large job fans out
            over the idle ones via shard sub-runs.  ``1`` reproduces
            the strictly serialized pre-pool behavior.
        max_queued: Queued-job bound; submissions beyond it get
            ``busy`` error frames instead of unbounded queueing.
        line_limit: Per-frame byte budget for client lines.
        allow_fail_after: Honor the ``fail_after`` fault-injection
            option of submitted requests (tests only; off by default
            so no client can crash a production server's jobs).
        ready_file: Optional path that receives ``"<host> <port>"``
            once the server is listening (lets a shell script with
            ``port=0`` discover the bound port).
    """

    host: str = "127.0.0.1"
    port: int = 0
    store: str = ""
    jobs: int | None = None
    chunk: int | None = None
    workers: int | None = None
    max_queued: int = 16
    line_limit: int = DEFAULT_LINE_LIMIT
    allow_fail_after: bool = False
    ready_file: str = ""


class _JobSink(ResultSink):
    """Feeds a job's stream: one verbatim JSONL line per record.

    Uses :func:`repro.engine.record_line` — the exact serialization
    :class:`repro.engine.JsonlSink` writes — so a served stream is
    byte-identical to a local sink file by construction.
    """

    def __init__(self, job: Job) -> None:
        self._job = job

    def write(self, record: Any) -> None:
        self._job.append_line(record_line(record))


def _evaluate_shard(spec: dict[str, Any]) -> dict[str, Any]:
    """Evaluate one shard sub-run (entry point of a worker process).

    Re-plans the job's grid from its wire-shaped params, then
    evaluates only the ``i/N`` slice through
    :func:`repro.api.execution.execute_scenarios` into the shard's own
    scratch store.  Never raises: every outcome — success, client
    cancellation (the coordinator's cancel file), fault injection, a
    failing scenario — crosses the process boundary as a plain dict,
    so the coordinator can always tell *which* shard stopped and why.
    """
    try:
        workload = get_workload(spec["workload"])
        params = workload.resolve_params(spec["params"])
        plan = plan_scenarios(spec["workload"], params)
        cancel_path = Path(spec["cancel_path"])
        run = execute_scenarios(
            plan.worker,
            plan.scenarios,
            options=ExecutionOptions(
                store=spec["store"],
                shard=spec["shard"],
                backend=spec["backend"],
                fail_after=spec["fail_after"],
            ),
            manifest=plan.manifest,
            group_by=plan.group_by,
            collect=False,
            batch_worker=plan.batch_worker,
            cancel=cancel_path.exists,
        )
        return {
            "ok": True,
            "total": run.total,
            "cached": run.cached,
            "computed": run.computed,
        }
    except JobCancelled as exc:
        return {"ok": False, "kind": "cancelled", "message": str(exc)}
    except KeyboardInterrupt as exc:
        # execute_scenarios' fail_after seam raises a bare interrupt;
        # keep the frame informative either way.
        message = str(exc) or "fail_after fault injected"
        return {"ok": False, "kind": "killed", "message": message}
    except WorkerError as exc:
        return {
            "ok": False,
            "kind": "worker-error",
            "index": exc.index,
            "scenario_repr": exc.scenario_repr,
            "cause_repr": exc.cause_repr,
        }
    except Exception as exc:
        return {
            "ok": False,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
        }


class AnalysisServer:
    """The running server: loop-side state and the executor bridge.

    Construct with a :class:`ServeConfig`, then ``await start()`` from
    a running loop; ``await stop()`` tears everything down and the
    statistics remain readable via :meth:`stats`.
    """

    def __init__(self, config: ServeConfig) -> None:
        if not config.store:
            raise ValueError("ServeConfig.store must be a store path")
        if config.workers is not None and config.workers < 1:
            raise ValueError(
                f"ServeConfig.workers must be >= 1, got {config.workers}"
            )
        self._config = config
        self._registry = JobRegistry()
        self._fingerprint = package_fingerprint("repro")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: Any = None
        self._workers = config.workers or default_workers()
        self._stopping = False
        # Pool accounting: a plain lock, usable from the loop *and* the
        # executor threads (a fanned-out job reserves extra slots from
        # its own thread, never through the loop).
        self._pending: deque[Job] = deque()
        self._slot_lock = threading.Lock()
        self._slots_busy = 0
        # Scenario claims: running jobs that overlap serialize on the
        # scenario level so no two slots compute the same key.
        self._claims: dict[str, str] = {}
        self._claims_cond = threading.Condition()
        self.host = config.host
        self.port = config.port
        # loop-side counters beyond what the registry keeps
        self._connections = 0
        self._live_connections = 0
        self._records_streamed = 0
        self._rejected = 0
        self._bad_frames = 0
        self._scenarios_cached = 0
        self._scenarios_computed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the job pool, and (optionally) report ready."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-serve-job"
        )
        self._server = await asyncio.start_server(
            self._handle_client,
            self._config.host,
            self._config.port,
            limit=self._config.line_limit + _READER_SLACK,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self._config.ready_file:
            ready = Path(self._config.ready_file)
            banner = f"{self.host} {self.port}\n"

            def publish() -> None:
                ready.parent.mkdir(parents=True, exist_ok=True)
                ready.write_text(banner)

            await asyncio.to_thread(publish)

    async def stop(self) -> None:
        """Stop accepting, cancel live jobs, drain the pool."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pending.clear()
        # A running job stops at its next record checkpoint (shard
        # sub-runs poll the job's cancel file); the work already
        # computed is committed, so a restart resumes it.
        for job in self._registry.jobs.values():
            if not job.terminal:
                job.cancel_event.set()
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # Off-loop shutdown: job-completion callbacks and claim
            # wakeups need the loop responsive while the pool drains.
            await asyncio.to_thread(executor.shutdown)

    def stats(self) -> dict[str, Any]:
        """Counters snapshot (also the ``status`` frame payload)."""
        with self._slot_lock:
            busy = self._slots_busy
        return {
            "protocol": PROTOCOL_VERSION,
            "connections": self._connections,
            "live_connections": self._live_connections,
            "workers": self._workers,
            "busy_slots": busy,
            "submitted": self._registry.submitted,
            "singleflight_hits": self._registry.singleflight_hits,
            "replays": self._registry.replays,
            "restarts": self._registry.restarts,
            "rejected": self._rejected,
            "bad_frames": self._bad_frames,
            "records_streamed": self._records_streamed,
            "scenarios_cached": self._scenarios_cached,
            "scenarios_computed": self._scenarios_computed,
            "jobs": self._registry.state_counts(),
        }

    # ------------------------------------------------------------------
    # job dispatch (event loop)
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Start queued jobs while pool slots are free (loop side)."""
        if self._stopping or self._executor is None or self._loop is None:
            return
        while self._pending:
            with self._slot_lock:
                if self._slots_busy >= self._workers:
                    return
                self._slots_busy += 1
            job = self._pending.popleft()
            if job.state != "queued":
                # Cancelled while waiting: the slot frees right back up.
                with self._slot_lock:
                    self._slots_busy -= 1
                continue
            job.state = "running"
            job.pulse()
            future = self._loop.run_in_executor(
                self._executor, self._run_job, job
            )
            future.add_done_callback(self._job_finished)

    def _job_finished(self, future: asyncio.Future) -> None:
        with self._slot_lock:
            self._slots_busy -= 1
        if not future.cancelled():
            future.exception()  # _run_job never raises; never warn
        self._dispatch()

    def _discard_pending(self, job: Job) -> None:
        """Drop a no-longer-queued job from the dispatch queue *now*.

        The dispatcher would skip it anyway, but a stale entry sitting
        in front of live jobs costs them a dispatch round — with a
        pool, a lazily released queue position is capacity another
        client's submission was refused over.
        """
        try:
            self._pending.remove(job)
        except ValueError:
            pass

    def _wake_dispatcher(self) -> None:
        """Re-run :meth:`_dispatch` on the loop (thread-safe)."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._dispatch)
        except RuntimeError:
            pass  # loop already closed (shutdown)

    # ------------------------------------------------------------------
    # slot + claim accounting (any thread)
    # ------------------------------------------------------------------

    def _reserve_extra_slots(self, n_scenarios: int, cap: int | None) -> int:
        """Grab idle pool slots for intra-job fan-out; returns extras.

        Only *idle* capacity is taken: every already-dispatched job was
        charged its slot before this job started computing, so
        concurrent clients are never starved — at worst a large job
        runs narrower than the pool.
        """
        with self._slot_lock:
            slots = 1 + self._workers - self._slots_busy
            if cap is not None:
                slots = min(slots, cap)
            extra = plan_fanout(n_scenarios, slots) - 1
            self._slots_busy += extra
        return extra

    def _release_slots(self, count: int) -> None:
        with self._slot_lock:
            self._slots_busy -= count
        self._wake_dispatcher()

    def _acquire_claims(self, job: Job, keys: list[str]) -> bool:
        """Claim every scenario key for ``job``; ``False`` on cancel.

        All-or-nothing: a job holds either its whole key set or
        nothing, and holders never wait — so two overlapping jobs
        serialize (scenario-level single-flight across pool slots)
        without any possibility of deadlock.
        """
        wanted = sorted(set(keys))
        with self._claims_cond:
            while not self._stopping:
                if job.cancel_event.is_set():
                    return False
                blocked = [
                    key
                    for key in wanted
                    if self._claims.get(key, job.id) != job.id
                ]
                if not blocked:
                    for key in wanted:
                        self._claims[key] = job.id
                    return True
                # Timed wait doubles as the cancel poll.
                self._claims_cond.wait(timeout=0.05)
        return False

    def _release_claims(self, job: Job, keys: list[str]) -> None:
        wanted = sorted(set(keys))
        with self._claims_cond:
            for key in wanted:
                if self._claims.get(key) == job.id:
                    del self._claims[key]
            self._claims_cond.notify_all()

    # ------------------------------------------------------------------
    # job execution (executor threads)
    # ------------------------------------------------------------------

    def _run_job(self, job: Job) -> None:
        """Evaluate one job on its pool slot (executor thread)."""
        keys: list[str] = []
        claimed = False
        extra = 0
        try:
            workload = get_workload(job.request.workload)
            params = workload.resolve_params(job.request.params_dict())
            plan = plan_scenarios(job.request.workload, params)
            keys = [
                scenario_key(s, self._fingerprint) for s in plan.scenarios
            ]
            claimed = self._acquire_claims(job, keys)
            if not claimed:
                raise JobCancelled(
                    "job cancelled while waiting on overlapping scenarios"
                )
            # Per-run store handle: sqlite connections are thread-bound
            # and pool slots are many, so each run opens (and closes)
            # its own; WAL mode makes the concurrent access safe.
            with ResultStore(
                self._config.store, fingerprint=self._fingerprint
            ) as store:
                store.set_job_manifest(job.id, plan.manifest)
                fail_after = job.request.options.fail_after
                k = 1
                if job.request.options.shard is None:
                    # An explicit shard request is already a slice;
                    # never split it further.
                    extra = self._reserve_extra_slots(
                        len(plan.scenarios), job.request.options.workers
                    )
                    k = 1 + extra
                if k > 1:
                    run = self._run_sharded(
                        job, plan, store, keys, k, fail_after
                    )
                else:
                    on_result: Callable[[int], None] | None = None
                    if fail_after is not None:

                        def on_result(
                            count: int, _limit: int = fail_after
                        ) -> None:
                            if count >= _limit:
                                raise KeyboardInterrupt(
                                    f"fail_after={_limit} fault injected"
                                )

                    run = run_cached_batch(
                        plan.worker,
                        plan.scenarios,
                        store,
                        sink=_JobSink(job),
                        collect=False,
                        max_workers=self._config.jobs,
                        chunk_size=self._config.chunk,
                        group_by=plan.group_by,
                        on_result=on_result,
                        cancel=job.cancel_event.is_set,
                        backend=job.request.options.backend,
                        batch_worker=plan.batch_worker,
                    )
            # Count scenarios *before* the job turns terminal: the end
            # frame releases subscribers, and a client that saw it must
            # find these totals already reflected in ``status``.
            with self._slot_lock:
                self._scenarios_cached += run.cached
                self._scenarios_computed += run.computed
            job.complete(run.total, run.cached, run.computed)
        except JobCancelled as exc:
            job.fail("job-cancelled", str(exc), state="cancelled")
        except KeyboardInterrupt as exc:
            job.fail(
                "job-failed",
                f"job killed mid-run ({exc}); completed scenarios are "
                "checkpointed — resubmit to resume from them",
            )
        except WorkerError as exc:
            job.fail("job-failed", str(exc))
        except ValueError as exc:
            # Plan-time rejection: bad campaign spec, unknown family …
            job.fail("bad-request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            job.fail("job-failed", f"{type(exc).__name__}: {exc}")
        finally:
            if extra:
                self._release_slots(extra)
            if claimed:
                self._release_claims(job, keys)

    def _run_sharded(
        self,
        job: Job,
        plan: Any,
        store: ResultStore,
        keys: list[str],
        k: int,
        fail_after: int | None,
    ) -> CachedRun:
        """Fan one job out over ``k`` shard sub-runs in processes.

        Worker *processes*, not threads: family workers are pure
        Python, so thread fan-out would serialize on the GIL.  The
        stream stays byte-identical because nothing is emitted until
        every shard finished and merged — record frames then flow from
        the shared store in scenario order, exactly like a solo run.

        Shard stores are scratch: pre-seeded with their slice's cached
        rows (so shards skip what a solo run would skip), salvaged
        back into the shared store after the attempt — *whatever*
        happened, so a killed shard's checkpointed prefix survives —
        and deleted, so a restart with a different ``k`` can never
        trip over a stale shard scope.
        """
        import multiprocessing
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
        from concurrent.futures import wait as wait_futures

        store_path = Path(self._config.store)
        shards_dir = store_path.parent / f"{store_path.name}.shards"
        shards_dir.mkdir(parents=True, exist_ok=True)
        tag = f"{job.id[:12]}-a{job.attempt}"
        cancel_path = shards_dir / f"{tag}.cancel"
        cancel_path.unlink(missing_ok=True)
        shard_paths: dict[int, Path] = {}
        for index in range(1, k + 1):
            shard_path = shards_dir / f"{tag}-{index}of{k}.sqlite"
            for name in (
                shard_path.name,
                shard_path.name + "-wal",
                shard_path.name + "-shm",
            ):
                # A crashed *server* can leave scratch stores behind;
                # their recorded shard scope may not match this run's.
                (shards_dir / name).unlink(missing_ok=True)
            with ResultStore(
                shard_path, fingerprint=self._fingerprint
            ) as shard_store:
                shard_store.adopt_rows(store, keys[index - 1 :: k])
            shard_paths[index] = shard_path
        # Fork where available: the children inherit the warm
        # interpreter, keeping fan-out latency negligible.  Elsewhere
        # the platform default (spawn) is merely slower, not wrong.
        methods = multiprocessing.get_all_start_methods()
        mp_context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        outcomes: dict[int, dict[str, Any]] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=k, mp_context=mp_context
            ) as pool:
                futures = {}
                for index in range(1, k + 1):
                    spec = {
                        "workload": job.request.workload,
                        "params": dict(job.request.params_dict()),
                        "store": str(shard_paths[index]),
                        "shard": format_shard(index, k),
                        "backend": job.request.options.backend,
                        # Deterministic under fan-out: the fault seam
                        # injects into exactly one shard.
                        "fail_after": fail_after if index == 1 else None,
                        "cancel_path": str(cancel_path),
                    }
                    futures[pool.submit(_evaluate_shard, spec)] = index
                pending = set(futures)
                while pending:
                    done, pending = wait_futures(
                        pending, timeout=0.05, return_when=FIRST_COMPLETED
                    )
                    for future in sorted(done, key=futures.__getitem__):
                        index = futures[future]
                        try:
                            outcomes[index] = future.result()
                        except Exception as exc:  # BrokenProcessPool …
                            outcomes[index] = {
                                "ok": False,
                                "kind": "crashed",
                                "message": (
                                    f"shard worker process died: {exc}"
                                ),
                            }
                    # One dying shard (or a client cancel) tears down
                    # every sibling at its next checkpoint.
                    abort = job.cancel_event.is_set() or any(
                        not outcome["ok"]
                        for outcome in outcomes.values()
                    )
                    if abort and not cancel_path.exists():
                        cancel_path.touch()
        finally:
            for index in sorted(shard_paths):
                shard_path = shard_paths[index]
                if shard_path.exists():
                    try:
                        with ResultStore(
                            shard_path, fingerprint=self._fingerprint
                        ) as shard_store:
                            store.merge_from(shard_store)
                    except ValueError:  # pragma: no cover - defensive
                        pass  # unreadable scratch store: nothing to save
                for name in (
                    shard_path.name,
                    shard_path.name + "-wal",
                    shard_path.name + "-shm",
                ):
                    (shards_dir / name).unlink(missing_ok=True)
            cancel_path.unlink(missing_ok=True)
        failures = [
            (index, outcomes[index])
            for index in sorted(outcomes)
            if not outcomes[index]["ok"]
        ]
        for index, outcome in failures:
            if outcome["kind"] == "killed":
                raise KeyboardInterrupt(
                    f"shard {index}/{k}: {outcome['message']}"
                )
        for index, outcome in failures:
            if outcome["kind"] == "worker-error":
                # Shard i of k holds scenarios i-1, i-1+k, i-1+2k, …:
                # re-pin the shard-local index into the job's grid.
                raise WorkerError(
                    (index - 1) + outcome["index"] * k,
                    outcome["scenario_repr"],
                    outcome["cause_repr"],
                )
        for index, outcome in failures:
            if outcome["kind"] in ("crashed", "error"):
                raise RuntimeError(
                    f"shard {index}/{k}: {outcome['message']}"
                )
        if failures:  # all remaining failures are cancellations
            raise JobCancelled(
                "job cancelled; every shard stopped at its last "
                "checkpoint"
            )
        emit_from_store(
            store, plan.scenarios, sink=_JobSink(job), collect=False
        )
        return CachedRun(
            results=None,
            total=len(plan.scenarios),
            cached=sum(outcomes[i]["cached"] for i in sorted(outcomes)),
            computed=sum(outcomes[i]["computed"] for i in sorted(outcomes)),
        )

    # ------------------------------------------------------------------
    # connection handling (event loop)
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._live_connections += 1
        try:
            await self._send(
                writer,
                {
                    "frame": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "workloads": list(PLANNABLE_WORKLOADS),
                },
            )
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        break  # clean EOF: client closed
                    line = exc.partial  # final unterminated line
                except asyncio.LimitOverrunError:
                    # The line outgrew the reader buffer.  Report it,
                    # then discard through the next newline so the
                    # connection's framing recovers — one bad client
                    # frame must never cost anyone the connection.
                    self._bad_frames += 1
                    oversized = ProtocolError(
                        "oversized",
                        "frame exceeds the "
                        f"{self._config.line_limit}-byte limit",
                    )
                    await self._send(writer, oversized.frame())
                    if not await self._discard_line_tail(reader):
                        break  # EOF while discarding
                    continue
                if not line.strip():
                    continue
                try:
                    await self._handle_frame(line, reader, writer)
                except ProtocolError as exc:
                    self._bad_frames += 1
                    await self._send(writer, exc.frame())
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away; jobs keep their own lifecycle
        finally:
            self._live_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _discard_line_tail(reader: asyncio.StreamReader) -> bool:
        """Discard input through the next newline; ``False`` on EOF.

        Recovers framing after an over-limit line: everything up to
        and including the line's terminating newline is dropped, and
        whatever follows it is left intact for the normal read loop.
        """
        while True:
            try:
                await reader.readuntil(b"\n")
                return True
            except asyncio.IncompleteReadError:
                return False
            except asyncio.LimitOverrunError as exc:
                if not await reader.read(exc.consumed or 1):
                    return False

    async def _handle_frame(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from repro.serve.protocol import decode_frame

        frame = decode_frame(line, limit=self._config.line_limit)
        op = frame.get("op")
        if op not in CLIENT_OPS:
            raise ProtocolError(
                "bad-frame",
                f"unknown op {op!r}; expected one of "
                f"{', '.join(CLIENT_OPS)}",
            )
        if op == "ping":
            await self._send(writer, {"frame": "pong"})
        elif op == "status":
            await self._send(writer, {"frame": "status", **self.stats()})
        elif op == "cancel":
            await self._op_cancel(frame, writer)
        elif op == "submit":
            await self._op_submit(frame, reader, writer)
        else:  # resume
            await self._op_resume(frame, reader, writer)

    # -- ops -----------------------------------------------------------

    def _sanitize(self, request: RunRequest) -> RunRequest:
        """The request the server actually evaluates.

        Execution policy (store, pool width, sinks) is the *server's*;
        client-supplied options are discarded except

        * ``backend`` — the kernel backend is a *client* execution
          option: every registered backend produces bit-identical
          records, so honoring it changes how the job computes, never
          what it computes — which is also why it must not (and,
          :func:`~repro.serve.jobs.job_id_for` deriving the id from
          workload + params + fingerprint alone, structurally cannot)
          enter the job id;
        * ``workers`` — an optional *cap* on the job's intra-job shard
          fan-out (the server never exceeds its own free slots); like
          ``backend`` it is excluded from the job id by construction,
          so the same grid submitted with different ``workers`` is
          still one job;
        * the ``fail_after`` fault seam, and that only when the config
          opts in.
        """
        fail_after = None
        if self._config.allow_fail_after:
            fail_after = request.options.fail_after
        return RunRequest(
            workload=request.workload,
            params=request.params,
            options=ExecutionOptions(
                fail_after=fail_after,
                backend=request.options.backend,
                workers=request.options.workers,
            ),
        )

    async def _op_submit(
        self,
        frame: dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._loop is not None
        try:
            request = request_from_wire(frame.get("request"))
            if request.workload not in PLANNABLE_WORKLOADS:
                raise ProtocolError(
                    "unsupported-workload",
                    f"workload {request.workload!r} is not servable; "
                    f"servable: {', '.join(PLANNABLE_WORKLOADS)}",
                )
            request = self._sanitize(request)
            workload = get_workload(request.workload)
            params = workload.resolve_params(request.params_dict())
        except ProtocolError:
            raise
        except ValueError as exc:
            raise ProtocolError("bad-request", str(exc)) from exc
        job_id = job_id_for(request.workload, params, self._fingerprint)
        existing = self._registry.get(job_id)
        needs_enqueue = existing is None or existing.state in (
            "failed",
            "cancelled",
        )
        if (
            needs_enqueue
            and self._registry.queued_count() >= self._config.max_queued
        ):
            self._rejected += 1
            raise ProtocolError(
                "busy",
                f"job queue is full ({self._config.max_queued} queued); "
                "retry later",
            )
        job, dedup = self._registry.submit(job_id, request, self._loop)
        if dedup in ("new", "restart"):
            self._pending.append(job)
            self._dispatch()
        await self._send(
            writer,
            {
                "frame": "job",
                "job": job.id,
                "state": job.state,
                "dedup": dedup,
            },
        )
        await self._stream(job, reader, writer, cursor=0)

    async def _op_resume(
        self,
        frame: dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self._registry.get(str(frame.get("job")))
        if job is None:
            raise ProtocolError(
                "unknown-job", f"no job {frame.get('job')!r} on this server"
            )
        last = frame.get("last_record", 0)
        if not isinstance(last, int) or isinstance(last, bool) or last < 0:
            raise ProtocolError(
                "bad-offset",
                f"last_record must be a non-negative integer, got {last!r}",
            )
        if last > len(job.lines):
            raise ProtocolError(
                "bad-offset",
                f"last_record={last} but job {job.id[:12]}… has only "
                f"{len(job.lines)} record(s)",
            )
        await self._send(
            writer,
            {
                "frame": "job",
                "job": job.id,
                "state": job.state,
                "dedup": "resume",
            },
        )
        await self._stream(job, reader, writer, cursor=last)

    async def _op_cancel(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self._registry.get(str(frame.get("job")))
        if job is None:
            raise ProtocolError(
                "unknown-job", f"no job {frame.get('job')!r} on this server"
            )
        job.cancel_event.set()
        if job.state == "queued":
            job.fail(
                "job-cancelled", "cancelled while queued", state="cancelled"
            )
            self._discard_pending(job)
        await self._send(writer, {"frame": "cancelled", "job": job.id})

    # -- streaming -----------------------------------------------------

    async def _stream(
        self,
        job: Job,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        cursor: int,
    ) -> None:
        """Send record frames from ``cursor`` until the job is terminal.

        The capture-event-then-check pattern pairs with
        :meth:`Job.change_event`: the event captured *before* draining
        is the one any later change sets, so no update is missed
        between the drain and the wait.

        While waiting, a one-byte read watches the connection: sends
        only fail once the OS notices, so without it a vanished client
        would pin its subscription (and keep a queued job alive) until
        the job produced output.  The protocol forbids client frames
        during an active stream, so any inbound byte here — data or
        EOF — means the subscription is over.
        """
        job.subscribers += 1
        eof_watch = asyncio.create_task(reader.read(1))
        try:
            while True:
                changed = job.change_event()
                while cursor < len(job.lines):
                    line = job.lines[cursor]
                    cursor += 1
                    self._records_streamed += 1
                    await self._send(
                        writer,
                        {
                            "frame": "record",
                            "job": job.id,
                            "seq": cursor,
                            "line": line,
                        },
                    )
                if job.terminal:
                    break
                waiter = asyncio.create_task(changed.wait())
                done, _ = await asyncio.wait(
                    {waiter, eof_watch},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_watch in done:
                    waiter.cancel()
                    raise ConnectionResetError(
                        "client disconnected (or spoke) mid-stream"
                    )
            # Stop watching *before* the final frame: the client may
            # legally send its next op the moment it sees the stream
            # end, and the watcher must not swallow that op's bytes.
            if not eof_watch.done():
                eof_watch.cancel()
                try:
                    await eof_watch
                except asyncio.CancelledError:
                    pass
            else:
                # Completed watcher: EOF, or a byte we already consumed
                # (a protocol violation) — either way the line framing
                # is unrecoverable, so the connection is done.
                raise ConnectionResetError(
                    "client disconnected (or spoke) mid-stream"
                )
            if job.state == "done":
                await self._send(
                    writer,
                    {
                        "frame": "end",
                        "job": job.id,
                        "state": "done",
                        "total": job.total,
                        "cached": job.cached,
                        "computed": job.computed,
                    },
                )
            else:
                code, message = job.error or ("job-failed", "job failed")
                await self._send(
                    writer,
                    {
                        "frame": "error",
                        "code": code,
                        "message": message,
                        "job": job.id,
                    },
                )
        finally:
            if not eof_watch.done():
                eof_watch.cancel()
            job.subscribers -= 1
            if job.state == "queued" and job.subscribers == 0:
                # Nobody is waiting for it and it never started: drop
                # it *and its queue position* right away (a running job
                # keeps going — its results land in the shared store,
                # and the client may resume later).
                job.cancel_event.set()
                job.fail(
                    "job-cancelled",
                    "all subscribers disconnected before the job started",
                    state="cancelled",
                )
                self._discard_pending(job)

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, frame: dict[str, Any]
    ) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()


def run_server(
    config: ServeConfig,
    stop_event: threading.Event | None = None,
    on_started: Callable[[str, int], None] | None = None,
) -> dict[str, Any]:
    """Run a server until interrupted; returns the final statistics.

    Args:
        config: Server configuration.
        stop_event: Optional external stop signal (polled); without
            one the server runs until :class:`KeyboardInterrupt`.
        on_started: Optional ``(host, port)`` callback once listening.

    Returns:
        The final :meth:`AnalysisServer.stats` snapshot.
    """
    server = AnalysisServer(config)

    async def main() -> dict[str, Any]:
        await server.start()
        if on_started is not None:
            on_started(server.host, server.port)
        try:
            if stop_event is None:
                await asyncio.Event().wait()  # until KeyboardInterrupt
            else:
                while not stop_event.is_set():
                    await asyncio.sleep(0.05)
        finally:
            await server.stop()
        return server.stats()

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return server.stats()


class ServerHandle:
    """A server running on a background thread (tests and examples).

    Obtained from :func:`start_server`; ``host``/``port`` give the
    bound address and :meth:`stop` shuts down and returns the final
    statistics.  Usable as a context manager.
    """

    def __init__(self, config: ServeConfig) -> None:
        self._config = config
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._stats: dict[str, Any] | None = None
        self._error: BaseException | None = None
        self.host = config.host
        self.port = config.port
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _on_started(self, host: str, port: int) -> None:
        self.host, self.port = host, port
        self._ready.set()

    def _run(self) -> None:
        try:
            self._stats = run_server(
                self._config,
                stop_event=self._stop,
                on_started=self._on_started,
            )
        except BaseException as exc:  # noqa: BLE001 - reported in start/stop
            self._error = exc
        finally:
            self._ready.set()

    def _start(self, timeout: float) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            self._stop.set()
            raise TimeoutError(
                f"server did not start within {timeout:.0f}s"
            )
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout: float = 30.0) -> dict[str, Any]:
        """Shut the server down; returns the final statistics."""
        self._stop.set()
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error
        return dict(self._stats or {})

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._thread.is_alive():
            self.stop()


def start_server(config: ServeConfig, timeout: float = 30.0) -> ServerHandle:
    """Start a server on a background thread and wait until it listens.

    Args:
        config: Server configuration (``port=0`` picks a free port;
            read the bound one off the returned handle).
        timeout: Seconds to wait for the listener before giving up.

    Returns:
        A :class:`ServerHandle` whose ``host``/``port`` are live.
    """
    return ServerHandle(config)._start(timeout)
