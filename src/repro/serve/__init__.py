"""Analysis-as-a-service: the long-running Workbench job server.

This package turns the :mod:`repro.api` facade into a shared service:
a stdlib-only asyncio TCP server (:mod:`repro.serve.server`) accepts
serialized :class:`~repro.api.RunRequest` submissions from many
concurrent clients, canonicalizes each request into a
content-addressed **job id** (reusing :mod:`repro.store.keys`), and
streams the job's JSONL records back frame by frame.

What makes it a *service* rather than a remote procedure call:

* **Cross-client dedup** — all jobs evaluate against one shared
  :class:`repro.store.ResultStore`, so a scenario any client ever
  computed is served from the warm-cache path for every later client;
* **Single-flight** — two clients submitting the same grid share one
  computation (same job id → same live job, both stream its records);
* **Backpressure** — bounded job queue; submissions beyond the limit
  are rejected with a 429-style ``busy`` error frame instead of
  queueing unboundedly;
* **Resumable streams** — every stream carries a job id and record
  sequence numbers; a client that reconnects resumes from its last
  received record and gets the exact remaining bytes.

Wire protocol (newline-delimited JSON frames over TCP) is specified in
:mod:`repro.serve.protocol` and ``docs/serving.md``; the blocking
client used by tests, benchmarks and examples is
:class:`repro.serve.client.ServeClient`.  Start a server with
``python -m repro serve --store PATH`` or, in-process,
:func:`repro.serve.server.start_server`.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.serve.server import ServeConfig, ServerHandle, start_server

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "ServeClient",
    "ServeError",
    "ServeConfig",
    "ServerHandle",
    "start_server",
]
