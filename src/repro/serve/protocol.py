"""The serve wire protocol: newline-delimited JSON frames over TCP.

Both directions speak the same transport: one strict-JSON object per
``\\n``-terminated line (``allow_nan=False`` — non-finite floats never
appear because record payloads travel as pre-serialized JSONL *lines*,
not re-encoded objects).  Frames are small; the per-line byte limit is
a server policy (oversized submissions are rejected with an error
frame, not a dropped connection).

Client → server operations (``op``):

========  ============================================================
op        fields
========  ============================================================
submit    ``request`` — a :func:`repro.api.wire.request_to_wire` dict
resume    ``job`` (id), ``last_record`` (count already received)
status    —
cancel    ``job`` (id)
ping      —
========  ============================================================

Server → client frames (``frame``):

========  ============================================================
frame     fields
========  ============================================================
hello     ``protocol``, ``workloads`` (servable workload names)
job       ``job`` (id), ``state``, ``dedup`` (``new``/``inflight``/
          ``replay``/``restart``, or ``resume`` for the resume op)
record    ``job``, ``seq`` (1-based), ``line`` (verbatim JSONL line)
end       ``job``, ``state`` (``done``), ``total``/``cached``/
          ``computed`` cache statistics
error     ``code``, ``message``, optionally ``job``
status    counters snapshot, incl. pool occupancy — ``workers``,
          ``busy_slots`` (see ``docs/serving.md``)
cancelled ``job``
pong      —
========  ============================================================

Error codes are stable strings: ``bad-frame`` (not JSON / not a
mapping), ``oversized`` (line over the server limit), ``bad-request``
(frame parsed but the request is invalid), ``unsupported-workload``,
``busy`` (backpressure rejection — the 429 of this protocol),
``unknown-job``, ``bad-offset``, ``job-failed``, ``job-cancelled``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

#: Protocol version announced in the hello frame and checked by clients.
PROTOCOL_VERSION = 1

#: Default per-line byte budget for client frames (server policy).
DEFAULT_LINE_LIMIT = 1_048_576

#: Client operations the server understands.
CLIENT_OPS = ("submit", "resume", "status", "cancel", "ping")

#: Stable error codes (see the module docstring).
ERROR_CODES = (
    "bad-frame",
    "oversized",
    "bad-request",
    "unsupported-workload",
    "busy",
    "unknown-job",
    "bad-offset",
    "job-failed",
    "job-cancelled",
)


class ProtocolError(ValueError):
    """A malformed or illegal frame, carrying its stable error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code

    def frame(self, **extra: Any) -> dict[str, Any]:
        """The error frame reporting this failure."""
        return {
            "frame": "error",
            "code": self.code,
            "message": str(self),
            **extra,
        }


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its wire line (``\\n`` included)."""
    return (
        json.dumps(
            frame, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        + b"\n"
    )


def decode_frame(line: bytes, limit: int | None = None) -> dict[str, Any]:
    """Parse one received line into a frame mapping.

    Args:
        line: The raw line (trailing newline tolerated).
        limit: Optional byte budget; longer lines raise ``oversized``.

    Raises:
        ProtocolError: ``oversized`` or ``bad-frame``.
    """
    if limit is not None and len(line) > limit:
        raise ProtocolError(
            "oversized",
            f"frame of {len(line)} bytes exceeds the {limit}-byte limit",
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad-frame", f"frame is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-frame",
            f"frame must be a JSON object, got {type(payload).__name__}",
        )
    return payload
