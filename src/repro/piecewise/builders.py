"""Constructors for :class:`repro.piecewise.PiecewiseFunction`.

Two families of builders exist:

* exact builders (:func:`constant`, :func:`from_points`, :func:`step`) that
  take explicit breakpoints, and
* safe samplers (:func:`upper_step_from_callable`) that convert a smooth
  closed-form function into a piecewise-constant **upper bound**, which is
  the right direction for preemption-delay functions: analysing an
  over-approximation of ``f_i`` can only make the computed bounds larger,
  never unsound.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.piecewise.function import PiecewiseFunction
from repro.piecewise.segments import Segment
from repro.utils.checks import require
from repro.utils.seq import is_strictly_increasing, pairwise


def constant(value: float, lo: float, hi: float) -> PiecewiseFunction:
    """The constant function ``f(x) = value`` on ``[lo, hi]``."""
    require(hi > lo, f"domain must have positive width, got [{lo}, {hi}]")
    return PiecewiseFunction([Segment(lo, hi, value, value)])


def from_points(xs: Sequence[float], ys: Sequence[float]) -> PiecewiseFunction:
    """Continuous piecewise-linear interpolation through ``(xs, ys)``.

    Args:
        xs: Strictly increasing abscissae (at least two).
        ys: Ordinates, same length as ``xs``.
    """
    require(len(xs) == len(ys), "xs and ys must have the same length")
    require(len(xs) >= 2, "need at least two points")
    require(is_strictly_increasing(xs), "xs must be strictly increasing")
    segments = [
        Segment(x0, x1, y0, y1)
        for (x0, x1), (y0, y1) in zip(pairwise(xs), pairwise(ys))
    ]
    return PiecewiseFunction(segments)


def step(bounds: Sequence[float], values: Sequence[float]) -> PiecewiseFunction:
    """Piecewise-constant function: ``f = values[k]`` on ``[bounds[k], bounds[k+1]]``.

    Args:
        bounds: Strictly increasing abscissae, one more than ``values``.
        values: The plateau value of each interval.
    """
    require(len(bounds) == len(values) + 1, "need len(bounds) == len(values) + 1")
    require(len(values) >= 1, "need at least one interval")
    require(is_strictly_increasing(bounds), "bounds must be strictly increasing")
    segments = [
        Segment(lo, hi, v, v) for (lo, hi), v in zip(pairwise(bounds), values)
    ]
    return PiecewiseFunction(segments)


def upper_step_from_callable(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    knots: int = 2048,
    oversample: int = 8,
) -> PiecewiseFunction:
    """Piecewise-constant upper approximation of a smooth callable.

    Each of the ``knots`` equal-width intervals receives the maximum of
    ``fn`` over ``oversample + 1`` evenly spaced probes (endpoints
    included).  For functions whose variation within a probe spacing is
    negligible (the paper's Gaussians with >= 2048 knots over [0, 4000]),
    the result is an upper bound for practical purposes; use
    :func:`unimodal_upper_step` for an exact bound on unimodal shapes.

    Args:
        fn: The function to approximate.
        lo: Domain start.
        hi: Domain end (> lo).
        knots: Number of constant pieces.
        oversample: Number of probe sub-intervals per piece.
    """
    require(hi > lo, f"domain must have positive width, got [{lo}, {hi}]")
    require(knots >= 1, "need at least one knot interval")
    require(oversample >= 1, "oversample must be >= 1")
    width = (hi - lo) / knots
    bounds = [lo + k * width for k in range(knots)] + [hi]
    values = []
    for a, b in pairwise(bounds):
        probes = [a + (b - a) * j / oversample for j in range(oversample + 1)]
        values.append(max(fn(p) for p in probes))
    return step(bounds, values)


def unimodal_upper_step(
    fn: Callable[[float], float],
    peak: float,
    lo: float,
    hi: float,
    knots: int = 2048,
) -> PiecewiseFunction:
    """Exact piecewise-constant upper bound of a *unimodal* callable.

    ``fn`` must be non-decreasing on ``[lo, peak]`` and non-increasing on
    ``[peak, hi]`` (e.g. a Gaussian bump with mean ``peak``).  Unimodality
    makes the per-interval maximum exactly computable: it is attained at an
    interval endpoint, or at ``peak`` when ``peak`` lies inside the
    interval.  The returned step function therefore dominates ``fn``
    everywhere — no sampling gap.

    Args:
        fn: Unimodal function.
        peak: Abscissa of the mode.
        lo: Domain start.
        hi: Domain end (> lo).
        knots: Number of constant pieces.
    """
    require(hi > lo, f"domain must have positive width, got [{lo}, {hi}]")
    require(knots >= 1, "need at least one knot interval")
    width = (hi - lo) / knots
    bounds = [lo + k * width for k in range(knots)] + [hi]
    values = []
    for a, b in pairwise(bounds):
        candidates = [fn(a), fn(b)]
        if a <= peak <= b:
            candidates.append(fn(peak))
        values.append(max(candidates))
    return step(bounds, values)
