"""Binary operations on piecewise functions.

The operations work by merging the breakpoint grids of both operands and
combining the affine pieces exactly on each merged cell.  Jump
discontinuities are preserved: a cell boundary where either operand jumps
becomes a boundary of the result.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable

from repro.piecewise.function import PiecewiseFunction
from repro.piecewise.segments import Segment
from repro.utils.checks import require

_MERGE_TOLERANCE = 1e-12


def _merged_grid(f: PiecewiseFunction, g: PiecewiseFunction) -> list[float]:
    """Union of the breakpoint grids of ``f`` and ``g`` on their common domain."""
    require(f.domain == g.domain, f"domains differ: {f.domain} vs {g.domain}")
    points = sorted(set(f.breakpoints()) | set(g.breakpoints()))
    merged = [points[0]]
    for p in points[1:]:
        if p - merged[-1] > _MERGE_TOLERANCE:
            merged.append(p)
    # Guard against the last point collapsing onto its predecessor.
    if merged[-1] != points[-1]:
        merged[-1] = points[-1]
    return merged


def _segment_on_cell(
    fn: PiecewiseFunction, starts: list[float], a: float, b: float
) -> Segment:
    """The restriction of ``fn`` to the cell ``[a, b]`` as a single segment.

    The cell is contained in one affine piece of ``fn`` by construction of
    the merged grid; ``starts`` is the precomputed list of piece start
    abscissae of ``fn`` used for binary search.
    """
    mid = 0.5 * (a + b)
    idx = max(bisect.bisect_right(starts, mid) - 1, 0)
    seg = fn.segments[idx]
    if seg.x0 <= mid <= seg.x1:
        return Segment(a, b, seg.value_at(max(a, seg.x0)), seg.value_at(min(b, seg.x1)))
    raise AssertionError(f"no segment of {fn!r} contains {mid}")  # pragma: no cover


def combine(
    f: PiecewiseFunction,
    g: PiecewiseFunction,
    op: Callable[[float, float], float],
) -> PiecewiseFunction:
    """Pointwise combination ``op(f, g)`` on a merged grid.

    ``op`` is applied to segment endpoint values on each merged cell, which
    is exact for operations that map affine pieces to affine pieces
    (``+``, ``-``, constant blends).  For ``min``/``max`` use
    :func:`max_envelope` / :func:`min_envelope`, which split cells at
    interior crossings.
    """
    grid = _merged_grid(f, g)
    f_starts = [s.x0 for s in f.segments]
    g_starts = [s.x0 for s in g.segments]
    segments = []
    for a, b in zip(grid, grid[1:]):
        sf = _segment_on_cell(f, f_starts, a, b)
        sg = _segment_on_cell(g, g_starts, a, b)
        segments.append(Segment(a, b, op(sf.y0, sg.y0), op(sf.y1, sg.y1)))
    return PiecewiseFunction(segments)


def add(f: PiecewiseFunction, g: PiecewiseFunction) -> PiecewiseFunction:
    """Exact pointwise sum ``f + g``."""
    return combine(f, g, lambda a, b: a + b)


def subtract(f: PiecewiseFunction, g: PiecewiseFunction) -> PiecewiseFunction:
    """Exact pointwise difference ``f - g``."""
    return combine(f, g, lambda a, b: a - b)


def _envelope(
    f: PiecewiseFunction, g: PiecewiseFunction, take_max: bool
) -> PiecewiseFunction:
    """Exact pointwise max (or min) envelope, splitting cells at crossings."""
    grid = _merged_grid(f, g)
    f_starts = [s.x0 for s in f.segments]
    g_starts = [s.x0 for s in g.segments]
    segments: list[Segment] = []
    for a, b in zip(grid, grid[1:]):
        sf = _segment_on_cell(f, f_starts, a, b)
        sg = _segment_on_cell(g, g_starts, a, b)
        d0 = sf.y0 - sg.y0
        d1 = sf.y1 - sg.y1
        pick = (lambda u, v: max(u, v)) if take_max else (lambda u, v: min(u, v))
        if d0 * d1 < 0:
            # The two affine pieces cross strictly inside the cell: split.
            t = d0 / (d0 - d1)
            x_cross = a + t * (b - a)
            y_cross = sf.value_at(x_cross) if abs(d0) < abs(d1) else sg.value_at(x_cross)
            if x_cross - a > _MERGE_TOLERANCE and b - x_cross > _MERGE_TOLERANCE:
                segments.append(Segment(a, x_cross, pick(sf.y0, sg.y0), y_cross))
                segments.append(Segment(x_cross, b, y_cross, pick(sf.y1, sg.y1)))
                continue
        segments.append(Segment(a, b, pick(sf.y0, sg.y0), pick(sf.y1, sg.y1)))
    return PiecewiseFunction(segments)


def max_envelope(f: PiecewiseFunction, g: PiecewiseFunction) -> PiecewiseFunction:
    """Exact pointwise maximum ``max(f, g)``."""
    return _envelope(f, g, take_max=True)


def min_envelope(f: PiecewiseFunction, g: PiecewiseFunction) -> PiecewiseFunction:
    """Exact pointwise minimum ``min(f, g)``."""
    return _envelope(f, g, take_max=False)
