"""Exact piecewise-affine functions with jump discontinuities.

This is the numeric backbone of the reproduction: the paper's
preemption-delay function ``f_i`` is an arbitrary non-negative function over
the progression axis ``[0, C_i]``, and Algorithm 1 needs two exact
primitives on it:

* the maximum (and leftmost argmax) over a closed interval, and
* the *first* point where ``f`` meets a descending unit-slope line
  ``D(x) = c - x`` (the paper's ``p∩``).

Both are computed exactly here (up to float rounding) — no sampling is
involved — so the reproduced bounds carry no discretisation error.

Discontinuities: adjacent segments may disagree at their shared abscissa.
Evaluation at such a point returns the *maximum* of the one-sided limits,
which is the safe convention for functions that are upper bounds (the
paper's ``f_i`` is an upper bound on the preemption cost).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator, Sequence

from repro.piecewise.segments import Segment
from repro.utils.checks import require

_CONTIGUITY_TOLERANCE = 1e-9


class PiecewiseFunction:
    """A function defined by contiguous affine segments on a closed domain.

    Instances are immutable.  Construction validates that the segments are
    sorted, non-overlapping and contiguous (each segment starts where the
    previous one ends).

    Args:
        segments: Non-empty iterable of :class:`Segment`, ordered by ``x0``,
            with ``segments[k].x1 == segments[k + 1].x0``.
    """

    __slots__ = ("_segments", "_starts")

    def __init__(self, segments: Iterable[Segment]):
        segs = tuple(segments)
        require(len(segs) > 0, "a piecewise function needs at least one segment")
        for left, right in zip(segs, segs[1:]):
            require(
                abs(left.x1 - right.x0) <= _CONTIGUITY_TOLERANCE,
                f"segments must be contiguous: {left!r} then {right!r}",
            )
        self._segments = segs
        self._starts = [s.x0 for s in segs]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def segments(self) -> tuple[Segment, ...]:
        """The underlying segments, in increasing abscissa order."""
        return self._segments

    @property
    def domain(self) -> tuple[float, float]:
        """The closed interval ``[x_min, x_max]`` on which ``f`` is defined."""
        return self._segments[0].x0, self._segments[-1].x1

    @property
    def domain_start(self) -> float:
        """Left end of the domain."""
        return self._segments[0].x0

    @property
    def domain_end(self) -> float:
        """Right end of the domain."""
        return self._segments[-1].x1

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __repr__(self) -> str:
        lo, hi = self.domain
        return (
            f"PiecewiseFunction({len(self._segments)} segments on "
            f"[{lo:g}, {hi:g}], max={self.max_value():g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseFunction):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _segment_range(self, lo: float, hi: float) -> range:
        """Indices of segments intersecting ``[lo, hi]`` (non-degenerately
        or at a single shared point).

        The range starts one segment before the binary-search hit so that a
        segment whose right endpoint equals ``lo`` participates — its
        one-sided limit matters at jump discontinuities.
        """
        first = bisect.bisect_right(self._starts, lo) - 2
        first = max(first, 0)
        last = bisect.bisect_right(self._starts, hi) - 1
        last = max(last, first)
        return range(first, last + 1)

    def value(self, x: float) -> float:
        """Evaluate ``f(x)``.

        At an interior breakpoint where the function jumps, the maximum of
        the two one-sided limits is returned (safe for upper bounds).

        Raises:
            ValueError: if ``x`` lies outside the domain.
        """
        lo, hi = self.domain
        require(lo <= x <= hi, f"{x} outside domain [{lo}, {hi}]")
        best: float | None = None
        for idx in self._segment_range(x, x):
            seg = self._segments[idx]
            if seg.contains(x):
                v = seg.value_at(x)
                best = v if best is None else max(best, v)
        assert best is not None  # domain check above guarantees coverage
        return best

    def __call__(self, x: float) -> float:
        return self.value(x)

    # ------------------------------------------------------------------
    # Interval queries (the primitives Algorithm 1 relies on)
    # ------------------------------------------------------------------
    def max_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Maximum of ``f`` on ``[lo, hi]`` with its leftmost argmax.

        Args:
            lo: Left end of the query interval (must be >= domain start).
            hi: Right end (must be <= domain end and >= ``lo``).

        Returns:
            ``(value, argmax)``; ``argmax`` is the smallest abscissa in
            ``[lo, hi]`` where the maximum is attained.
        """
        d_lo, d_hi = self.domain
        require(d_lo <= lo <= hi <= d_hi, f"[{lo}, {hi}] outside domain [{d_lo}, {d_hi}]")
        best_v = -float("inf")
        best_x = lo
        for idx in self._segment_range(lo, hi):
            seg = self._segments[idx]
            s_lo = max(lo, seg.x0)
            s_hi = min(hi, seg.x1)
            if s_lo > s_hi:
                continue
            v, x = seg.max_on(s_lo, s_hi)
            if v > best_v or (v == best_v and x < best_x):
                best_v, best_x = v, x
        return best_v, best_x

    def min_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Minimum of ``f`` on ``[lo, hi]`` with its leftmost argmin.

        Note: at jump points the *lower* one-sided limit participates in the
        minimum, mirroring the evaluation convention used for maxima.
        """
        d_lo, d_hi = self.domain
        require(d_lo <= lo <= hi <= d_hi, f"[{lo}, {hi}] outside domain [{d_lo}, {d_hi}]")
        best_v = float("inf")
        best_x = lo
        for idx in self._segment_range(lo, hi):
            seg = self._segments[idx]
            s_lo = max(lo, seg.x0)
            s_hi = min(hi, seg.x1)
            if s_lo > s_hi:
                continue
            v, x = seg.min_on(s_lo, s_hi)
            if v < best_v or (v == best_v and x < best_x):
                best_v, best_x = v, x
        return best_v, best_x

    def max_value(self) -> float:
        """Maximum of ``f`` over its whole domain."""
        return self.max_on(*self.domain)[0]

    def first_meeting_with_descending_line(
        self, lo: float, hi: float, c: float
    ) -> float | None:
        """Leftmost ``x`` in ``[lo, hi]`` with ``f(x) >= c - x``.

        This implements the paper's ``p∩`` (Algorithm 1, lines 7–9): the
        first point at which the delay function meets the descending line
        ``D(x) = c - x``.  For a continuous ``f`` starting below the line
        this is the first equality crossing; for step functions that jump
        across the line, the jump abscissa is returned (which is safe: a
        later ``p∩`` only enlarges the window over which the delay maximum
        is taken, so the resulting bound can only grow).

        Returns:
            The meeting abscissa, or ``None`` if ``f`` stays strictly below
            the line on all of ``[lo, hi]``.
        """
        d_lo, d_hi = self.domain
        require(d_lo <= lo <= hi <= d_hi, f"[{lo}, {hi}] outside domain [{d_lo}, {d_hi}]")
        for idx in self._segment_range(lo, hi):
            seg = self._segments[idx]
            s_lo = max(lo, seg.x0)
            s_hi = min(hi, seg.x1)
            if s_lo > s_hi:
                continue
            meeting = seg.first_point_at_or_above_descending_line(s_lo, s_hi, c)
            if meeting is not None:
                return meeting
        return None

    def integral(self) -> float:
        """The exact integral of ``f`` over its domain (trapezoid per piece)."""
        return sum(0.5 * (s.y0 + s.y1) * s.width for s in self._segments)

    # ------------------------------------------------------------------
    # Transformations (all return new instances)
    # ------------------------------------------------------------------
    def shifted(self, dx: float = 0.0, dy: float = 0.0) -> "PiecewiseFunction":
        """Translate the graph by ``dx`` along x and ``dy`` along y."""
        return PiecewiseFunction(s.shifted(dx, dy) for s in self._segments)

    def scaled(self, factor: float) -> "PiecewiseFunction":
        """Multiply all ordinates by ``factor`` (must be >= 0 to preserve
        upper-bound semantics; negative factors are rejected)."""
        require(factor >= 0, f"scale factor must be non-negative, got {factor}")
        return PiecewiseFunction(s.scaled(factor) for s in self._segments)

    def restricted(self, lo: float, hi: float) -> "PiecewiseFunction":
        """Restrict the domain to ``[lo, hi]`` (must be inside the domain)."""
        d_lo, d_hi = self.domain
        require(d_lo <= lo < hi <= d_hi, f"[{lo}, {hi}] not inside [{d_lo}, {d_hi}]")
        pieces = []
        for idx in self._segment_range(lo, hi):
            seg = self._segments[idx]
            s_lo = max(lo, seg.x0)
            s_hi = min(hi, seg.x1)
            if s_lo < s_hi:
                pieces.append(seg.clipped(s_lo, s_hi))
        return PiecewiseFunction(pieces)

    def breakpoints(self) -> list[float]:
        """All abscissae at which a segment starts or ends (sorted, unique)."""
        points = [self._segments[0].x0]
        points.extend(s.x1 for s in self._segments)
        return points

    def sample(self, xs: Sequence[float]) -> list[float]:
        """Evaluate the function at each abscissa in ``xs``.

        Delegates to the batched kernel in
        :mod:`repro.piecewise.vectorized`, which is bit-identical to
        calling :meth:`value` per point but amortises the segment lookup
        across the whole batch.
        """
        from repro.piecewise.vectorized import evaluate_many

        return evaluate_many(self, xs)

    def is_non_negative(self) -> bool:
        """Whether ``f(x) >= 0`` everywhere on the domain."""
        return all(s.y0 >= 0 and s.y1 >= 0 for s in self._segments)
