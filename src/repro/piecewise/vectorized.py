"""Batch (vectorized) evaluation of piecewise functions — NumPy-free.

Scalar :meth:`~repro.piecewise.PiecewiseFunction.value` pays a Python
attribute lookup, a ``bisect`` call and a method dispatch per query.  For
sweeps that sample one function at thousands of abscissae (Figure 4
curves, delay-profile plots, the batch engine's scenario kernels) that
overhead dominates.  This module provides the array-of-breakpoints fast
path:

* :func:`segment_index` — flatten a :class:`PiecewiseFunction` into
  parallel coordinate tuples once, memoised with an LRU cache keyed on
  the (hashable, immutable) function itself;
* :func:`evaluate_sorted` — evaluate at a non-decreasing sequence of
  query points with a single merge walk over the breakpoint array
  (``O(n + m)`` instead of ``m`` independent binary searches);
* :func:`evaluate_many` — the general entry point: argsorts arbitrary
  query points, merge-walks, and scatters the results back.

All paths reproduce the scalar evaluation *bit-identically*, including
the max-of-one-sided-limits convention at jump discontinuities — the
engine's equivalence guarantees depend on this, and
``tests/piecewise/test_vectorized.py`` locks it in on randomized
functions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.piecewise.function import PiecewiseFunction
from repro.utils.caching import SwappableLRU

#: Number of distinct functions whose flattened indices are retained.
#: Bounds memory while letting sweep workers reuse the same few benchmark
#: functions across thousands of scenarios.  ``REPRO_CACHE_SIZE``
#: overrides this default (see :mod:`repro.utils.caching`), sizing it
#: together with the other per-process memos.
SEGMENT_INDEX_CACHE_SIZE = 256


@dataclass(frozen=True, slots=True)
class SegmentIndex:
    """Parallel-array view of a piecewise function's segments.

    The tuples are index-aligned: segment ``k`` is the affine piece from
    ``(x0[k], y0[k])`` to ``(x1[k], y1[k])``.  ``starts`` equals ``x0``
    and is kept as the merge-walk key to mirror the scalar path's
    ``bisect`` over segment start abscissae.

    Attributes:
        starts: Segment start abscissae (sorted; the search key).
        x0: Left abscissa per segment.
        x1: Right abscissa per segment.
        y0: Ordinate at ``x0`` per segment.
        y1: Ordinate at ``x1`` per segment.
        lo: Left end of the function's domain.
        hi: Right end of the function's domain.
    """

    starts: tuple[float, ...]
    x0: tuple[float, ...]
    x1: tuple[float, ...]
    y0: tuple[float, ...]
    y1: tuple[float, ...]
    lo: float
    hi: float

    def __len__(self) -> int:
        return len(self.starts)


def _build_segment_index(f: PiecewiseFunction) -> SegmentIndex:
    """The flattened :class:`SegmentIndex` of ``f``, LRU-memoised.

    ``PiecewiseFunction`` is immutable and hashable, so the index is
    computed once per distinct function; repeated batch evaluations of
    the same function (the common case in scenario sweeps) skip the
    flattening entirely.  Exposed as :data:`segment_index`, a
    :class:`~repro.utils.caching.SwappableLRU` so the capacity follows
    ``REPRO_CACHE_SIZE`` and can be resized at runtime.
    """
    segs = f.segments
    lo, hi = f.domain
    return SegmentIndex(
        starts=tuple(s.x0 for s in segs),
        x0=tuple(s.x0 for s in segs),
        x1=tuple(s.x1 for s in segs),
        y0=tuple(s.y0 for s in segs),
        y1=tuple(s.y1 for s in segs),
        lo=lo,
        hi=hi,
    )


segment_index = SwappableLRU(_build_segment_index, SEGMENT_INDEX_CACHE_SIZE)


def _value_from_index(index: SegmentIndex, cursor: int, x: float) -> float:
    """Evaluate at ``x`` given the merge-walk ``cursor``.

    ``cursor`` must equal ``bisect_right(index.starts, x)``; the candidate
    segments and the per-segment arithmetic replicate
    :meth:`PiecewiseFunction.value` exactly (same candidate window, same
    interpolation expression, same max-of-limits tie handling) so results
    are bit-identical to the scalar path.
    """
    first = cursor - 2
    if first < 0:
        first = 0
    last = cursor - 1
    if last < first:
        last = first
    x0s, x1s, y0s, y1s = index.x0, index.x1, index.y0, index.y1
    best: float | None = None
    for k in range(first, last + 1):
        if x0s[k] <= x <= x1s[k]:
            if x == x0s[k]:
                v = y0s[k]
            elif x == x1s[k]:
                v = y1s[k]
            else:
                ratio = (x - x0s[k]) / (x1s[k] - x0s[k])
                v = y0s[k] + ratio * (y1s[k] - y0s[k])
            best = v if best is None else max(best, v)
    assert best is not None  # domain check by the callers guarantees coverage
    return best


def evaluate_sorted(
    f: PiecewiseFunction, xs: Sequence[float]
) -> list[float]:
    """Evaluate ``f`` at a *non-decreasing* sequence of abscissae.

    A single pointer advances through the breakpoint array as the queries
    advance, so the whole batch costs one pass over segments plus one
    pass over queries.  Sortedness is the caller's contract (uniform
    sample grids, CDF abscissae); it is verified cheaply as the walk
    proceeds.

    Args:
        f: The function to evaluate.
        xs: Query abscissae, non-decreasing, all inside ``f``'s domain.

    Returns:
        ``[f(x) for x in xs]``, bit-identical to the scalar path.

    Raises:
        ValueError: if a query leaves the domain or ``xs`` decreases.
    """
    index = segment_index(f)
    starts = index.starts
    x0s, x1s, y0s, y1s = index.x0, index.x1, index.y0, index.y1
    n = len(starts)
    lo, hi = index.lo, index.hi
    out: list[float] = []
    append = out.append
    cursor = 0
    previous = lo
    # Hot loop: checks and interpolation are inlined (no helper calls, no
    # eager message formatting) — this is the whole point of the kernel.
    for x in xs:
        if x < previous:
            raise ValueError(
                f"query points must be non-decreasing, got {x} after {previous}"
            )
        if not (lo <= x <= hi):  # negated form so NaN is rejected too
            raise ValueError(f"{x} outside domain [{lo}, {hi}]")
        while cursor < n and starts[cursor] <= x:
            cursor += 1
        first = cursor - 2
        if first < 0:
            first = 0
        last = cursor - 1
        if last < first:
            last = first
        best: float | None = None
        for k in range(first, last + 1):
            if x0s[k] <= x <= x1s[k]:
                if x == x0s[k]:
                    v = y0s[k]
                elif x == x1s[k]:
                    v = y1s[k]
                else:
                    ratio = (x - x0s[k]) / (x1s[k] - x0s[k])
                    v = y0s[k] + ratio * (y1s[k] - y0s[k])
                best = v if best is None else max(best, v)
        assert best is not None  # domain check above guarantees coverage
        append(best)
        previous = x
    return out


def evaluate_many(
    f: PiecewiseFunction, xs: Sequence[float]
) -> list[float]:
    """Evaluate ``f`` at arbitrary abscissae in one batched pass.

    Queries are argsorted, merge-walked with :func:`evaluate_sorted`'s
    pointer scheme, and scattered back to input order, so callers get the
    exact per-point results of :meth:`PiecewiseFunction.value` at a
    fraction of the per-call overhead.

    Args:
        f: The function to evaluate.
        xs: Query abscissae in any order, all inside ``f``'s domain.

    Returns:
        ``[f(x) for x in xs]`` in the order of ``xs``.

    Raises:
        ValueError: if any query lies outside the domain.
    """
    index = segment_index(f)
    starts = index.starts
    n = len(starts)
    lo, hi = index.lo, index.hi
    order = sorted(range(len(xs)), key=xs.__getitem__)
    out: list[float] = [0.0] * len(xs)
    cursor = 0
    for i in order:
        x = xs[i]
        if not (lo <= x <= hi):  # negated form so NaN is rejected too
            raise ValueError(f"{x} outside domain [{lo}, {hi}]")
        while cursor < n and starts[cursor] <= x:
            cursor += 1
        out[i] = _value_from_index(index, cursor, x)
    return out


def clear_segment_index_cache() -> None:
    """Drop all memoised segment indices (mainly for tests/long sweeps)."""
    segment_index.cache_clear()
