"""Pluggable kernel backends for piecewise-function evaluation.

The hot path of every sweep, campaign and served job is piecewise
delay-bound evaluation.  This module makes the kernel implementing it a
*registered, named choice* instead of a hard-wired code path:

* :class:`KernelBackend` — one registry entry: a name, a declared
  exactness class, availability (optional backends register as
  unavailable rather than vanishing, so they stay listable), a
  point-evaluation kernel and an optional *batch bound kernel*;
* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` — the registry surface.  ``scalar`` and
  ``vectorized`` (both stdlib-only) are always available; ``numpy`` and
  ``numba`` register as available only when their module imports;
* :class:`BatchedGrid` — a struct-of-arrays layout of one function's
  segments (built once per shared-artifact context via
  :func:`batched_grid`, memoised) against which a whole lane-array of
  scenarios is evaluated as array operations rather than N Python
  calls.

Exactness contract: every kernel registered here declares
``exactness == EXACT_BIT_IDENTICAL`` and must reproduce the scalar
reference expressions *operation for operation* — same candidate
segment windows (``bisect_right`` semantics), same interpolation
arithmetic, same endpoint short-circuits, same tie handling.  A future
backend with documented tolerance would declare a different exactness
class, which the result store records alongside the backend name (see
:meth:`repro.store.ResultStore.set_backend_info`).

The batch bound kernel is the array form of Algorithm 1's window walk
(:mod:`repro.core.floating_npr` holds the scalar reference and its
constants, which callers pass in — this layer stays below ``core``).
All lanes advance in lockstep: one iteration performs the
``searchsorted`` range lookup, the descending-line crossing and the
interval maximum for *every* still-active scenario at once.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from importlib.util import find_spec
from typing import Any, Protocol

from repro.piecewise.function import PiecewiseFunction
from repro.piecewise.vectorized import SegmentIndex, segment_index
from repro.utils.caching import SwappableLRU
from repro.utils.checks import require

#: Exactness class of kernels that reproduce the scalar path bit for bit.
EXACT_BIT_IDENTICAL = "bit-identical"

#: The backend used when no ``--backend`` is selected (the stdlib-only
#: merge-walk kernel that predates the registry).
DEFAULT_BACKEND = "vectorized"

#: Number of distinct functions whose struct-of-arrays grids are retained
#: (same default as the ``SegmentIndex`` memo; ``REPRO_CACHE_SIZE``
#: overrides both).
BATCHED_GRID_CACHE_SIZE = 256


class EvaluationBackend(Protocol):
    """What the engine requires of a registered kernel backend."""

    name: str
    exactness: str

    @property
    def supports_batch(self) -> bool: ...

    def evaluate_points(
        self, f: PiecewiseFunction, xs: Sequence[float]
    ) -> list[float]: ...


@dataclass(frozen=True, slots=True)
class KernelBackend:
    """One kernel-backend registry entry (satisfies
    :class:`EvaluationBackend`).

    Attributes:
        name: Registry key (``--backend`` value).
        description: One-line human description.
        exactness: Declared exactness class versus the scalar reference
            (:data:`EXACT_BIT_IDENTICAL`, or a documented tolerance for
            future approximate backends); recorded in store manifests.
        requires: Optional third-party module the backend needs, or
            ``None`` for stdlib-only backends.
        available: Whether the backend can run in this process (optional
            backends register with ``False`` when their module is
            missing, keeping them listable).
        batch_capable: Whether the backend *design* includes a batch
            bound kernel — an environment-independent declaration (the
            docs table uses it), true even when the backend is
            currently unavailable.
        evaluate_many: Point-evaluation kernel ``(f, xs) -> [f(x)…]``;
            ``None`` only when unavailable.
        bound_batch: Optional lockstep Algorithm 1 kernel
            ``(grid, qs, *, wcet, min_progress_fraction,
            max_iterations) -> (totals, converged, preemptions)``;
            ``None`` means scenario batches fall back to per-scenario
            evaluation under this backend.
    """

    name: str
    description: str
    exactness: str
    requires: str | None
    available: bool
    batch_capable: bool
    evaluate_many: Callable | None
    bound_batch: Callable | None

    @property
    def supports_batch(self) -> bool:
        """Whether whole scenario chunks evaluate as one array op."""
        return self.bound_batch is not None

    def evaluate_points(
        self, f: PiecewiseFunction, xs: Sequence[float]
    ) -> list[float]:
        """Evaluate ``f`` at ``xs`` through this backend's kernel."""
        require(
            self.available and self.evaluate_many is not None,
            f"backend {self.name!r} is not available in this process",
        )
        return self.evaluate_many(f, xs)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, replace: bool = False) -> None:
    """Add ``backend`` to the registry.

    Args:
        backend: The entry to register.
        replace: Allow overwriting an existing entry of the same name.

    Raises:
        ValueError: on duplicate names without ``replace=True``.
    """
    require(
        replace or backend.name not in _BACKENDS,
        f"backend {backend.name!r} is already registered",
    )
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> KernelBackend:
    """The registry entry for ``name`` (available or not).

    Raises:
        ValueError: for unknown names, listing what is registered.
    """
    require(
        name in _BACKENDS,
        f"unknown backend {name!r}; registered backends: "
        f"{', '.join(backend_names())}",
    )
    return _BACKENDS[name]


def resolve_backend(name: str) -> KernelBackend:
    """Like :func:`get_backend` but the entry must be runnable here.

    Raises:
        ValueError: for unknown names, or for registered-but-unavailable
            backends (e.g. ``numba`` without the module installed),
            listing the currently available choices.
    """
    backend = get_backend(name)
    require(
        backend.available,
        f"backend {name!r} is not available"
        + (
            f" (requires the {backend.requires!r} module)"
            if backend.requires
            else ""
        )
        + f"; available backends: {', '.join(available_backends())}",
    )
    return backend


def backend_names() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_BACKENDS)


def available_backends() -> tuple[str, ...]:
    """Names of the backends runnable in this process, in registration
    order."""
    return tuple(b.name for b in _BACKENDS.values() if b.available)


def backend_supports_batch(name: str) -> bool:
    """Whether ``name`` resolves to a backend with a batch bound kernel."""
    return resolve_backend(name).supports_batch


# ----------------------------------------------------------------------
# struct-of-arrays batch layout
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class BatchedGrid:
    """Struct-of-arrays view of one function's segments (NumPy arrays).

    Index-aligned float64 arrays mirroring :class:`SegmentIndex`:
    segment ``k`` runs from ``(x0[k], y0[k])`` to ``(x1[k], y1[k])``,
    and ``starts`` (== ``x0``) is the ``searchsorted`` key replicating
    the scalar path's ``bisect`` over segment start abscissae.  Built
    once per shared-artifact context group and reused by every lane of
    a batch.
    """

    starts: Any
    x0: Any
    x1: Any
    y0: Any
    y1: Any
    lo: float
    hi: float

    def __len__(self) -> int:
        return int(self.starts.shape[0])


def _build_batched_grid(index: SegmentIndex) -> BatchedGrid:
    """Materialise the NumPy struct-of-arrays grid for ``index``.

    Requires the ``numpy`` backend to be available; memoised through
    :data:`batched_grid` so each distinct function pays the conversion
    once per process.
    """
    import numpy as np

    return BatchedGrid(
        starts=np.asarray(index.starts, dtype=np.float64),
        x0=np.asarray(index.x0, dtype=np.float64),
        x1=np.asarray(index.x1, dtype=np.float64),
        y0=np.asarray(index.y0, dtype=np.float64),
        y1=np.asarray(index.y1, dtype=np.float64),
        lo=index.lo,
        hi=index.hi,
    )


batched_grid = SwappableLRU(_build_batched_grid, BATCHED_GRID_CACHE_SIZE)


def batched_grid_for(f: PiecewiseFunction) -> BatchedGrid:
    """The (memoised) :class:`BatchedGrid` of ``f``."""
    return batched_grid(segment_index(f))


def clear_batched_grid_cache() -> None:
    """Drop all memoised grids (mainly for tests/long sweeps)."""
    batched_grid.cache_clear()


# ----------------------------------------------------------------------
# NumPy kernels
#
# Every expression below replicates the scalar reference in
# repro/piecewise/segments.py & function.py operation for operation —
# no algebraic rewrites — which is what makes the backend's
# EXACT_BIT_IDENTICAL declaration true by construction (and asserted on
# randomized functions in tests/piecewise/test_backends.py).
# ----------------------------------------------------------------------


def _segment_window(np, starts, lo, hi):
    """Per-lane candidate segment columns for ``[lo, hi]`` queries.

    Mirrors ``PiecewiseFunction._segment_range``: the window starts one
    segment before the ``bisect_right`` hit (so a segment whose right
    endpoint equals ``lo`` contributes its one-sided limit) and ends at
    the last segment starting at or before ``hi``.

    Returns:
        ``(cols, valid)`` — integer column indices of shape
        ``(lanes, width)`` clamped into range, and the mask of columns
        actually inside each lane's window.
    """
    first = np.searchsorted(starts, lo, side="right") - 2
    np.maximum(first, 0, out=first)
    last = np.searchsorted(starts, hi, side="right") - 1
    np.maximum(last, first, out=last)
    width = int((last - first).max()) + 1
    cols = first[:, None] + np.arange(width)[None, :]
    valid = cols <= last[:, None]
    np.minimum(cols, starts.shape[0] - 1, out=cols)
    return cols, valid


def _value_at(np, x0, x1, y0, y1, x):
    """``Segment.value_at`` over arrays: endpoint short-circuits, then
    the exact interpolation expression."""
    ratio = (x - x0) / (x1 - x0)
    interp = y0 + ratio * (y1 - y0)
    return np.where(x == x0, y0, np.where(x == x1, y1, interp))


def _first_meeting_lanes(np, grid: BatchedGrid, lo, hi, c):
    """Per-lane ``first_meeting_with_descending_line(lo, hi, c)``.

    Returns the meeting abscissa per lane, or NaN where ``f`` stays
    strictly below the line (the scalar path's ``None``).
    """
    cols, valid = _segment_window(np, grid.starts, lo, hi)
    x0, x1 = grid.x0[cols], grid.x1[cols]
    y0, y1 = grid.y0[cols], grid.y1[cols]
    s_lo = np.maximum(lo[:, None], x0)
    s_hi = np.minimum(hi[:, None], x1)
    valid &= s_lo <= s_hi
    g_lo = _value_at(np, x0, x1, y0, y1, s_lo) - (c[:, None] - s_lo)
    g_hi = _value_at(np, x0, x1, y0, y1, s_hi) - (c[:, None] - s_hi)
    at_lo = g_lo >= 0.0
    denom = g_hi - g_lo
    crosses = ~at_lo & (g_hi >= 0.0) & (denom != 0.0)
    safe = np.where(denom == 0.0, 1.0, denom)
    root = s_lo + (s_hi - s_lo) * (0.0 - g_lo) / safe
    root = np.minimum(np.maximum(root, s_lo), s_hi)
    meeting = np.where(at_lo, s_lo, root)
    has = valid & (at_lo | crosses)
    rows = np.arange(lo.shape[0])
    col = np.argmax(has, axis=1)  # first True = leftmost segment
    return np.where(has[rows, col], meeting[rows, col], np.nan)


def _max_on_lanes(np, grid: BatchedGrid, lo, hi):
    """Per-lane ``max_on(lo, hi)`` values (argmax positions are not
    needed by the batch bound — only the charged delay is)."""
    cols, valid = _segment_window(np, grid.starts, lo, hi)
    x0, x1 = grid.x0[cols], grid.x1[cols]
    y0, y1 = grid.y0[cols], grid.y1[cols]
    s_lo = np.maximum(lo[:, None], x0)
    s_hi = np.minimum(hi[:, None], x1)
    valid &= s_lo <= s_hi
    v_lo = _value_at(np, x0, x1, y0, y1, s_lo)
    v_hi = _value_at(np, x0, x1, y0, y1, s_hi)
    v = np.where(v_hi > v_lo, v_hi, v_lo)
    return np.where(valid, v, -np.inf).max(axis=1)


def _bound_batch_numpy(
    grid: BatchedGrid,
    qs: Sequence[float],
    *,
    wcet: float,
    min_progress_fraction: float,
    max_iterations: int,
) -> tuple[list[float], list[bool], list[int]]:
    """Lockstep Algorithm 1 over a lane-array of NPR lengths.

    One lane per scenario, all sharing ``grid``.  Each lockstep
    iteration advances every still-active lane by one analysis window
    using array operations; lanes retire on completion or divergence
    and are compacted out.  Per lane, the window sequence — and hence
    the summation order of the charged delays — is exactly the scalar
    loop's, so totals are bit-identical.

    Returns:
        ``(total_delay, converged, preemptions)`` lists aligned with
        ``qs`` (totals are ``inf`` on divergence, mirroring
        :func:`repro.core.floating_npr.floating_npr_delay_bound`).
    """
    import numpy as np

    q_all = np.asarray(qs, dtype=np.float64)
    lanes = q_all.shape[0]
    total = np.zeros(lanes, dtype=np.float64)
    converged = np.ones(lanes, dtype=bool)
    preemptions = np.zeros(lanes, dtype=np.int64)
    p_next = q_all.copy()  # no preemption during the first Q units
    live = np.flatnonzero(p_next < wcet)
    iteration = 0
    while live.size:
        iteration += 1
        if iteration > max_iterations:
            q_stuck = q_all[live[0]]
            raise ValueError(
                f"Algorithm 1 exceeded {max_iterations} iterations "
                f"(C={wcet}, Q={q_stuck}); the bound is close to divergence"
            )
        q = q_all[live]
        prog = p_next[live]
        c = prog + q
        window_end = np.minimum(c, wcet)
        p_cross = _first_meeting_lanes(np, grid, prog, window_end, c)
        p_cross = np.where(np.isnan(p_cross), window_end, p_cross)
        delay = _max_on_lanes(np, grid, prog, p_cross)
        diverging = delay >= q - q * min_progress_fraction
        stalled = live[diverging]
        total[stalled] = np.inf
        converged[stalled] = False
        advancing = ~diverging
        idx = live[advancing]
        step = delay[advancing]
        p_new = c[advancing] - step  # (prog + q) - delay, as in the scalar
        total[idx] += step
        preemptions[idx] += 1
        p_next[idx] = p_new
        live = idx[p_new < wcet]
    return total.tolist(), converged.tolist(), preemptions.tolist()


def _evaluate_many_numpy(
    f: PiecewiseFunction, xs: Sequence[float]
) -> list[float]:
    """NumPy point evaluation: same candidate windows and arithmetic as
    ``PiecewiseFunction.value`` (max of one-sided limits at jumps)."""
    import numpy as np

    grid = batched_grid_for(f)
    x = np.asarray(xs, dtype=np.float64)
    if x.size == 0:
        return []
    inside = (grid.lo <= x) & (x <= grid.hi)
    if not inside.all():
        bad = x[np.argmin(inside)]
        raise ValueError(f"{bad} outside domain [{grid.lo}, {grid.hi}]")
    cols, valid = _segment_window(np, grid.starts, x, x)
    x0, x1 = grid.x0[cols], grid.x1[cols]
    y0, y1 = grid.y0[cols], grid.y1[cols]
    xb = x[:, None]
    contains = valid & (x0 <= xb) & (xb <= x1)
    v = _value_at(np, x0, x1, y0, y1, xb)
    return np.where(contains, v, -np.inf).max(axis=1).tolist()


# ----------------------------------------------------------------------
# numba kernel (compiled lazily; registered available only when the
# module imports)
# ----------------------------------------------------------------------

_NUMBA_KERNEL = None


def _numba_kernel():
    """JIT-compile (once) the per-lane transliteration of Algorithm 1."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is not None:
        return _NUMBA_KERNEL
    import numba
    import numpy as np  # noqa: F401  (used inside the jitted body)

    @numba.njit(cache=False)
    def kernel(
        starts, x0, x1, y0, y1, qs, wcet, min_frac, max_iter
    ):  # pragma: no cover - exercised only where numba is installed
        n = starts.shape[0]
        lanes = qs.shape[0]
        totals = np.zeros(lanes, dtype=np.float64)
        converged = np.ones(lanes, dtype=np.bool_)
        preempts = np.zeros(lanes, dtype=np.int64)
        failed = -1
        for i in range(lanes):
            q = qs[i]
            total = 0.0
            p_next = q
            count = 0
            iteration = 0
            while p_next < wcet:
                iteration += 1
                if iteration > max_iter:
                    failed = i
                    break
                prog = p_next
                c = prog + q
                window_end = min(c, wcet)
                # first meeting with the descending line on
                # [prog, window_end]
                lo = prog
                hi = window_end
                # bisect_right(starts, v)
                b_lo = 0
                b_hi = n
                while b_lo < b_hi:
                    mid = (b_lo + b_hi) // 2
                    if lo < starts[mid]:
                        b_hi = mid
                    else:
                        b_lo = mid + 1
                first = b_lo - 2
                if first < 0:
                    first = 0
                b_lo = 0
                b_hi = n
                while b_lo < b_hi:
                    mid = (b_lo + b_hi) // 2
                    if hi < starts[mid]:
                        b_hi = mid
                    else:
                        b_lo = mid + 1
                last = b_lo - 1
                if last < first:
                    last = first
                p_cross = window_end
                found = False
                for k in range(first, last + 1):
                    s_lo = lo if lo > x0[k] else x0[k]
                    s_hi = hi if hi < x1[k] else x1[k]
                    if s_lo > s_hi:
                        continue
                    if s_lo == x0[k]:
                        v_lo = y0[k]
                    elif s_lo == x1[k]:
                        v_lo = y1[k]
                    else:
                        ratio = (s_lo - x0[k]) / (x1[k] - x0[k])
                        v_lo = y0[k] + ratio * (y1[k] - y0[k])
                    g_lo = v_lo - (c - s_lo)
                    if g_lo >= 0:
                        p_cross = s_lo
                        found = True
                        break
                    if s_hi == x0[k]:
                        v_hi = y0[k]
                    elif s_hi == x1[k]:
                        v_hi = y1[k]
                    else:
                        ratio = (s_hi - x0[k]) / (x1[k] - x0[k])
                        v_hi = y0[k] + ratio * (y1[k] - y0[k])
                    g_hi = v_hi - (c - s_hi)
                    if g_hi < 0:
                        continue
                    if g_hi == g_lo:
                        continue
                    root = s_lo + (s_hi - s_lo) * (0.0 - g_lo) / (
                        g_hi - g_lo
                    )
                    if root < s_lo:
                        root = s_lo
                    if root > s_hi:
                        root = s_hi
                    p_cross = root
                    found = True
                    break
                if not found:
                    p_cross = window_end
                # max_on(prog, p_cross)
                hi = p_cross
                b_lo = 0
                b_hi = n
                while b_lo < b_hi:
                    mid = (b_lo + b_hi) // 2
                    if lo < starts[mid]:
                        b_hi = mid
                    else:
                        b_lo = mid + 1
                first = b_lo - 2
                if first < 0:
                    first = 0
                b_lo = 0
                b_hi = n
                while b_lo < b_hi:
                    mid = (b_lo + b_hi) // 2
                    if hi < starts[mid]:
                        b_hi = mid
                    else:
                        b_lo = mid + 1
                last = b_lo - 1
                if last < first:
                    last = first
                delay = -np.inf
                for k in range(first, last + 1):
                    s_lo = lo if lo > x0[k] else x0[k]
                    s_hi = hi if hi < x1[k] else x1[k]
                    if s_lo > s_hi:
                        continue
                    if s_lo == x0[k]:
                        v_lo = y0[k]
                    elif s_lo == x1[k]:
                        v_lo = y1[k]
                    else:
                        ratio = (s_lo - x0[k]) / (x1[k] - x0[k])
                        v_lo = y0[k] + ratio * (y1[k] - y0[k])
                    if s_hi == x0[k]:
                        v_hi = y0[k]
                    elif s_hi == x1[k]:
                        v_hi = y1[k]
                    else:
                        ratio = (s_hi - x0[k]) / (x1[k] - x0[k])
                        v_hi = y0[k] + ratio * (y1[k] - y0[k])
                    v = v_hi if v_hi > v_lo else v_lo
                    if v > delay:
                        delay = v
                if delay >= q - q * min_frac:
                    total = np.inf
                    converged[i] = False
                    break
                p_next = c - delay
                total += delay
                count += 1
            totals[i] = total
            preempts[i] = count
            if failed >= 0:
                break
        return totals, converged, preempts, failed

    _NUMBA_KERNEL = kernel
    return kernel


def _bound_batch_numba(
    grid: BatchedGrid,
    qs: Sequence[float],
    *,
    wcet: float,
    min_progress_fraction: float,
    max_iterations: int,
) -> tuple[list[float], list[bool], list[int]]:
    """Per-lane compiled transliteration of the scalar Algorithm 1."""
    import numpy as np

    q_all = np.asarray(qs, dtype=np.float64)
    totals, converged, preempts, failed = _numba_kernel()(
        grid.starts,
        grid.x0,
        grid.x1,
        grid.y0,
        grid.y1,
        q_all,
        wcet,
        min_progress_fraction,
        max_iterations,
    )
    if failed >= 0:
        raise ValueError(
            f"Algorithm 1 exceeded {max_iterations} iterations "
            f"(C={wcet}, Q={q_all[failed]}); the bound is close to "
            "divergence"
        )
    return totals.tolist(), converged.tolist(), preempts.tolist()


def _evaluate_many_numba(
    f: PiecewiseFunction, xs: Sequence[float]
) -> list[float]:
    """Point evaluation under the numba backend (shares the NumPy
    candidate-window kernel; the compiled path covers the bound walk)."""
    return _evaluate_many_numpy(f, xs)


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------


def _evaluate_many_scalar(
    f: PiecewiseFunction, xs: Sequence[float]
) -> list[float]:
    """The reference kernel: one ``PiecewiseFunction.value`` per point."""
    return [f.value(x) for x in xs]


def _register_builtins() -> None:
    from repro.piecewise.vectorized import evaluate_many

    register_backend(
        KernelBackend(
            name="scalar",
            description="per-point reference path (one Python call per "
            "query); the semantics every other backend must match",
            exactness=EXACT_BIT_IDENTICAL,
            requires=None,
            available=True,
            batch_capable=False,
            evaluate_many=_evaluate_many_scalar,
            bound_batch=None,
        )
    )
    register_backend(
        KernelBackend(
            name="vectorized",
            description="stdlib-only merge-walk over the flattened "
            "SegmentIndex (the default)",
            exactness=EXACT_BIT_IDENTICAL,
            requires=None,
            available=True,
            batch_capable=False,
            evaluate_many=evaluate_many,
            bound_batch=None,
        )
    )
    numpy_available = find_spec("numpy") is not None
    register_backend(
        KernelBackend(
            name="numpy",
            description="struct-of-arrays lockstep kernel: whole grouped "
            "chunks evaluate as array operations",
            exactness=EXACT_BIT_IDENTICAL,
            requires="numpy",
            available=numpy_available,
            batch_capable=True,
            evaluate_many=_evaluate_many_numpy if numpy_available else None,
            bound_batch=_bound_batch_numpy if numpy_available else None,
        )
    )
    numba_available = numpy_available and find_spec("numba") is not None
    register_backend(
        KernelBackend(
            name="numba",
            description="JIT-compiled per-lane transliteration of the "
            "scalar window walk",
            exactness=EXACT_BIT_IDENTICAL,
            requires="numba",
            available=numba_available,
            batch_capable=True,
            evaluate_many=_evaluate_many_numba if numba_available else None,
            bound_batch=_bound_batch_numba if numba_available else None,
        )
    )


_register_builtins()
