"""Exact piecewise-affine function machinery (substrate S1).

The paper's preemption-delay functions ``f_i`` and every derived curve are
represented as :class:`PiecewiseFunction` objects: ordered contiguous affine
segments with optional jump discontinuities.  All interval queries used by
the analyses (interval maxima, descending-line crossings) are exact.
"""

from repro.piecewise.builders import (
    constant,
    from_points,
    step,
    unimodal_upper_step,
    upper_step_from_callable,
)
from repro.piecewise.function import PiecewiseFunction
from repro.piecewise.operations import (
    add,
    combine,
    max_envelope,
    min_envelope,
    subtract,
)
from repro.piecewise.segments import Segment

__all__ = [
    "Segment",
    "PiecewiseFunction",
    "constant",
    "from_points",
    "step",
    "unimodal_upper_step",
    "upper_step_from_callable",
    "add",
    "subtract",
    "combine",
    "max_envelope",
    "min_envelope",
]
