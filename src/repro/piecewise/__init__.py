"""Exact piecewise-affine function machinery (substrate S1).

The paper's preemption-delay functions ``f_i`` and every derived curve are
represented as :class:`PiecewiseFunction` objects: ordered contiguous affine
segments with optional jump discontinuities.  All interval queries used by
the analyses (interval maxima, descending-line crossings) are exact.

Two evaluation paths share the same semantics: the scalar
:meth:`PiecewiseFunction.value` and the batched kernel of
:mod:`repro.piecewise.vectorized` (:func:`evaluate_many` /
:func:`evaluate_sorted`), which the batch-analysis engine and the figure
samplers use to evaluate one function at many abscissae in a single
merge walk over an LRU-cached :class:`SegmentIndex`.
"""

from repro.piecewise.backends import (
    DEFAULT_BACKEND,
    EXACT_BIT_IDENTICAL,
    BatchedGrid,
    KernelBackend,
    available_backends,
    backend_names,
    batched_grid,
    batched_grid_for,
    clear_batched_grid_cache,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.piecewise.builders import (
    constant,
    from_points,
    step,
    unimodal_upper_step,
    upper_step_from_callable,
)
from repro.piecewise.function import PiecewiseFunction
from repro.piecewise.operations import (
    add,
    combine,
    max_envelope,
    min_envelope,
    subtract,
)
from repro.piecewise.segments import Segment
from repro.piecewise.vectorized import (
    SegmentIndex,
    clear_segment_index_cache,
    evaluate_many,
    evaluate_sorted,
    segment_index,
)

__all__ = [
    "Segment",
    "PiecewiseFunction",
    "constant",
    "from_points",
    "step",
    "unimodal_upper_step",
    "upper_step_from_callable",
    "add",
    "subtract",
    "combine",
    "max_envelope",
    "min_envelope",
    "SegmentIndex",
    "segment_index",
    "evaluate_many",
    "evaluate_sorted",
    "clear_segment_index_cache",
    "DEFAULT_BACKEND",
    "EXACT_BIT_IDENTICAL",
    "BatchedGrid",
    "KernelBackend",
    "available_backends",
    "backend_names",
    "batched_grid",
    "batched_grid_for",
    "clear_batched_grid_cache",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
