"""Linear segment primitive used by :class:`repro.piecewise.PiecewiseFunction`.

A :class:`Segment` is the graph of an affine function restricted to a closed
interval ``[x0, x1]``.  Piecewise functions are ordered lists of contiguous
segments; adjacent segments may disagree at their shared abscissa, which is
how step (piecewise-constant) functions and general discontinuities are
represented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class Segment:
    """An affine piece ``y(x) = y0 + slope * (x - x0)`` on ``[x0, x1]``.

    Attributes:
        x0: Left abscissa (inclusive).
        x1: Right abscissa (inclusive), strictly greater than ``x0``.
        y0: Value at ``x0``.
        y1: Value at ``x1``.
    """

    x0: float
    x1: float
    y0: float
    y1: float

    def __post_init__(self) -> None:
        require(
            all(math.isfinite(v) for v in (self.x0, self.x1, self.y0, self.y1)),
            f"segment coordinates must be finite, got {self!r}",
        )
        require(self.x1 > self.x0, f"segment must have positive width, got {self!r}")

    @property
    def slope(self) -> float:
        """Slope of the affine piece."""
        return (self.y1 - self.y0) / (self.x1 - self.x0)

    @property
    def width(self) -> float:
        """Length of the segment's abscissa interval."""
        return self.x1 - self.x0

    def contains(self, x: float) -> bool:
        """Whether ``x`` lies inside the closed interval ``[x0, x1]``."""
        return self.x0 <= x <= self.x1

    def value_at(self, x: float) -> float:
        """Evaluate the affine piece at ``x`` (``x`` must lie in the segment)."""
        require(self.contains(x), f"{x} outside segment [{self.x0}, {self.x1}]")
        if x == self.x0:
            return self.y0
        if x == self.x1:
            return self.y1
        ratio = (x - self.x0) / (self.x1 - self.x0)
        return self.y0 + ratio * (self.y1 - self.y0)

    def max_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Maximum of the piece on ``[lo, hi] ∩ [x0, x1]``.

        Returns:
            ``(value, argmax)`` where ``argmax`` is the *leftmost* abscissa at
            which the maximum is attained.  Because the piece is affine, the
            maximum sits at one of the clipped endpoints.
        """
        lo = max(lo, self.x0)
        hi = min(hi, self.x1)
        require(lo <= hi, f"empty intersection of [{lo}, {hi}] with {self!r}")
        v_lo = self.value_at(lo)
        v_hi = self.value_at(hi)
        if v_hi > v_lo:
            return v_hi, hi
        return v_lo, lo

    def min_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Minimum of the piece on ``[lo, hi] ∩ [x0, x1]`` (value, leftmost arg)."""
        lo = max(lo, self.x0)
        hi = min(hi, self.x1)
        require(lo <= hi, f"empty intersection of [{lo}, {hi}] with {self!r}")
        v_lo = self.value_at(lo)
        v_hi = self.value_at(hi)
        if v_hi < v_lo:
            return v_hi, hi
        return v_lo, lo

    def first_point_at_or_above_descending_line(
        self, lo: float, hi: float, c: float
    ) -> float | None:
        """Leftmost ``x`` in ``[lo, hi] ∩ [x0, x1]`` with ``y(x) >= c - x``.

        The descending line ``D(x) = c - x`` has slope −1; this is the line
        Algorithm 1 of the paper intersects with the preemption-delay
        function within each analysis window.

        Returns:
            The leftmost meeting abscissa, or ``None`` when the piece stays
            strictly below the line on the whole clipped interval.
        """
        lo = max(lo, self.x0)
        hi = min(hi, self.x1)
        if lo > hi:
            return None
        # g(x) = y(x) - (c - x) is affine with slope (slope + 1); a meeting
        # point is a root of g crossing from below, or any x with g(x) >= 0.
        g_lo = self.value_at(lo) - (c - lo)
        if g_lo >= 0:
            return lo
        g_hi = self.value_at(hi) - (c - hi)
        if g_hi < 0:
            return None
        if g_hi == g_lo:  # constant g < 0 already excluded above
            return None
        # Linear interpolation for the root of g on [lo, hi].
        root = lo + (hi - lo) * (0.0 - g_lo) / (g_hi - g_lo)
        return min(max(root, lo), hi)

    def shifted(self, dx: float, dy: float) -> "Segment":
        """A copy of the segment translated by ``(dx, dy)``."""
        return Segment(self.x0 + dx, self.x1 + dx, self.y0 + dy, self.y1 + dy)

    def scaled(self, factor: float) -> "Segment":
        """A copy with ordinates multiplied by ``factor``."""
        return Segment(self.x0, self.x1, self.y0 * factor, self.y1 * factor)

    def clipped(self, lo: float, hi: float) -> "Segment":
        """The restriction of the piece to ``[lo, hi] ∩ [x0, x1]``."""
        lo = max(lo, self.x0)
        hi = min(hi, self.x1)
        require(lo < hi, f"clip [{lo}, {hi}] leaves no width in {self!r}")
        return Segment(lo, hi, self.value_at(lo), self.value_at(hi))
