"""repro — reproduction of *Preemption Delay Analysis for Floating
Non-Preemptive Region Scheduling* (Marinho, Nélis, Petters, Puaut; DATE 2012).

The package implements the paper's Algorithm 1 (a shape-aware cumulative
preemption-delay bound for floating non-preemptive region scheduling)
together with every substrate the paper builds on: exact piecewise
function machinery, control-flow-graph execution-interval analysis,
cache-related preemption delay (CRPD) estimation, non-preemptive region
length determination, schedulability tests and a discrete-event scheduler
simulator used to validate the bounds empirically.

Quick start::

    from repro import PreemptionDelayFunction, floating_npr_delay_bound

    f = PreemptionDelayFunction.from_points([0, 1000, 2000], [8.0, 2.0, 0.0])
    bound = floating_npr_delay_bound(f, q=100.0)
    print(bound.total_delay, bound.inflated_wcet)

Whole workloads — figures, validation fuzzing, engine sweeps,
declarative campaigns — run through the typed facade
(:mod:`repro.api`)::

    from repro.api import RunRequest, Workbench

    result = Workbench().run(RunRequest.make("fig5", points=8, knots=256))

Large scenario grids route through the batch engine
(:mod:`repro.engine`): deterministic chunking, ``concurrent.futures``
worker pools and streaming JSONL/CSV sinks, with results bit-identical
to the inline path for any worker count.

See ``docs/architecture.md`` for the layer diagram and
``docs/paper_mapping.md`` for the paper-artifact → module/test index.
"""

from repro.core import (
    BoundComparison,
    FloatingNPRBound,
    NaivePointSelection,
    PreemptionDelayFunction,
    StateOfTheArtBound,
    WindowStep,
    algorithm1_dominates,
    compare_bounds,
    floating_npr_delay_bound,
    naive_point_selection_bound,
    state_of_the_art_delay_bound,
)
from repro.piecewise import PiecewiseFunction, Segment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PiecewiseFunction",
    "Segment",
    "PreemptionDelayFunction",
    "FloatingNPRBound",
    "WindowStep",
    "floating_npr_delay_bound",
    "StateOfTheArtBound",
    "state_of_the_art_delay_bound",
    "NaivePointSelection",
    "naive_point_selection_bound",
    "BoundComparison",
    "compare_bounds",
    "algorithm1_dominates",
]
