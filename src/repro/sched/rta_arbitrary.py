"""Arbitrary-deadline response-time analysis (Lehoczky busy windows).

The classic recurrence of :mod:`repro.sched.rta` assumes at most one
pending job per task (``D <= T``).  With arbitrary deadlines a level-i
busy window can contain several jobs of τ_i, each pushing the next; the
response time is the maximum over all of them::

    L        = smallest fixpoint of  B + sum_{j <= i} ceil(L / T_j) C_j
    K        = ceil(L / T_i)
    f_k      = fixpoint of  B + k C_i + sum_{j < i} ceil(w / T_j) C_j
    R        = max_k ( f_k - (k - 1) T_i )

Execution-time overrides propagate to interference exactly as in the
constrained-deadline analysis (inflated interferers stay inflated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require

_MAX_ITERATIONS = 100_000


@dataclass(frozen=True, slots=True)
class ArbitraryDeadlineResult:
    """Outcome of the busy-window analysis.

    Attributes:
        response_times: Worst response time per task (``inf`` on
            divergence / overload).
        busy_window_jobs: Number of jobs of each task examined in its
            level-i busy window.
        schedulable: Whether every task meets its deadline.
    """

    response_times: dict[str, float]
    busy_window_jobs: dict[str, int]
    schedulable: bool


def _busy_window_length(
    task_cost: float,
    task_period: float,
    higher: list[tuple[Task, float]],
    blocking: float,
    limit: float,
) -> float:
    """Level-i busy window fixpoint (``inf`` beyond ``limit``)."""
    length = task_cost + blocking
    for _ in range(_MAX_ITERATIONS):
        updated = (
            blocking
            + math.ceil(length / task_period) * task_cost
            + sum(
                math.ceil(length / hp.period) * cost
                for hp, cost in higher
            )
        )
        if updated == length:
            return length
        if updated > limit:
            return math.inf
        length = updated
    return math.inf


def _finish_time(
    k: int,
    task_cost: float,
    higher: list[tuple[Task, float]],
    blocking: float,
    limit: float,
) -> float:
    """Completion of the k-th job in the busy window (``inf`` if > limit)."""
    w = blocking + k * task_cost
    for _ in range(_MAX_ITERATIONS):
        updated = (
            blocking
            + k * task_cost
            + sum(
                math.ceil(w / hp.period) * cost for hp, cost in higher
            )
        )
        if updated == w:
            return w
        if updated > limit:
            return math.inf
        w = updated
    return math.inf


def rta_arbitrary_deadline(
    tasks: TaskSet,
    execution_times: dict[str, float] | None = None,
    include_npr_blocking: bool = True,
    window_limit_factor: float = 100.0,
) -> ArbitraryDeadlineResult:
    """Busy-window RTA supporting ``D > T``.

    Args:
        tasks: Fixed-priority task set.
        execution_times: Optional per-task WCET overrides (inflated C').
        include_npr_blocking: Account for lower-priority NPR blocking.
        window_limit_factor: Abort a busy window longer than this many
            periods of the analysed task (treats it as unschedulable).

    Returns:
        Per-task worst response times over all busy-window jobs.
    """
    require(window_limit_factor > 0, "window_limit_factor must be > 0")
    ordered = list(tasks.sorted_by_priority())
    overrides = execution_times or {}
    response_times: dict[str, float] = {}
    window_jobs: dict[str, int] = {}
    schedulable = True

    for i, task in enumerate(ordered):
        cost = overrides.get(task.name, task.wcet)
        higher = [
            (hp, overrides.get(hp.name, hp.wcet)) for hp in ordered[:i]
        ]
        blocking = 0.0
        if include_npr_blocking:
            blocking = max(
                (
                    t.npr_length
                    for t in ordered[i + 1 :]
                    if t.npr_length is not None
                ),
                default=0.0,
            )
        if not math.isfinite(cost) or any(
            not math.isfinite(c) for _, c in higher
        ):
            response_times[task.name] = math.inf
            window_jobs[task.name] = 0
            schedulable = False
            continue

        limit = window_limit_factor * task.period
        length = _busy_window_length(
            cost, task.period, higher, blocking, limit
        )
        if not math.isfinite(length):
            response_times[task.name] = math.inf
            window_jobs[task.name] = 0
            schedulable = False
            continue

        jobs = max(math.ceil(length / task.period), 1)
        worst = 0.0
        for k in range(1, jobs + 1):
            finish = _finish_time(k, cost, higher, blocking, limit)
            if not math.isfinite(finish):
                worst = math.inf
                break
            worst = max(worst, finish - (k - 1) * task.period)
        response_times[task.name] = worst
        window_jobs[task.name] = jobs
        if not (worst <= task.deadline):
            schedulable = False

    return ArbitraryDeadlineResult(
        response_times=response_times,
        busy_window_jobs=window_jobs,
        schedulable=schedulable,
    )
