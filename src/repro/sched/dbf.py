"""Demand bound functions and the EDF processor-demand criterion.

For a sporadic task with parameters ``(C, T, D)`` the demand bound
function is ``dbf(t) = max(0, floor((t - D) / T) + 1) * C`` — the largest
cumulative execution of jobs with both release and deadline inside a
window of length ``t``.  EDF feasibility on a unicore is equivalent to
``dbf(t) <= t`` for all ``t > 0`` (Baruah et al.), checked on the finite
testing set of dbf step points up to a bounded horizon.
"""

from __future__ import annotations

import math

from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require


def task_demand(task: Task, t: float) -> float:
    """``dbf_i(t)`` of one sporadic task."""
    if t < task.deadline:
        return 0.0
    jobs = math.floor((t - task.deadline) / task.period) + 1
    return jobs * task.wcet


def demand_bound_function(tasks: TaskSet, t: float) -> float:
    """Total demand ``sum_i dbf_i(t)``."""
    return sum(task_demand(task, t) for task in tasks)


def analysis_horizon(tasks: TaskSet) -> float:
    """A safe horizon for the processor-demand test.

    For ``U < 1`` the standard bound
    ``L = max(D_max, U / (1 - U) * max_i (T_i - D_i))`` suffices: beyond
    it ``dbf(t) <= U * t + const < t``.  For ``U >= 1`` the test is
    decided within one hyperperiod-scale window; we use
    ``2 * max(T_i + D_i)`` scaled by the task count as a pragmatic cap
    (with ``U > 1`` the test fails early anyway).
    """
    u = tasks.utilization
    d_max = max(t.deadline for t in tasks)
    if u < 1.0:
        slack_term = max((t.period - t.deadline) for t in tasks)
        slack_term = max(slack_term, 0.0)
        return max(d_max, u / (1.0 - u) * slack_term) + 1e-9
    return 2.0 * max(t.period + t.deadline for t in tasks) * len(tasks)


def testing_points(tasks: TaskSet, horizon: float) -> list[float]:
    """All dbf step points ``k * T_i + D_i`` up to ``horizon`` (sorted)."""
    require(horizon > 0, f"horizon must be > 0, got {horizon}")
    points: set[float] = set()
    for task in tasks:
        t = task.deadline
        while t <= horizon:
            points.add(t)
            t += task.period
    return sorted(points)


def edf_schedulable(tasks: TaskSet) -> bool:
    """Processor-demand criterion for fully preemptive EDF."""
    if tasks.utilization > 1.0 + 1e-12:
        return False
    horizon = analysis_horizon(tasks)
    return all(
        demand_bound_function(tasks, t) <= t + 1e-9
        for t in testing_points(tasks, horizon)
    )


def edf_schedulable_with_blocking(tasks: TaskSet) -> bool:
    """Processor-demand criterion under floating-NPR EDF.

    At demand level ``t`` a job of any task with relative deadline
    larger than ``t`` may be inside a non-preemptive region, blocking the
    demand by up to its ``Q``.  The test becomes
    ``dbf(t) + B(t) <= t`` with ``B(t) = max { Q_i : D_i > t }``.

    Tasks without an assigned ``npr_length`` contribute no blocking.
    """
    if tasks.utilization > 1.0 + 1e-12:
        return False
    horizon = analysis_horizon(tasks)
    for t in testing_points(tasks, horizon):
        blocking = max(
            (
                task.npr_length
                for task in tasks
                if task.npr_length is not None and task.deadline > t
            ),
            default=0.0,
        )
        if demand_bound_function(tasks, t) + blocking > t + 1e-9:
            return False
    return True
