"""Response-time analysis for fixed-priority scheduling.

Classic Joseph–Pandya/Audsley recurrence, extended with a blocking term
for floating non-preemptive regions: a job of τ_i can be blocked once by
the longest NPR of any lower-priority task that was already running when
the job arrived.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require

#: Iteration cap for the fixpoint; reached only near U = 1 pathologies.
_MAX_ITERATIONS = 100_000


@dataclass(frozen=True, slots=True)
class ResponseTimeResult:
    """Per-task response times and the overall verdict.

    Attributes:
        response_times: Mapping task name -> response time (``math.inf``
            when the recurrence exceeds the deadline and is abandoned).
        schedulable: Whether every task meets its deadline.
    """

    response_times: dict[str, float]
    schedulable: bool


def _blocking_term(ordered: list[Task], index: int) -> float:
    """Longest NPR among strictly lower-priority tasks (0 if none set)."""
    return max(
        (
            t.npr_length
            for t in ordered[index + 1 :]
            if t.npr_length is not None
        ),
        default=0.0,
    )


def response_time(
    task: Task,
    higher_priority: list[Task],
    blocking: float = 0.0,
    execution_time: float | None = None,
    hp_execution_times: dict[str, float] | None = None,
    interference_inflation: dict[str, float] | None = None,
) -> float:
    """Fixpoint of ``R = C + B + sum_j ceil(R / T_j) * (C_j + gamma_j)``.

    Args:
        task: The analysed task.
        higher_priority: Tasks that can preempt it.
        blocking: Blocking term ``B`` (e.g. longest lower-priority NPR).
        execution_time: Override for ``C`` (e.g. the delay-inflated
            ``C'``); defaults to ``task.wcet``.
        hp_execution_times: Per-preemptor execution-time overrides.
            When the analysis inflates WCETs for preemption delay, the
            *interference* must use the inflated values too — a
            higher-priority job's own reload work also occupies the
            processor inside this task's window.
        interference_inflation: Optional per-preemptor surcharge
            ``gamma_j`` added to each higher-priority job's cost (the
            Busquets/Petters-style CRPD accounting).

    Returns:
        The response time, or ``math.inf`` when the recurrence diverges
        past the deadline (the caller treats that as a deadline miss).
    """
    c = execution_time if execution_time is not None else task.wcet
    require(c > 0, f"{task.name}: execution time must be > 0")
    hp_times = hp_execution_times or {}
    hp_costs = [
        (hp, hp_times.get(hp.name, hp.wcet)) for hp in higher_priority
    ]
    if (
        not math.isfinite(c)
        or not math.isfinite(blocking)
        or any(not math.isfinite(cost) for _, cost in hp_costs)
    ):
        # A diverged delay bound (C' = inf) can never meet a deadline.
        return math.inf
    gamma = interference_inflation or {}
    r = c + blocking
    for _ in range(_MAX_ITERATIONS):
        interference = sum(
            math.ceil(r / hp.period) * (cost + gamma.get(hp.name, 0.0))
            for hp, cost in hp_costs
        )
        updated = c + blocking + interference
        if updated == r:
            return r
        if updated > task.deadline:
            return math.inf
        r = updated
    return math.inf


def rta_fixed_priority(
    tasks: TaskSet,
    execution_times: dict[str, float] | None = None,
    interference_inflation: (
        dict[str, dict[str, float]] | None
    ) = None,
    include_npr_blocking: bool = True,
) -> ResponseTimeResult:
    """Response-time analysis of a whole fixed-priority task set.

    Args:
        tasks: Task set with priorities assigned.
        execution_times: Optional per-task ``C`` overrides (inflated
            WCETs from the delay analyses).
        interference_inflation: Optional nested mapping
            ``{task: {preemptor: gamma}}``.
        include_npr_blocking: Account for lower-priority NPR blocking.

    Returns:
        A :class:`ResponseTimeResult`.
    """
    ordered = list(tasks.sorted_by_priority())
    execution_times = execution_times or {}
    interference_inflation = interference_inflation or {}
    response_times: dict[str, float] = {}
    schedulable = True
    for i, task in enumerate(ordered):
        blocking = _blocking_term(ordered, i) if include_npr_blocking else 0.0
        r = response_time(
            task,
            ordered[:i],
            blocking=blocking,
            execution_time=execution_times.get(task.name),
            hp_execution_times=execution_times,
            interference_inflation=interference_inflation.get(task.name),
        )
        response_times[task.name] = r
        if not (r <= task.deadline):
            schedulable = False
    return ResponseTimeResult(
        response_times=response_times, schedulable=schedulable
    )
