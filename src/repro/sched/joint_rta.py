"""Joint fixpoint of response time and preemption count (extension).

Algorithm 1 assumes a preemption every ``Q_i`` units forever; the
paper's future-work item (ii) notes the higher-priority release pattern
caps the count.  But the cap itself depends on the response time (more
releases fit in a longer window), and the response time depends on the
inflated WCET, which depends on the cap.  This module iterates the
three-way fixpoint::

    cap(R)   = sum_j ceil(R / T_j)                (releases in the window)
    C'(cap)  = C + Algorithm1(f, Q, max_preemptions=cap)
    R(C')    = C' + B + sum_j ceil(R / T_j) * C_j

starting from the deadline-window cap and shrinking monotonically.  The
result dominates neither plain Algorithm 1 inflation nor the pure
release-based cap — it is the tightest of the family, and is validated
against both in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.floating_npr import floating_npr_delay_bound
from repro.sched.rta import response_time
from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require

_MAX_OUTER_ITERATIONS = 1000


@dataclass(frozen=True, slots=True)
class JointRtaResult:
    """Per-task outcome of the joint analysis.

    Attributes:
        response_times: Final response time per task (``inf`` = miss).
        inflated_wcets: Final ``C'_i`` per task.
        preemption_caps: Final preemption cap per task (``None`` when the
            task has no delay function / NPR and was not inflated).
        schedulable: Whether every task meets its deadline.
    """

    response_times: dict[str, float]
    inflated_wcets: dict[str, float]
    preemption_caps: dict[str, int | None]
    schedulable: bool


def _release_cap(task: Task, higher_priority: list[Task], window: float) -> int:
    """Releases of higher-priority tasks within ``window``."""
    if not math.isfinite(window):
        return 0  # unused: infinite response is already a miss
    return sum(math.ceil(window / hp.period) for hp in higher_priority)


def joint_rta(tasks: TaskSet, include_npr_blocking: bool = True) -> JointRtaResult:
    """Run the joint response-time / preemption-cap fixpoint.

    Args:
        tasks: Fixed-priority task set; tasks with both ``npr_length``
            and ``delay_function`` get the capped inflation, others keep
            their plain WCET.
        include_npr_blocking: Account for lower-priority NPR blocking.

    Returns:
        The per-task fixpoint results.
    """
    ordered = list(tasks.sorted_by_priority())
    response_times: dict[str, float] = {}
    inflated: dict[str, float] = {}
    caps: dict[str, int | None] = {}
    schedulable = True

    for i, task in enumerate(ordered):
        higher = ordered[:i]
        blocking = 0.0
        if include_npr_blocking:
            blocking = max(
                (
                    t.npr_length
                    for t in ordered[i + 1 :]
                    if t.npr_length is not None
                ),
                default=0.0,
            )

        if task.delay_function is None or task.npr_length is None:
            r = response_time(
                task,
                higher,
                blocking=blocking,
                hp_execution_times=inflated,
            )
            response_times[task.name] = r
            inflated[task.name] = task.wcet
            caps[task.name] = None
            if not (r <= task.deadline):
                schedulable = False
            continue

        # Start from the deadline-window cap (valid for any schedulable
        # run) and iterate: the cap shrinks or stays as R shrinks below
        # D, so the sequence is monotone and terminates.
        cap = _release_cap(task, higher, task.deadline)
        r_final = math.inf
        c_final = math.inf
        for _ in range(_MAX_OUTER_ITERATIONS):
            bound = floating_npr_delay_bound(
                task.delay_function, task.npr_length, max_preemptions=cap
            )
            if not bound.converged:
                break
            c_prime = bound.inflated_wcet
            r = response_time(
                task,
                higher,
                blocking=blocking,
                execution_time=c_prime,
                hp_execution_times=inflated,
            )
            if not (r <= task.deadline):
                # Even with this (already minimal-window) cap the task
                # misses; the deadline-window cap is the ceiling, so
                # declare a miss.
                r_final, c_final = math.inf, c_prime
                break
            new_cap = _release_cap(task, higher, r)
            r_final, c_final = r, c_prime
            if new_cap >= cap:
                break  # fixpoint (cap can only shrink below the start)
            cap = new_cap

        response_times[task.name] = r_final
        inflated[task.name] = c_final
        caps[task.name] = cap
        if not (r_final <= task.deadline):
            schedulable = False

    return JointRtaResult(
        response_times=response_times,
        inflated_wcets=inflated,
        preemption_caps=caps,
        schedulable=schedulable,
    )


def compare_with_uncapped(tasks: TaskSet) -> dict[str, tuple[float, float]]:
    """Per-task (uncapped C', joint C') — the joint fixpoint never loses.

    Returns:
        Mapping task name -> (plain Algorithm 1 inflation, joint
        inflation); the second component is <= the first whenever both
        are finite.
    """
    joint = joint_rta(tasks)
    result: dict[str, tuple[float, float]] = {}
    for task in tasks:
        if task.delay_function is None or task.npr_length is None:
            continue
        uncapped = floating_npr_delay_bound(
            task.delay_function, task.npr_length
        ).inflated_wcet
        result[task.name] = (uncapped, joint.inflated_wcets[task.name])
        require(
            not (
                math.isfinite(uncapped)
                and math.isfinite(joint.inflated_wcets[task.name])
            )
            or joint.inflated_wcets[task.name] <= uncapped + 1e-9,
            f"joint inflation exceeded uncapped for {task.name}",
        )
    return result
