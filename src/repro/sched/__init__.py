"""Schedulability analyses (substrate S9).

Demand-bound functions and the EDF processor-demand criterion (with and
without NPR blocking), fixed-priority response-time analysis with NPR
blocking, and the family of delay-aware RTA baselines the paper's
related-work section surveys (Busquets, Petters) next to the Eq. 4 and
Algorithm 1 inflation tests.
"""

from repro.sched.crpd_rta import (
    METHODS,
    DelayAwareResult,
    acceptance_ratio,
    delay_aware_rta,
)
from repro.sched.dbf import (
    analysis_horizon,
    demand_bound_function,
    edf_schedulable,
    edf_schedulable_with_blocking,
    task_demand,
    testing_points,
)
from repro.sched.edf_delay_aware import (
    EDF_METHODS,
    EdfDelayAwareResult,
    edf_acceptance_ratio,
    edf_delay_aware,
    edf_delay_aware_verdicts,
)
from repro.sched.joint_rta import (
    JointRtaResult,
    compare_with_uncapped,
    joint_rta,
)
from repro.sched.rta import (
    ResponseTimeResult,
    response_time,
    rta_fixed_priority,
)
from repro.sched.rta_arbitrary import (
    ArbitraryDeadlineResult,
    rta_arbitrary_deadline,
)

__all__ = [
    "task_demand",
    "demand_bound_function",
    "testing_points",
    "analysis_horizon",
    "edf_schedulable",
    "edf_schedulable_with_blocking",
    "ResponseTimeResult",
    "response_time",
    "rta_fixed_priority",
    "METHODS",
    "DelayAwareResult",
    "delay_aware_rta",
    "acceptance_ratio",
    "EDF_METHODS",
    "EdfDelayAwareResult",
    "edf_delay_aware",
    "edf_delay_aware_verdicts",
    "edf_acceptance_ratio",
    "JointRtaResult",
    "joint_rta",
    "compare_with_uncapped",
    "ArbitraryDeadlineResult",
    "rta_arbitrary_deadline",
]
