"""Delay-aware EDF schedulability under floating NPRs.

The FP delay-aware tests (:mod:`repro.sched.crpd_rta`) have a natural
EDF counterpart: inflate every ``C_i`` to ``C'_i`` using a cumulative
floating-NPR delay bound, then run the processor-demand criterion with
NPR blocking (``dbf(t) + B(t) <= t``).  The paper supports both FP [11]
and EDF [2] (Section III); this module closes the EDF side of the loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.floating_npr import floating_npr_delay_bound
from repro.core.state_of_the_art import state_of_the_art_delay_bound
from repro.sched.dbf import edf_schedulable_with_blocking
from repro.tasks.task import TaskSet
from repro.utils.checks import require

#: EDF test flavours.
EDF_METHODS = ("oblivious", "eq4", "algorithm1")


@dataclass(frozen=True, slots=True)
class EdfDelayAwareResult:
    """Outcome of one EDF delay-aware test.

    Attributes:
        method: One of :data:`EDF_METHODS`.
        schedulable: Verdict of the blocking-aware demand criterion on
            the inflated task set.
        inflated_wcets: Per-task ``C'_i`` used.
    """

    method: str
    schedulable: bool
    inflated_wcets: dict[str, float]


def edf_delay_aware(
    tasks: TaskSet,
    method: str,
    delay_maxima: dict[str, float] | None = None,
) -> EdfDelayAwareResult:
    """Run one EDF delay-aware schedulability test.

    Args:
        tasks: Task set with ``npr_length`` (and ``delay_function`` for
            the inflating methods) attached.
        method: ``"oblivious"``, ``"eq4"`` or ``"algorithm1"``.
        delay_maxima: Precomputed ``{task name: max f_i}`` for the Eq. 4
            recurrence (the shared-artifact context layer computes the
            maxima once per task set); values must equal
            ``f_i.max_value()`` exactly, missing names fall back to
            computing.

    Returns:
        The verdict plus the inflated WCETs it used.
    """
    require(
        method in EDF_METHODS,
        f"unknown method {method!r}; pick from {EDF_METHODS}",
    )
    inflated: dict[str, float] = {}
    for task in tasks:
        if (
            method == "oblivious"
            or task.delay_function is None
            or task.npr_length is None
        ):
            inflated[task.name] = task.wcet
            continue
        if method == "algorithm1":
            bound = floating_npr_delay_bound(
                task.delay_function, task.npr_length
            )
        else:
            bound = state_of_the_art_delay_bound(
                task.delay_function,
                task.npr_length,
                f_max=(
                    delay_maxima.get(task.name)
                    if delay_maxima is not None
                    else None
                ),
            )
        inflated[task.name] = bound.inflated_wcet

    if any(not math.isfinite(c) for c in inflated.values()):
        return EdfDelayAwareResult(
            method=method, schedulable=False, inflated_wcets=inflated
        )
    inflated_set = tasks.map(lambda t: t.with_wcet(inflated[t.name]))
    verdict = edf_schedulable_with_blocking(inflated_set)
    return EdfDelayAwareResult(
        method=method, schedulable=verdict, inflated_wcets=inflated
    )


def edf_delay_aware_verdicts(
    tasks: TaskSet,
    methods: tuple[str, ...] | list[str],
    delay_maxima: dict[str, float] | None = None,
) -> tuple[bool, ...]:
    """Run several EDF delay-aware tests; one verdict per method.

    The batched shape the engine's ``edf-study`` scenario family
    consumes: verdicts align with ``methods``; ``delay_maxima`` is
    threaded through to every test (see :func:`edf_delay_aware`).
    """
    require(len(methods) > 0, "need at least one method")
    return tuple(
        edf_delay_aware(tasks, method, delay_maxima=delay_maxima).schedulable
        for method in methods
    )


def edf_acceptance_ratio(task_sets: list[TaskSet], method: str) -> float:
    """Fraction of task sets accepted by the given EDF test."""
    require(bool(task_sets), "need at least one task set")
    accepted = sum(
        1 for ts in task_sets if edf_delay_aware(ts, method).schedulable
    )
    return accepted / len(task_sets)
