"""Delay-aware schedulability tests (paper, Sections II and VI context).

Four ways to fold preemption delay into fixed-priority RTA, from the
oblivious baseline to the paper's Algorithm 1:

* ``oblivious``   — ignore preemption delay entirely (unsafe; included
  as the optimistic reference).
* ``busquets``    — charge each higher-priority arrival the preempted
  task's *maximum* CRPD (Busquets-Mataix et al. [5]).
* ``petters``     — charge each higher-priority arrival the *damage that
  specific preemptor can cause* (Petters & Färber [1]); needs a damage
  matrix, e.g. from UCB ∩ ECB.
* ``eq4`` / ``algorithm1`` — inflate each ``C_i`` to ``C'_i`` with the
  respective cumulative floating-NPR bound and run plain RTA with NPR
  blocking; ``algorithm1`` is the paper's contribution and dominates
  ``eq4`` by Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.floating_npr import floating_npr_delay_bound
from repro.core.state_of_the_art import state_of_the_art_delay_bound
from repro.sched.rta import ResponseTimeResult, rta_fixed_priority
from repro.tasks.task import TaskSet
from repro.utils.checks import require

#: The delay-aware test flavours implemented by :func:`delay_aware_rta`.
METHODS = ("oblivious", "busquets", "petters", "eq4", "algorithm1")


@dataclass(frozen=True, slots=True)
class DelayAwareResult:
    """Outcome of one delay-aware schedulability test.

    Attributes:
        method: One of :data:`METHODS`.
        rta: The underlying response-time result.
        inflated_wcets: Per-task execution times used by the test.
    """

    method: str
    rta: ResponseTimeResult
    inflated_wcets: dict[str, float]

    @property
    def schedulable(self) -> bool:
        """Whether the test accepts the task set."""
        return self.rta.schedulable


def _max_delay_of(
    task, delay_maxima: dict[str, float] | None
) -> float:
    """``max f_i`` of one task, served from ``delay_maxima`` when given.

    The fallback computes ``max_value()`` on the spot, so a partial
    mapping is never wrong — only slower.
    """
    if task.delay_function is None:
        return 0.0
    if delay_maxima is not None and task.name in delay_maxima:
        return delay_maxima[task.name]
    return task.delay_function.max_value()


def _inflated_wcets(
    tasks: TaskSet,
    use_algorithm1: bool,
    delay_maxima: dict[str, float] | None = None,
) -> dict[str, float]:
    """``C'_i`` for every task from the chosen cumulative delay bound."""
    result: dict[str, float] = {}
    for task in tasks:
        if task.delay_function is None or task.npr_length is None:
            result[task.name] = task.wcet
            continue
        if use_algorithm1:
            bound = floating_npr_delay_bound(
                task.delay_function, task.npr_length
            )
        else:
            bound = state_of_the_art_delay_bound(
                task.delay_function,
                task.npr_length,
                f_max=(
                    delay_maxima.get(task.name)
                    if delay_maxima is not None
                    else None
                ),
            )
        result[task.name] = bound.inflated_wcet
    return result


def delay_aware_rta(
    tasks: TaskSet,
    method: str,
    damage_matrix: dict[str, dict[str, float]] | None = None,
    delay_maxima: dict[str, float] | None = None,
) -> DelayAwareResult:
    """Run one delay-aware schedulability test.

    Args:
        tasks: Fixed-priority task set (with ``f_i``/``Q_i`` attached for
            the methods that need them).
        method: One of :data:`METHODS`.
        damage_matrix: For ``petters``: ``{task: {preemptor: damage}}``;
            defaults to the Busquets-style maximum when missing.
        delay_maxima: Precomputed ``{task name: max f_i}``.  Every
            method except ``algorithm1`` reads ``f_i`` only through its
            global maximum, and the event-accounting methods read it
            O(n²) times per test — a sweep holding an
            :class:`repro.engine.context.AnalysisContext` computes the
            maxima once per task set and passes them here.  Values must
            equal ``f_i.max_value()`` exactly; missing names fall back
            to computing.

    Returns:
        The test outcome with the execution times it used.
    """
    require(method in METHODS, f"unknown method {method!r}; pick from {METHODS}")

    if method == "oblivious":
        wcets = {t.name: t.wcet for t in tasks}
        rta = rta_fixed_priority(tasks)
        return DelayAwareResult(method=method, rta=rta, inflated_wcets=wcets)

    if method in ("eq4", "algorithm1"):
        wcets = _inflated_wcets(
            tasks,
            use_algorithm1=(method == "algorithm1"),
            delay_maxima=delay_maxima,
        )
        rta = rta_fixed_priority(tasks, execution_times=wcets)
        return DelayAwareResult(method=method, rta=rta, inflated_wcets=wcets)

    # Preemption-event accounting (Busquets / Petters).  Each arrival of
    # a higher-priority task j inside tau_i's window causes at most one
    # preemption, whose victim is tau_i *or any intermediate-priority
    # task* — the charge must cover the worst victim, not only tau_i.
    ordered = list(tasks.sorted_by_priority())

    def max_crpd_of(task) -> float:
        return _max_delay_of(task, delay_maxima)

    inflation: dict[str, dict[str, float]] = {}
    for i, task in enumerate(ordered):
        per_preemptor: dict[str, float] = {}
        for j, hp in enumerate(ordered[:i]):
            victims = ordered[j + 1 : i + 1]  # between hp and tau_i incl.
            if method == "busquets":
                per_preemptor[hp.name] = max(
                    (max_crpd_of(v) for v in victims), default=0.0
                )
            else:  # petters: per-victim damage caused by this preemptor
                worst = 0.0
                for victim in victims:
                    damage = max_crpd_of(victim)
                    if damage_matrix and victim.name in damage_matrix:
                        damage = min(
                            damage_matrix[victim.name].get(hp.name, damage),
                            damage,
                        )
                    worst = max(worst, damage)
                per_preemptor[hp.name] = worst
        inflation[task.name] = per_preemptor
    wcets = {t.name: t.wcet for t in tasks}
    rta = rta_fixed_priority(tasks, interference_inflation=inflation)
    return DelayAwareResult(method=method, rta=rta, inflated_wcets=wcets)


def acceptance_ratio(
    task_sets: list[TaskSet],
    method: str,
    damage_matrix: dict[str, dict[str, float]] | None = None,
) -> float:
    """Fraction of task sets accepted by the given test."""
    require(bool(task_sets), "need at least one task set")
    accepted = sum(
        1
        for ts in task_sets
        if delay_aware_rta(ts, method, damage_matrix).schedulable
    )
    return accepted / len(task_sets)
