"""Synthetic task-set generation (UUniFast and friends).

Standard machinery for schedulability studies: UUniFast draws ``n``
utilizations summing exactly to ``U``; periods come from a log-uniform
range (the conventional choice, giving equal weight to each order of
magnitude); deadlines are implicit or constrained.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable

from repro.core.delay_function import PreemptionDelayFunction
from repro.tasks.task import Task, TaskSet
from repro.utils.checks import require, require_positive


def uunifast(n: int, total_utilization: float, rng: random.Random) -> list[float]:
    """UUniFast: ``n`` utilizations summing to ``total_utilization``.

    Bini & Buttazzo's algorithm draws uniformly from the simplex of
    utilization vectors.

    Args:
        n: Number of tasks (> 0).
        total_utilization: Target sum (> 0).
        rng: Seeded random source.
    """
    require(n > 0, f"n must be > 0, got {n}")
    require_positive(total_utilization, "total_utilization")
    utilizations: list[float] = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    n: int,
    total_utilization: float,
    rng: random.Random,
    cap: float = 1.0,
    max_attempts: int = 10_000,
) -> list[float]:
    """UUniFast rejecting vectors with any per-task utilization above ``cap``.

    Needed when ``total_utilization`` may exceed 1 (multiprocessor-style
    draws) or when heavy single tasks must be excluded.
    """
    for _ in range(max_attempts):
        candidate = uunifast(n, total_utilization, rng)
        if all(u <= cap for u in candidate):
            return candidate
    raise ValueError(
        f"could not draw {n} utilizations summing to {total_utilization} "
        f"with per-task cap {cap} in {max_attempts} attempts"
    )


def log_uniform_period(
    rng: random.Random, low: float = 10.0, high: float = 1000.0
) -> float:
    """A period drawn log-uniformly from ``[low, high]``."""
    require(0 < low < high, f"need 0 < low < high, got [{low}, {high}]")
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def generate_task_set(
    n: int,
    total_utilization: float,
    seed: int,
    period_range: tuple[float, float] = (10.0, 1000.0),
    deadline_style: str = "implicit",
    delay_function_factory: (
        Callable[[Task, random.Random], PreemptionDelayFunction] | None
    ) = None,
) -> TaskSet:
    """Generate a complete sporadic task set.

    Args:
        n: Number of tasks.
        total_utilization: Target total utilization.
        seed: RNG seed (same seed -> same task set).
        period_range: Log-uniform period range.
        deadline_style: ``"implicit"`` (D = T) or ``"constrained"``
            (D drawn uniformly from [C, T]).
        delay_function_factory: Optional callback attaching an ``f_i`` to
            each task.

    Returns:
        The generated :class:`~repro.tasks.TaskSet`.
    """
    require(
        deadline_style in ("implicit", "constrained"),
        f"unknown deadline_style {deadline_style!r}",
    )
    rng = random.Random(seed)
    utilizations = uunifast_discard(n, total_utilization, rng)
    tasks: list[Task] = []
    for i, u in enumerate(utilizations):
        period = log_uniform_period(rng, *period_range)
        wcet = max(u * period, 1e-6)
        if deadline_style == "implicit":
            deadline = period
        else:
            deadline = rng.uniform(wcet, period)
        task = Task(
            name=f"tau{i + 1}",
            wcet=wcet,
            period=period,
            deadline=deadline,
        )
        if delay_function_factory is not None:
            task = task.with_delay_function(delay_function_factory(task, rng))
        tasks.append(task)
    return TaskSet(tasks)


def gaussian_delay_factory(
    peak_fraction: float = 0.5,
    relative_width: float = 0.1,
    relative_height: float = 0.05,
    knots: int = 256,
) -> Callable[[Task, random.Random], PreemptionDelayFunction]:
    """Factory producing bell-shaped ``f_i`` scaled to each task.

    The peak sits at ``peak_fraction * C_i`` (jittered), has standard
    deviation ``relative_width * C_i`` and height
    ``relative_height * C_i`` — mirroring the paper's synthetic
    benchmark functions, but per-task.
    """
    require(0.0 < peak_fraction < 1.0, "peak_fraction must lie in (0, 1)")
    require_positive(relative_width, "relative_width")
    require_positive(relative_height, "relative_height")

    def factory(task: Task, rng: random.Random) -> PreemptionDelayFunction:
        c = task.wcet
        mu = c * min(max(rng.gauss(peak_fraction, 0.1), 0.05), 0.95)
        sigma = relative_width * c
        height = relative_height * c

        def bell(t: float) -> float:
            return height * math.exp(-((t - mu) ** 2) / (2.0 * sigma**2))

        from repro.piecewise import unimodal_upper_step

        return PreemptionDelayFunction(
            unimodal_upper_step(bell, peak=mu, lo=0.0, hi=c, knots=knots)
        )

    return factory
