"""Task model and synthetic task-set generation (substrate S7)."""

from repro.tasks.generation import (
    gaussian_delay_factory,
    generate_task_set,
    log_uniform_period,
    uunifast,
    uunifast_discard,
)
from repro.tasks.task import Task, TaskSet

__all__ = [
    "Task",
    "TaskSet",
    "uunifast",
    "uunifast_discard",
    "log_uniform_period",
    "generate_task_set",
    "gaussian_delay_factory",
]
