"""Task model and synthetic task-set generation (substrate S7).

:class:`Task` carries the paper's per-task parameters (WCET, period,
NPR length ``Q_i``, delay function ``f_i``); :class:`TaskSet` adds
priority ordering.  Generation follows the standard evaluation recipe —
UUniFast utilizations, log-uniform periods, synthetic Gaussian delay
functions — with explicit seeds so studies and the batch engine's
scenario workers are reproducible.
"""

from repro.tasks.generation import (
    gaussian_delay_factory,
    generate_task_set,
    log_uniform_period,
    uunifast,
    uunifast_discard,
)
from repro.tasks.task import Task, TaskSet

__all__ = [
    "Task",
    "TaskSet",
    "uunifast",
    "uunifast_discard",
    "log_uniform_period",
    "generate_task_set",
    "gaussian_delay_factory",
]
