"""Sporadic task model (paper, Section III).

A task τ_i is characterised by its WCET ``C_i``, minimum inter-arrival
time ``T_i``, relative deadline ``D_i``, floating-NPR length ``Q_i`` and —
the paper's key addition — a preemption-delay function ``f_i`` over its
progression axis ``[0, C_i]``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace

from repro.core.delay_function import PreemptionDelayFunction
from repro.utils.checks import require, require_positive


@dataclass(frozen=True)
class Task:
    """One sporadic task.

    Attributes:
        name: Unique identifier.
        wcet: Worst-case execution time ``C_i`` (> 0), *excluding*
            preemption delay.
        period: Minimum inter-arrival time ``T_i`` (> 0).
        deadline: Relative deadline ``D_i`` (> 0); defaults to the period
            (implicit deadlines).
        npr_length: Floating non-preemptive region length ``Q_i``
            (``None`` until assigned, e.g. by :mod:`repro.npr`).
        delay_function: ``f_i``; ``None`` for delay-oblivious analyses.
        priority: Fixed priority (smaller = more important); ``None``
            under EDF.
    """

    name: str
    wcet: float
    period: float
    deadline: float | None = None
    npr_length: float | None = None
    delay_function: PreemptionDelayFunction | None = None
    priority: int | None = None

    def __post_init__(self) -> None:
        require(bool(self.name), "task needs a non-empty name")
        require_positive(self.wcet, f"{self.name}.wcet")
        require_positive(self.period, f"{self.name}.period")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        require_positive(self.deadline, f"{self.name}.deadline")
        if self.npr_length is not None:
            require_positive(self.npr_length, f"{self.name}.npr_length")
        if self.delay_function is not None:
            require(
                abs(self.delay_function.wcet - self.wcet) < 1e-9,
                f"{self.name}: delay function domain "
                f"[0, {self.delay_function.wcet}] must match wcet {self.wcet}",
            )

    @property
    def utilization(self) -> float:
        """``C_i / T_i``."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """``C_i / min(D_i, T_i)``."""
        return self.wcet / min(self.deadline, self.period)

    def with_npr_length(self, q: float) -> "Task":
        """A copy with the floating-NPR length set."""
        return replace(self, npr_length=q)

    def with_delay_function(self, f: PreemptionDelayFunction) -> "Task":
        """A copy with the preemption-delay function attached."""
        return replace(self, delay_function=f)

    def with_priority(self, priority: int) -> "Task":
        """A copy with a fixed priority assigned."""
        return replace(self, priority=priority)

    def with_wcet(self, wcet: float) -> "Task":
        """A copy with a different WCET (drops a mismatched ``f_i``)."""
        f = self.delay_function
        if f is not None and abs(f.wcet - wcet) >= 1e-9:
            f = None
        return replace(self, wcet=wcet, delay_function=f)


class TaskSet:
    """An ordered collection of tasks with unique names."""

    __slots__ = ("_tasks",)

    def __init__(self, tasks: Iterable[Task]):
        items = tuple(tasks)
        require(len(items) > 0, "a task set needs at least one task")
        names = [t.name for t in items]
        require(len(set(names)) == len(names), f"duplicate task names in {names}")
        self._tasks = items

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __repr__(self) -> str:
        return (
            f"TaskSet({len(self._tasks)} tasks, U={self.utilization:.3f})"
        )

    def task(self, name: str) -> Task:
        """The task called ``name``."""
        for t in self._tasks:
            if t.name == name:
                return t
        raise ValueError(f"no task named {name!r}")

    @property
    def utilization(self) -> float:
        """Total utilization ``sum C_i / T_i``."""
        return sum(t.utilization for t in self._tasks)

    # ------------------------------------------------------------------
    # Orderings and priority assignments
    # ------------------------------------------------------------------
    def sorted_by_deadline(self) -> "TaskSet":
        """Tasks ordered by relative deadline (EDF analyses expect this)."""
        return TaskSet(sorted(self._tasks, key=lambda t: (t.deadline, t.name)))

    def sorted_by_priority(self) -> "TaskSet":
        """Tasks ordered by fixed priority (highest first).

        Raises:
            ValueError: when some task has no priority.
        """
        require(
            all(t.priority is not None for t in self._tasks),
            "all tasks need priorities; use rate_monotonic()/deadline_monotonic()",
        )
        return TaskSet(sorted(self._tasks, key=lambda t: (t.priority, t.name)))

    def rate_monotonic(self) -> "TaskSet":
        """Assign rate-monotonic priorities (shorter period = higher)."""
        ordered = sorted(self._tasks, key=lambda t: (t.period, t.name))
        return TaskSet(
            t.with_priority(i + 1) for i, t in enumerate(ordered)
        )

    def deadline_monotonic(self) -> "TaskSet":
        """Assign deadline-monotonic priorities (shorter deadline = higher)."""
        ordered = sorted(self._tasks, key=lambda t: (t.deadline, t.name))
        return TaskSet(
            t.with_priority(i + 1) for i, t in enumerate(ordered)
        )

    def map(self, fn) -> "TaskSet":
        """A new task set with ``fn`` applied to every task."""
        return TaskSet(fn(t) for t in self._tasks)
