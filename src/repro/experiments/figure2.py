"""FIG2: executable counterexample to the naive point-selection bound.

The paper's Figure 2 argues that picking the best set of preemption
points pairwise >= Q apart *on the progression axis* under-counts: paying
delay consumes wall time without advancing progression, so a real run
squeezes preemptions closer together (on that axis) than Q.

This module constructs a concrete instance — a wide tall plateau — where

* the naive packing admits only ``ceil(plateau / Q)``-ish points, but
* a simulated saturating run is preempted every ``Q - delay`` of
  progression, accumulating strictly more delay than the naive "bound",
* while Algorithm 1's bound still dominates the run (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delay_function import PreemptionDelayFunction
from repro.core.floating_npr import floating_npr_delay_bound
from repro.core.naive import naive_point_selection_bound
from repro.sim.release import saturating_releases
from repro.sim.simulator import FloatingNPRSimulator
from repro.tasks.task import Task, TaskSet


@dataclass(frozen=True, slots=True)
class Figure2Demo:
    """Outcome of the counterexample run.

    Attributes:
        naive_bound: The unsound packing total.
        simulated_delay: Delay accumulated by the simulated job.
        algorithm1_bound: Theorem 1 bound (must dominate the run).
        preemptions: Number of preemptions in the simulated run.
        q: NPR length used.
    """

    naive_bound: float
    simulated_delay: float
    algorithm1_bound: float
    preemptions: int
    q: float

    @property
    def naive_is_violated(self) -> bool:
        """Whether the run exceeded the naive bound (the paper's point)."""
        return self.simulated_delay > self.naive_bound + 1e-9

    @property
    def algorithm1_is_safe(self) -> bool:
        """Whether Algorithm 1's bound covered the run (Theorem 1)."""
        return self.simulated_delay <= self.algorithm1_bound + 1e-9


def build_figure2_function(
    wcet: float = 400.0,
    plateau: tuple[float, float] = (110.0, 390.0),
    height: float = 60.0,
) -> PreemptionDelayFunction:
    """The counterexample ``f``: zero except a tall plateau."""
    lo, hi = plateau
    bounds = [0.0, lo, hi, wcet] if hi < wcet else [0.0, lo, wcet]
    values = [0.0, height, 0.0] if hi < wcet else [0.0, height]
    return PreemptionDelayFunction.from_step(bounds, values)


def run_figure2_demo(
    q: float = 100.0,
    wcet: float = 400.0,
    height: float = 60.0,
    interferer_wcet: float = 0.5,
) -> Figure2Demo:
    """Build the instance, run the saturating adversary, compare bounds.

    Args:
        q: NPR length of the target task (> height, so nothing diverges).
        wcet: Target WCET.
        height: Plateau height (the per-preemption delay on the plateau).
        interferer_wcet: Execution time of the preempting task.

    Returns:
        The three-way comparison; ``naive_is_violated`` is ``True`` for
        the default parameters, reproducing the paper's argument.
    """
    f = build_figure2_function(wcet=wcet, height=height)
    naive = naive_point_selection_bound(f, q, grid_step=1.0)
    alg1 = floating_npr_delay_bound(f, q)

    target = Task(
        "target",
        wcet,
        10_000.0,
        npr_length=q,
        delay_function=f,
    )
    interferer = Task("interferer", interferer_wcet, 10_000.0)
    tasks = TaskSet([target, interferer]).rate_monotonic()
    horizon = 6.0 * wcet
    releases = saturating_releases(
        "target",
        "interferer",
        target_release=0.0,
        target_q=q,
        horizon=horizon,
        interferer_cost=interferer_wcet,
        spacing_slack=0.01,
    )
    sim = FloatingNPRSimulator(tasks, policy="fp")
    result = sim.run(releases, horizon)
    job = result.jobs_of("target")[0]
    return Figure2Demo(
        naive_bound=naive.total_delay,
        simulated_delay=job.total_delay,
        algorithm1_bound=alg1.total_delay,
        preemptions=len(job.delays_charged),
        q=q,
    )
