"""CSV output helpers for the experiment harness."""

from __future__ import annotations

import csv
import os
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.utils.checks import require

#: Environment variable overriding the results directory.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def results_dir() -> Path:
    """The directory experiment CSVs are written to.

    Defaults to ``./results`` relative to the current working directory;
    override with the ``REPRO_RESULTS_DIR`` environment variable.  The
    directory is created on demand.
    """
    root = Path(os.environ.get(RESULTS_DIR_ENV, "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_csv(
    filename: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    directory: Path | None = None,
) -> Path:
    """Write rows to ``<results_dir>/<filename>``.

    Args:
        filename: Target file name (must end in ``.csv``).
        headers: Column names.
        rows: Row tuples (same arity as ``headers``).
        directory: Override the results directory.

    Returns:
        The written file path.
    """
    require(filename.endswith(".csv"), f"expected a .csv filename, got {filename!r}")
    target = (directory or results_dir()) / filename
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            require(
                len(row) == len(headers),
                f"row arity {len(row)} != header arity {len(headers)}",
            )
            writer.writerow(row)
    return target
