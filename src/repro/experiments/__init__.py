"""Experiment harness (substrate S11): every figure of the paper plus the
extension studies (see ``docs/paper_mapping.md`` for the figure/equation
index).  Sweep-shaped experiments route through :mod:`repro.engine`, so
they accept ``max_workers`` for pooled execution with bit-identical
results."""

from repro.experiments.ablations import (
    CapPoint,
    ResolutionPoint,
    improvement_summary,
    interpretation_sweep,
    knot_resolution_sweep,
    preemption_cap_sweep,
)
from repro.experiments.ascii import line_plot, render_table
from repro.experiments.fig4 import Fig4Data, generate_fig4, write_fig4_csv
from repro.experiments.fig5 import (
    Fig5Data,
    Fig5Row,
    default_q_grid,
    fig5_campaign_spec,
    fig5_data_from_results,
    generate_fig5,
    write_fig5_csv,
)
from repro.experiments.figure2 import (
    Figure2Demo,
    build_figure2_function,
    run_figure2_demo,
)
from repro.experiments.functions_fig4 import (
    FIG4_MAX,
    FIG4_NAMES,
    FIG4_WCET,
    INTERPRETATIONS,
    fig4_delay_function,
    fig4_functions,
    gaussian,
)
from repro.experiments.io import results_dir, write_csv
from repro.experiments.runner import ReproductionSummary, generate_all
from repro.experiments.schedulability_study import (
    STUDY_METHODS,
    STUDY_UTILIZATIONS,
    StudyPoint,
    acceptance_study,
    fold_study_points,
    reference_study_scenarios,
    study_campaign_spec,
    study_scenarios,
    study_series,
)

__all__ = [
    "gaussian",
    "fig4_delay_function",
    "fig4_functions",
    "FIG4_NAMES",
    "FIG4_MAX",
    "FIG4_WCET",
    "INTERPRETATIONS",
    "Fig4Data",
    "generate_fig4",
    "write_fig4_csv",
    "Fig5Data",
    "Fig5Row",
    "default_q_grid",
    "fig5_campaign_spec",
    "fig5_data_from_results",
    "generate_fig5",
    "write_fig5_csv",
    "Figure2Demo",
    "build_figure2_function",
    "run_figure2_demo",
    "interpretation_sweep",
    "knot_resolution_sweep",
    "preemption_cap_sweep",
    "improvement_summary",
    "ResolutionPoint",
    "CapPoint",
    "StudyPoint",
    "STUDY_METHODS",
    "STUDY_UTILIZATIONS",
    "acceptance_study",
    "fold_study_points",
    "reference_study_scenarios",
    "study_campaign_spec",
    "study_scenarios",
    "study_series",
    "line_plot",
    "render_table",
    "results_dir",
    "write_csv",
    "ReproductionSummary",
    "generate_all",
]
