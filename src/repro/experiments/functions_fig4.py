"""The paper's synthetic benchmark delay functions (Section VI, Figure 4).

Three functions over ``C = 4000`` with maximum value 10:

* **Gaussian 1** — bell with ``sigma^2 = 300``, ``mu = 2000``;
* **Gaussian 2** — bell with ``sigma^2 = 3000``, same mean;
* **2 local maximum** — two bells separated in time.

The paper's parameter list is internally inconsistent (it gives
Gaussian 1 "a vertical offset of 10 units" *and* says all functions share
maximum value 10, while its Figure 5 shows all three curves well below
the shape-oblivious state of the art — impossible with a floor of 10).
We therefore implement the two load-bearing properties (shared max 10,
shared C = 4000) in the default ``"literal"`` interpretation and expose
the other readings as explicit ablation interpretations:

* ``"literal"``   — ``sigma^2`` taken literally, no offset (default);
* ``"sigma"``     — the printed values treated as ``sigma`` instead;
* ``"offset10"``  — Gaussian 1 given a high floor, rescaled to max 10.

All functions are built as *exact piecewise-constant upper bounds* of the
closed forms (:func:`repro.piecewise.unimodal_upper_step`), so every
bound computed from them is safe with respect to the true curves.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.core.delay_function import PreemptionDelayFunction
from repro.piecewise import max_envelope, unimodal_upper_step
from repro.utils.checks import require

#: The paper's common parameters (Section VI).
FIG4_WCET = 4000.0
FIG4_MAX = 10.0

#: Names of the three benchmark functions, in the paper's order.
FIG4_NAMES = ("gaussian1", "gaussian2", "bimodal")

#: Supported parameter interpretations (see module docstring).
INTERPRETATIONS = ("literal", "sigma", "offset10")


def gaussian(
    mu: float, sigma2: float, amplitude: float, offset: float = 0.0
) -> Callable[[float], float]:
    """The closed-form bell ``offset + amplitude * exp(-(t-mu)^2 / (2 sigma^2))``."""
    require(sigma2 > 0, f"sigma^2 must be positive, got {sigma2}")
    return lambda t: offset + amplitude * math.exp(
        -((t - mu) ** 2) / (2.0 * sigma2)
    )


def _bell_function(
    mu: float,
    sigma2: float,
    amplitude: float,
    offset: float,
    knots: int,
    wcet: float,
) -> PreemptionDelayFunction:
    fn = gaussian(mu, sigma2, amplitude, offset)
    return PreemptionDelayFunction(
        unimodal_upper_step(fn, peak=mu, lo=0.0, hi=wcet, knots=knots)
    )


def fig4_delay_function(
    name: str,
    interpretation: str = "literal",
    knots: int = 2048,
    wcet: float = FIG4_WCET,
) -> PreemptionDelayFunction:
    """Build one of the paper's three benchmark functions.

    Args:
        name: ``"gaussian1"``, ``"gaussian2"`` or ``"bimodal"``.
        interpretation: One of :data:`INTERPRETATIONS`.
        knots: Piecewise-constant resolution.
        wcet: Domain length (the paper's ``C = 4000``).

    Returns:
        The delay function, with maximum value exactly :data:`FIG4_MAX`.
    """
    require(name in FIG4_NAMES, f"unknown function {name!r}; pick from {FIG4_NAMES}")
    require(
        interpretation in INTERPRETATIONS,
        f"unknown interpretation {interpretation!r}; pick from {INTERPRETATIONS}",
    )
    mid = wcet / 2.0

    if interpretation == "sigma":
        s1, s2 = 300.0**2, 3000.0**2
    else:
        s1, s2 = 300.0, 3000.0

    if name == "gaussian1":
        if interpretation == "offset10":
            # High floor reading, rescaled so the max stays at 10: floor
            # 10 and amplitude 10 would peak at 20, so halve both.
            return _bell_function(mid, s1, FIG4_MAX / 2, FIG4_MAX / 2, knots, wcet)
        return _bell_function(mid, s1, FIG4_MAX, 0.0, knots, wcet)

    if name == "gaussian2":
        return _bell_function(mid, s2, FIG4_MAX, 0.0, knots, wcet)

    # "2 local maximum": two bells separated in time; the global max is
    # FIG4_MAX (left peak), the right peak is lower so both are genuine
    # local maxima.
    left = _bell_function(0.3 * wcet, s2, FIG4_MAX, 0.0, knots, wcet)
    right = _bell_function(0.7 * wcet, s2, 0.8 * FIG4_MAX, 0.0, knots, wcet)
    return PreemptionDelayFunction(
        max_envelope(left.function, right.function)
    )


def fig4_functions(
    interpretation: str = "literal",
    knots: int = 2048,
    wcet: float = FIG4_WCET,
) -> dict[str, PreemptionDelayFunction]:
    """All three benchmark functions keyed by name."""
    return {
        name: fig4_delay_function(name, interpretation, knots, wcet)
        for name in FIG4_NAMES
    }
