"""One-call regeneration of every paper artifact.

``generate_all()`` is the programmatic equivalent of running the whole
benchmark harness: it produces the Figure 4/5 CSVs, the Figure 2
counterexample, the Theorem 1 validation report and the schedulability
study, returning everything in a single summary object.  The CLI
(``python -m repro``) exposes the same pieces individually.  The sweep
stages (Figure 5, the study) route through :mod:`repro.engine`; pass
``max_workers`` to fan them out over a worker pool without changing any
artifact byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.fig4 import Fig4Data, generate_fig4, write_fig4_csv
from repro.experiments.fig5 import Fig5Data, generate_fig5, write_fig5_csv
from repro.experiments.figure2 import Figure2Demo, run_figure2_demo
from repro.experiments.schedulability_study import (
    StudyPoint,
    acceptance_study,
)
from repro.sim.validation import (
    ValidationReport,
    reference_validation_task_set,
    validation_campaign,
)


@dataclass(frozen=True, slots=True)
class ReproductionSummary:
    """Everything ``generate_all`` produced.

    Attributes:
        fig4: Sampled benchmark functions.
        fig5: The Q sweep.
        fig2: The naive-bound counterexample.
        validation: Theorem 1 fuzzing report.
        study: Schedulability acceptance curves.
        csv_paths: Files written under the results directory.
    """

    fig4: Fig4Data
    fig5: Fig5Data
    fig2: Figure2Demo
    validation: ValidationReport
    study: list[StudyPoint]
    csv_paths: tuple[Path, ...]

    @property
    def healthy(self) -> bool:
        """All headline checks in one boolean: Theorem 1 held, the naive
        bound was violated while Algorithm 1 stayed safe, and Algorithm 1
        never exceeded the Eq. 4 state of the art."""
        fig5_ok = all(
            value <= row.state_of_the_art + 1e-9
            for row in self.fig5.rows
            for value in row.algorithm1.values()
        )
        return (
            self.validation.passed
            and self.fig2.naive_is_violated
            and self.fig2.algorithm1_is_safe
            and fig5_ok
        )


def generate_all(
    knots: int = 1024,
    validation_seeds: int = 4,
    study_sets_per_point: int = 15,
    max_workers: int | None = None,
) -> ReproductionSummary:
    """Regenerate every figure and check; returns the combined summary.

    Args:
        knots: Resolution of the synthetic delay functions (lower = faster).
        validation_seeds: Fuzzing seeds for the Theorem 1 campaign.
        study_sets_per_point: Task sets per utilization level.
        max_workers: Batch-engine pool width for the Figure 5 sweep and
            the schedulability study (``None`` = inline; the artifacts
            are bit-identical for every setting).
    """
    fig4 = generate_fig4(knots=knots)
    fig5 = generate_fig5(knots=knots, max_workers=max_workers)
    paths = (write_fig4_csv(fig4), write_fig5_csv(fig5))
    fig2 = run_figure2_demo()
    validation = validation_campaign(
        reference_validation_task_set(q=120.0),
        policy="fp",
        seeds=range(validation_seeds),
        horizon=50_000.0,
    )
    study = acceptance_study(
        utilizations=[0.3, 0.6, 0.9],
        methods=["oblivious", "algorithm1", "eq4"],
        n_tasks=5,
        sets_per_point=study_sets_per_point,
        max_workers=max_workers,
    )
    return ReproductionSummary(
        fig4=fig4,
        fig5=fig5,
        fig2=fig2,
        validation=validation,
        study=study,
        csv_paths=paths,
    )
