"""FIG5: cumulative preemption-delay bounds versus Q (the paper's
headline evaluation).

For every Q in the sweep, compute Algorithm 1's bound for each of the
three benchmark functions plus the Eq. 4 state-of-the-art bound (which is
identical for all three, since they share ``C`` and ``max f`` — asserted
here rather than assumed).  The paper plots Q from near the divergence
threshold (``Q <= max f = 10`` diverges) up to ``C/2 = 2000`` with a
logarithmic delay axis.

The sweep is expressed as :class:`repro.engine.BoundScenario` batches and
evaluated by :func:`repro.engine.run_batch`; pass ``max_workers`` to fan
it out over a worker pool (results are bit-identical either way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.functions_fig4 import (
    FIG4_MAX,
    FIG4_NAMES,
    FIG4_WCET,
)
from repro.experiments.io import write_csv
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class Fig5Row:
    """One Q sample of the Figure 5 sweep.

    Attributes:
        q: The NPR length.
        algorithm1: Bound per benchmark function name.
        state_of_the_art: The (shared) Eq. 4 bound.
    """

    q: float
    algorithm1: dict[str, float]
    state_of_the_art: float


@dataclass(frozen=True, slots=True)
class Fig5Data:
    """The whole sweep."""

    rows: tuple[Fig5Row, ...]
    interpretation: str

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Plot-ready series: three Algorithm 1 curves + the SOA curve."""
        result: dict[str, list[tuple[float, float]]] = {
            name: [] for name in FIG4_NAMES
        }
        result["state_of_the_art"] = []
        for row in self.rows:
            for name in FIG4_NAMES:
                value = row.algorithm1[name]
                if math.isfinite(value):
                    result[name].append((row.q, value))
            if math.isfinite(row.state_of_the_art):
                result["state_of_the_art"].append(
                    (row.q, row.state_of_the_art)
                )
        return result

    def as_rows(self) -> list[tuple]:
        """CSV rows: ``q, alg1_gaussian1, alg1_gaussian2, alg1_bimodal, soa``."""
        return [
            (
                row.q,
                *(row.algorithm1[name] for name in FIG4_NAMES),
                row.state_of_the_art,
            )
            for row in self.rows
        ]


def default_q_grid(
    q_min: float = FIG4_MAX + 2.0,
    q_max: float = FIG4_WCET / 2.0,
    points: int = 40,
) -> list[float]:
    """Log-spaced Q grid from just above the divergence threshold to C/2."""
    require(0 < q_min < q_max, "need 0 < q_min < q_max")
    require(points >= 2, "need at least two points")
    ratio = (q_max / q_min) ** (1.0 / (points - 1))
    return [q_min * ratio**k for k in range(points)]


def fig5_campaign_spec(
    points: int = 40,
    knots: int = 2048,
    interpretation: str = "literal",
) -> dict:
    """The Figure 5 grid as a declarative campaign spec.

    ``repro.campaign.compile_campaign`` turns this spec into exactly
    the scenario stream of ``q_sweep_scenarios(default_q_grid(points),
    knots=knots)`` — same floats, same order, same store keys — so
    ``python -m repro campaign fig5`` is byte-identical to
    ``python -m repro sweep`` (asserted end-to-end in the CLI tests).

    Args:
        points: Q grid points (scenarios = 3x this).
        knots: Benchmark-function resolution.
        interpretation: Benchmark parameter interpretation.
    """
    return {
        "name": "fig5",
        "description": "Algorithm 1 vs Eq. 4 over the paper's Q grid",
        "family": "bound",
        "axes": {
            "q": {
                "logspace": {
                    "start": FIG4_MAX + 2.0,
                    "stop": FIG4_WCET / 2.0,
                    "points": points,
                }
            },
            "function": {"grid": list(FIG4_NAMES)},
        },
        "defaults": {"interpretation": interpretation, "knots": knots},
    }


def fig5_data_from_results(
    qs: list[float], results: list, interpretation: str = "literal"
) -> Fig5Data:
    """Pivot q-major :class:`~repro.engine.BoundResult` batches into
    :class:`Fig5Data` rows.

    ``results`` must be in the stream order of
    :func:`repro.engine.q_sweep_scenarios` (all functions at ``qs[0]``,
    then ``qs[1]``…).  The shape-obliviousness of Eq. 4 (same bound for
    all three functions at each Q) is verified along the way.
    """
    per_q = len(FIG4_NAMES)
    require(
        len(results) == per_q * len(qs),
        f"expected {per_q * len(qs)} bound results for {len(qs)} Q "
        f"points, got {len(results)}",
    )
    rows: list[Fig5Row] = []
    for slot, q in enumerate(qs):
        batch = results[slot * per_q : (slot + 1) * per_q]
        alg1 = {r.function: r.algorithm1 for r in batch}
        soa_values = [r.state_of_the_art for r in batch]
        spread = max(soa_values) - min(soa_values)
        require(
            (math.isfinite(spread) and spread < 1e-6)
            or all(math.isinf(v) for v in soa_values),
            "Eq. 4 must give the same bound for all three functions "
            f"(got {soa_values} at Q={q})",
        )
        rows.append(
            Fig5Row(
                q=q,
                algorithm1=alg1,
                state_of_the_art=soa_values[0],
            )
        )
    return Fig5Data(rows=tuple(rows), interpretation=interpretation)


def generate_fig5(
    qs: list[float] | None = None,
    interpretation: str = "literal",
    knots: int = 2048,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    store=None,
) -> Fig5Data:
    """Run the Figure 5 sweep through the batch engine.

    Legacy-compatible entry point; the ``fig5`` workload of
    :mod:`repro.api` is the primary surface and both route through the
    same :func:`repro.api.execution.execute_scenarios` pipeline, so
    results (and the written CSV) are byte-identical either way.

    Args:
        qs: NPR lengths to evaluate (default: :func:`default_q_grid`).
        interpretation: Benchmark-function interpretation.
        knots: Function resolution.
        max_workers: Engine pool width (``None`` = inline; results are
            bit-identical for every setting).
        chunk_size: Engine chunk size (default: auto).
        store: Optional :class:`repro.store.ResultStore`; scenarios
            already present are served from it and fresh ones are
            checkpointed, so a repeated or interrupted sweep only pays
            for what it has not computed yet.

    Returns:
        The sweep data; the shape-obliviousness of Eq. 4 (same bound for
        all three functions) is verified along the way.
    """
    from repro.api.execution import execute_scenarios
    from repro.api.options import ExecutionOptions
    from repro.engine import (
        bound_result_from_record,
        evaluate_bound_scenario,
        q_sweep_scenarios,
    )
    from repro.engine.sweeps import bound_context_key

    qs = qs if qs is not None else default_q_grid()
    scenarios = q_sweep_scenarios(
        qs, interpretation=interpretation, knots=knots
    )
    run = execute_scenarios(
        evaluate_bound_scenario,
        scenarios,
        options=ExecutionOptions(
            jobs=max_workers, chunk=chunk_size, store=store
        ),
        decode=bound_result_from_record,
        group_by=bound_context_key,
    )
    return fig5_data_from_results(qs, run.results, interpretation)


def write_fig5_csv(data: Fig5Data, filename: str = "fig5.csv", directory=None):
    """Write the sweep to the results directory (or ``directory``)."""
    headers = (
        "q",
        *(f"alg1_{name}" for name in FIG4_NAMES),
        "state_of_the_art",
    )
    return write_csv(filename, headers, data.as_rows(), directory=directory)
