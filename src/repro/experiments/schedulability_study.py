"""EXT-D: end-to-end schedulability study.

The paper stops at per-task delay bounds; this extension closes the loop:
generate random task sets, derive NPR lengths, attach synthetic delay
functions, and measure the acceptance ratio of each delay-aware test as
utilization grows.  Expected ordering: ``oblivious`` (unsafe, most
accepting) >= ``algorithm1`` >= ``eq4`` (most pessimistic of the
inflation tests) — the gap between the last two is the paper's
contribution expressed as schedulability.

The utilization × task-set matrix is flattened into
:class:`repro.engine.StudyScenario` batches and evaluated by
:func:`repro.engine.run_batch`.  Every scenario carries its own seed
(``seed + level * 10_000 + k``, unchanged from the sequential
implementation), so acceptance ratios are bit-identical for any
``max_workers``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.sweeps import (
    StudyScenario,
    evaluate_study_scenario,
    prepared_task_set,
    study_context_key,
    study_result_from_record,
)
from repro.tasks.task import TaskSet
from repro.utils.checks import require

#: The utilization grid of the reference (CLI) acceptance study.
STUDY_UTILIZATIONS = (0.3, 0.5, 0.65, 0.8, 0.9)

#: The test methods of the reference (CLI) acceptance study.
STUDY_METHODS = ("oblivious", "busquets", "algorithm1", "eq4")


@dataclass(frozen=True, slots=True)
class StudyPoint:
    """Acceptance ratios at one utilization level.

    Attributes:
        utilization: Target total utilization of the generated sets.
        ratios: Mapping method name -> fraction of sets accepted.
        generated: Number of task sets generated at this level.
    """

    utilization: float
    ratios: dict[str, float]
    generated: int


def _prepared_task_set(
    n_tasks: int,
    utilization: float,
    seed: int,
    q_fraction: float,
    delay_height: float,
) -> TaskSet | None:
    """Generate, prioritise and NPR-annotate one task set.

    Thin wrapper kept for API compatibility; the implementation lives in
    :func:`repro.engine.sweeps.prepared_task_set` so the engine workers
    and this module share one definition.
    """
    return prepared_task_set(
        n_tasks, utilization, seed, q_fraction, delay_height
    )


def study_scenarios(
    utilizations: list[float],
    methods: list[str],
    n_tasks: int,
    sets_per_point: int,
    q_fraction: float,
    delay_height: float,
    seed: int,
) -> list[StudyScenario]:
    """Flatten the utilization × set matrix into engine scenarios.

    Scenario order is level-major (all sets of ``utilizations[0]``
    first); seeds replicate the sequential implementation:
    ``seed + level * 10_000 + k``, kept for bit-compatibility with the
    pre-engine artifacts.  That formula is collision-free only for
    ``sets_per_point < 10_000`` (enforced here); grids beyond that
    should derive seeds with :func:`repro.engine.derive_seed`.
    """
    require(
        sets_per_point < 10_000,
        "the legacy seed formula collides at sets_per_point >= 10_000; "
        "build scenarios with repro.engine.derive_seed instead",
    )
    return [
        StudyScenario(
            utilization=utilization,
            seed=seed + level * 10_000 + k,
            n_tasks=n_tasks,
            q_fraction=q_fraction,
            delay_height=delay_height,
            methods=tuple(methods),
        )
        for level, utilization in enumerate(utilizations)
        for k in range(sets_per_point)
    ]


def reference_study_scenarios(
    n_tasks: int, sets_per_point: int
) -> list[StudyScenario]:
    """The CLI ``study`` command's scenario grid.

    The fixed utilization levels, methods, fractions and base seed of
    ``python -m repro study`` over the caller's ``(n_tasks,
    sets_per_point)`` — the grid a ``{"kind": "study"}`` store manifest
    regenerates (see :func:`repro.api.execution.manifest_scenarios`).
    """
    return study_scenarios(
        utilizations=list(STUDY_UTILIZATIONS),
        methods=list(STUDY_METHODS),
        n_tasks=n_tasks,
        sets_per_point=sets_per_point,
        q_fraction=0.5,
        delay_height=0.05,
        seed=2012,
    )


def fold_study_points(
    utilizations: list[float],
    methods: list[str],
    sets_per_point: int,
    results: list,
) -> list[StudyPoint]:
    """Fold level-major :class:`~repro.engine.StudyResult` batches into
    per-utilization acceptance ratios.

    ``results`` must be in the stream order of :func:`study_scenarios`
    (all sets of ``utilizations[0]`` first).
    """
    require(
        len(results) == len(utilizations) * sets_per_point,
        f"expected {len(utilizations) * sets_per_point} study results, "
        f"got {len(results)}",
    )
    points: list[StudyPoint] = []
    for level, utilization in enumerate(utilizations):
        batch = results[
            level * sets_per_point : (level + 1) * sets_per_point
        ]
        accepted = {m: 0 for m in methods}
        for result in batch:
            for method, verdict in zip(methods, result.accepted):
                if verdict:
                    accepted[method] += 1
        points.append(
            StudyPoint(
                utilization=utilization,
                ratios={
                    m: accepted[m] / sets_per_point for m in methods
                },
                generated=sets_per_point,
            )
        )
    return points


def study_campaign_spec(
    utilizations: list[float] | None = None,
    sets_per_point: int = 40,
    n_tasks: int = 6,
    q_fraction: float = 0.5,
    delay_height: float = 0.05,
    seed: int = 2012,
    methods: list[str] | None = None,
) -> dict:
    """The acceptance study as a declarative campaign spec.

    The campaign form draws per-scenario seeds from the SplitMix64
    ``seeds`` sampler (one shared seed stream across utilization
    levels) instead of the legacy ``seed + level * 10_000 + k``
    formula, so it scales past 10^4 sets per point; ratios therefore
    differ statistically (not structurally) from
    :func:`acceptance_study` with the same arguments.
    """
    from repro.sched.crpd_rta import METHODS

    utilizations = (
        utilizations
        if utilizations is not None
        else [0.3, 0.5, 0.65, 0.8, 0.9]
    )
    return {
        "name": "study",
        "description": "FP delay-aware acceptance ratios vs utilization",
        "family": "study",
        "axes": {
            "utilization": {"grid": list(utilizations)},
            "seed": {"seeds": {"base": seed, "count": sets_per_point}},
        },
        "defaults": {
            "n_tasks": n_tasks,
            "q_fraction": q_fraction,
            "delay_height": delay_height,
            "methods": list(methods) if methods is not None else list(METHODS),
        },
    }


def acceptance_study(
    utilizations: list[float],
    methods: list[str],
    n_tasks: int = 6,
    sets_per_point: int = 40,
    q_fraction: float = 0.5,
    delay_height: float = 0.05,
    seed: int = 2012,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    store=None,
) -> list[StudyPoint]:
    """Acceptance ratio versus utilization for each test method.

    Args:
        utilizations: Utilization levels to sample.
        methods: Test methods (see :data:`repro.sched.METHODS`).
        n_tasks: Tasks per generated set.
        sets_per_point: Sets generated per utilization level.
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        seed: Base RNG seed.
        max_workers: Engine pool width (``None`` = inline; ratios are
            identical for every setting).
        chunk_size: Engine chunk size (default: auto).
        store: Optional :class:`repro.store.ResultStore`; per-scenario
            verdicts already present are served from it and fresh ones
            checkpointed, so growing the grid (more seeds, more levels)
            only evaluates the new scenarios.

    Returns:
        One :class:`StudyPoint` per utilization level.
    """
    require(bool(utilizations), "need at least one utilization level")
    require(sets_per_point > 0, "sets_per_point must be > 0")
    from repro.api.execution import execute_scenarios
    from repro.api.options import ExecutionOptions

    scenarios = study_scenarios(
        utilizations,
        methods,
        n_tasks,
        sets_per_point,
        q_fraction,
        delay_height,
        seed,
    )
    run = execute_scenarios(
        evaluate_study_scenario,
        scenarios,
        options=ExecutionOptions(
            jobs=max_workers, chunk=chunk_size, store=store
        ),
        decode=study_result_from_record,
        group_by=study_context_key,
    )
    return fold_study_points(
        utilizations, methods, sets_per_point, run.results
    )


def study_series(
    points: list[StudyPoint],
) -> dict[str, list[tuple[float, float]]]:
    """Plot-ready series: one curve per method."""
    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        for method, ratio in point.ratios.items():
            series.setdefault(method, []).append(
                (point.utilization, ratio)
            )
    return series
