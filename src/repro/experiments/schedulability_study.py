"""EXT-D: end-to-end schedulability study.

The paper stops at per-task delay bounds; this extension closes the loop:
generate random task sets, derive NPR lengths, attach synthetic delay
functions, and measure the acceptance ratio of each delay-aware test as
utilization grows.  Expected ordering: ``oblivious`` (unsafe, most
accepting) >= ``algorithm1`` >= ``eq4`` (most pessimistic of the
inflation tests) — the gap between the last two is the paper's
contribution expressed as schedulability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.npr.assignment import assign_npr_lengths
from repro.sched.crpd_rta import delay_aware_rta
from repro.tasks.generation import gaussian_delay_factory, generate_task_set
from repro.tasks.task import TaskSet
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class StudyPoint:
    """Acceptance ratios at one utilization level.

    Attributes:
        utilization: Target total utilization of the generated sets.
        ratios: Mapping method name -> fraction of sets accepted.
        generated: Number of task sets generated at this level.
    """

    utilization: float
    ratios: dict[str, float]
    generated: int


def _prepared_task_set(
    n_tasks: int,
    utilization: float,
    seed: int,
    q_fraction: float,
    delay_height: float,
) -> TaskSet | None:
    """Generate, prioritise and NPR-annotate one task set.

    Returns ``None`` when the set admits no NPR assignment (negative
    blocking tolerance): every delay-aware test counts it as a rejection.
    """
    factory = gaussian_delay_factory(relative_height=delay_height)
    tasks = generate_task_set(
        n_tasks,
        utilization,
        seed=seed,
        delay_function_factory=factory,
    ).rate_monotonic()
    try:
        return assign_npr_lengths(tasks, policy="fp", fraction=q_fraction)
    except ValueError:
        return None


def acceptance_study(
    utilizations: list[float],
    methods: list[str],
    n_tasks: int = 6,
    sets_per_point: int = 40,
    q_fraction: float = 0.5,
    delay_height: float = 0.05,
    seed: int = 2012,
) -> list[StudyPoint]:
    """Acceptance ratio versus utilization for each test method.

    Args:
        utilizations: Utilization levels to sample.
        methods: Test methods (see :data:`repro.sched.METHODS`).
        n_tasks: Tasks per generated set.
        sets_per_point: Sets generated per utilization level.
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        seed: Base RNG seed.

    Returns:
        One :class:`StudyPoint` per utilization level.
    """
    require(bool(utilizations), "need at least one utilization level")
    require(sets_per_point > 0, "sets_per_point must be > 0")
    points: list[StudyPoint] = []
    for level, utilization in enumerate(utilizations):
        accepted = {m: 0 for m in methods}
        for k in range(sets_per_point):
            task_set = _prepared_task_set(
                n_tasks,
                utilization,
                seed=seed + level * 10_000 + k,
                q_fraction=q_fraction,
                delay_height=delay_height,
            )
            if task_set is None:
                continue  # counts as rejection for every method
            for method in methods:
                if delay_aware_rta(task_set, method).schedulable:
                    accepted[method] += 1
        points.append(
            StudyPoint(
                utilization=utilization,
                ratios={
                    m: accepted[m] / sets_per_point for m in methods
                },
                generated=sets_per_point,
            )
        )
    return points


def study_series(
    points: list[StudyPoint],
) -> dict[str, list[tuple[float, float]]]:
    """Plot-ready series: one curve per method."""
    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        for method, ratio in point.ratios.items():
            series.setdefault(method, []).append(
                (point.utilization, ratio)
            )
    return series
