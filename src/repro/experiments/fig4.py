"""FIG4: regenerate the paper's Figure 4 data (the three ``f`` curves)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.functions_fig4 import (
    FIG4_NAMES,
    FIG4_WCET,
    fig4_functions,
)
from repro.experiments.io import write_csv
from repro.piecewise import evaluate_sorted
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class Fig4Data:
    """Sampled benchmark functions.

    Attributes:
        ts: Sample abscissae (shared by all series).
        series: Mapping function name -> sampled values.
        interpretation: Parameter interpretation used.
    """

    ts: tuple[float, ...]
    series: dict[str, tuple[float, ...]]
    interpretation: str

    def as_rows(self) -> list[tuple]:
        """CSV rows: ``t, gaussian1, gaussian2, bimodal``."""
        return [
            (t, *(self.series[name][i] for name in FIG4_NAMES))
            for i, t in enumerate(self.ts)
        ]


def generate_fig4(
    interpretation: str = "literal",
    samples: int = 401,
    knots: int = 2048,
    wcet: float = FIG4_WCET,
    store=None,
) -> Fig4Data:
    """Sample the three benchmark functions on a uniform grid.

    Args:
        interpretation: Parameter interpretation (see
            :mod:`repro.experiments.functions_fig4`).
        samples: Number of sample points over ``[0, C]``.
        knots: Resolution of the underlying piecewise functions.
        wcet: The common ``C``.
        store: Optional :class:`repro.store.ResultStore`; the sampled
            curves are cached under a key derived from all parameters,
            so regenerating the figure under unchanged code is a single
            store read.
    """
    require(samples >= 2, "need at least two samples")
    if store is not None:
        from repro.store import scenario_key

        key = scenario_key(
            {
                "kind": "fig4",
                "interpretation": interpretation,
                "samples": samples,
                "knots": knots,
                "wcet": wcet,
            },
            store.fingerprint,
        )
        record = store.get(key)
        if record is not None:
            return Fig4Data(
                ts=tuple(record["ts"]),
                series={
                    name: tuple(values)
                    for name, values in record["series"].items()
                },
                interpretation=record["interpretation"],
            )
    functions = fig4_functions(interpretation, knots, wcet)
    ts = tuple(wcet * k / (samples - 1) for k in range(samples))
    # The grid is non-decreasing, so the one-pass batched kernel applies
    # (bit-identical to calling f.value per point).
    series = {
        name: tuple(evaluate_sorted(f.function, ts))
        for name, f in functions.items()
    }
    data = Fig4Data(ts=ts, series=series, interpretation=interpretation)
    if store is not None:
        store.put(
            key,
            {
                "ts": list(data.ts),
                "series": {
                    name: list(values)
                    for name, values in data.series.items()
                },
                "interpretation": data.interpretation,
            },
        )
        store.commit()
    return data


def write_fig4_csv(data: Fig4Data, filename: str = "fig4.csv", directory=None):
    """Write the sampled curves to the results directory (or
    ``directory``)."""
    headers = ("t", *FIG4_NAMES)
    return write_csv(filename, headers, data.as_rows(), directory=directory)
