"""Ablation experiments (EXT-B, EXT-C; see docs/paper_mapping.md).

* :func:`interpretation_sweep` — how the Figure 5 conclusions react to
  the three readings of the paper's (inconsistent) Figure 4 parameters.
* :func:`knot_resolution_sweep` — sensitivity of Algorithm 1's bound to
  the piecewise resolution of ``f`` (coarser upper steps = safer but
  larger bounds).
* :func:`preemption_cap_sweep` — the paper's future-work item (ii):
  capping the number of preemptions by the interferers' release pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.floating_npr import floating_npr_delay_bound
from repro.experiments.fig5 import Fig5Data, generate_fig5
from repro.experiments.functions_fig4 import (
    INTERPRETATIONS,
    fig4_delay_function,
)
from repro.utils.checks import require


def interpretation_sweep(
    qs: list[float],
    knots: int = 1024,
) -> dict[str, Fig5Data]:
    """Figure 5 regenerated under every parameter interpretation."""
    return {
        interpretation: generate_fig5(qs, interpretation, knots)
        for interpretation in INTERPRETATIONS
    }


@dataclass(frozen=True, slots=True)
class ResolutionPoint:
    """Bound at one function resolution."""

    knots: int
    bound: float


def knot_resolution_sweep(
    q: float,
    knots_list: list[int],
    name: str = "gaussian2",
) -> list[ResolutionPoint]:
    """Algorithm 1's bound as the PWC resolution of ``f`` varies.

    Because every resolution is an *upper* step of the same closed form,
    the bound decreases (weakly) with finer resolution; the sweep
    quantifies how quickly it converges.
    """
    require(bool(knots_list), "need at least one resolution")
    points = []
    for knots in knots_list:
        f = fig4_delay_function(name, knots=knots)
        bound = floating_npr_delay_bound(f, q).total_delay
        points.append(ResolutionPoint(knots=knots, bound=bound))
    return points


@dataclass(frozen=True, slots=True)
class CapPoint:
    """Bound with a given preemption cap."""

    cap: int | None
    bound: float


def preemption_cap_sweep(
    q: float,
    caps: list[int],
    name: str = "gaussian2",
    knots: int = 1024,
) -> list[CapPoint]:
    """Algorithm 1 with the release-pattern preemption cap (future work
    item (ii)): the bound with cap k never exceeds the uncapped bound
    and grows monotonically with k."""
    f = fig4_delay_function(name, knots=knots)
    unlimited = floating_npr_delay_bound(f, q).total_delay
    points = [CapPoint(cap=None, bound=unlimited)]
    for cap in sorted(caps):
        require(cap >= 0, f"cap must be >= 0, got {cap}")
        bound = floating_npr_delay_bound(f, q, max_preemptions=cap).total_delay
        points.append(CapPoint(cap=cap, bound=bound))
    return points


def improvement_summary(data: Fig5Data) -> dict[str, float]:
    """Median SOA/Algorithm-1 improvement factor per benchmark function."""
    factors: dict[str, list[float]] = {}
    for row in data.rows:
        if not math.isfinite(row.state_of_the_art):
            continue
        for name, value in row.algorithm1.items():
            if value > 0 and math.isfinite(value):
                factors.setdefault(name, []).append(
                    row.state_of_the_art / value
                )
    result = {}
    for name, values in factors.items():
        values.sort()
        result[name] = values[len(values) // 2]
    return result
