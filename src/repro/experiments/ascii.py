"""Plain-text rendering: tables and log-scale line plots.

The original figures are matplotlib plots; this reproduction renders the
same series as ASCII so the benchmark harness can print them on any
terminal and diff them in CI.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.utils.checks import require

_SYMBOLS = "ox+*#@%&"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".4g"
) -> str:
    """Render a list of rows as a fixed-width text table."""
    require(bool(headers), "need at least one column")

    def fmt(cell) -> str:
        if isinstance(cell, float):
            if math.isinf(cell):
                return "inf" if cell > 0 else "-inf"
            return format(cell, floatfmt)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Scatter the series onto a character grid (legend included).

    Args:
        series: Mapping name -> ``(x, y)`` points; non-finite y values
            are skipped.
        width: Plot width in characters.
        height: Plot height in characters.
        log_y: Use a log10 ordinate (points ``<= 0`` are skipped).
        title: Optional title line.

    Returns:
        The rendered multi-line string.
    """
    require(width >= 16 and height >= 4, "plot must be at least 16x4")
    points: list[tuple[float, float, int]] = []
    names = list(series)
    for idx, name in enumerate(names):
        for x, y in series[name]:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if log_y and y <= 0:
                continue
            points.append((x, math.log10(y) if log_y else y, idx))
    if not points:
        return f"{title}\n(no finite points to plot)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = _SYMBOLS[idx % len(_SYMBOLS)]

    def y_label(value: float) -> str:
        shown = 10**value if log_y else value
        return f"{shown:>10.3g} |"

    lines = []
    if title:
        lines.append(title)
    for r, row_chars in enumerate(grid):
        value = y_hi - (y_hi - y_lo) * r / (height - 1)
        lines.append(y_label(value) + "".join(row_chars))
    lines.append(" " * 11 + "+" + "-" * (width - 1))
    lines.append(
        " " * 11 + f"x: [{x_lo:g} .. {x_hi:g}]"
        + ("   (log y)" if log_y else "")
    )
    legend = "   ".join(
        f"{_SYMBOLS[i % len(_SYMBOLS)]} = {name}" for i, name in enumerate(names)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
