"""Resolve a campaign argument — mapping, spec file or built-in name.

The CLI and the :mod:`repro.api` ``campaign`` workload share one
resolution rule, implemented here: an inline mapping is used as-is, a
``.json``/``.toml`` file is loaded (``--set`` overrides its
``defaults``), and anything else must name a built-in campaign
(``--set`` feeds the builtin factory's parameters).  ``run`` is the
one-call programmatic entry point, a thin shim over the facade's
``campaign`` workload.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Any


def parse_set_overrides(pairs: Iterable[str]) -> dict[str, Any]:
    """Parse repeated ``--set key=value`` flags.

    Values are decoded as JSON when possible (``5`` -> int, ``0.5`` ->
    float, ``[1,2]`` -> list, ``true`` -> bool) and fall back to plain
    strings, so ``--set policy=edf`` needs no quoting.
    """
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"invalid --set {pair!r}: expected key=value"
            )
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def _apply_overrides(
    spec: Mapping[str, Any], overrides: Mapping[str, Any]
) -> dict[str, Any]:
    """A copy of ``spec`` with ``overrides`` merged into its
    ``defaults`` (the ``--set`` rule for mapping/file specs)."""
    spec = dict(spec)
    if overrides:
        defaults = dict(spec.get("defaults", {}))
        defaults.update(overrides)
        spec["defaults"] = defaults
    return spec


def resolve_spec(
    spec_arg: str | Mapping[str, Any], overrides: Mapping[str, Any]
) -> dict[str, Any]:
    """Turn a campaign argument into a spec mapping.

    An inline mapping wins (``overrides`` update its ``defaults``).  A
    path that exists is loaded as a spec file (same override rule);
    otherwise the argument must name a built-in campaign (``overrides``
    feed the builtin factory's parameters).
    """
    from repro.campaign.builtin import builtin_campaign, builtin_names
    from repro.campaign.spec import load_spec

    if isinstance(spec_arg, Mapping):
        return _apply_overrides(spec_arg, overrides)

    path = Path(spec_arg)
    # A spec-shaped path (.json/.toml regular file) wins; otherwise the
    # built-in names stay reachable even when a directory or stray file
    # happens to carry the same name.
    is_spec_file = path.is_file() and path.suffix.lower() in (
        ".json",
        ".toml",
    )
    if not is_spec_file and spec_arg in builtin_names():
        return builtin_campaign(spec_arg, **overrides)
    if path.is_file():
        return _apply_overrides(load_spec(path), overrides)
    raise ValueError(
        f"campaign spec {spec_arg!r} is neither an existing spec file "
        f"nor a built-in campaign (available: {', '.join(builtin_names())})"
    )


def run(
    spec: str | Mapping[str, Any],
    overrides: Mapping[str, Any] | None = None,
    **execution: Any,
):
    """Run a campaign through the :mod:`repro.api` facade.

    A convenience shim: ``campaign.run("fig5", {"points": 5})`` is
    ``Workbench().run(RunRequest.campaign(...))``.  Keyword arguments
    are :class:`repro.api.ExecutionOptions` fields (``jobs``,
    ``store``, ``resume``, ``shard``, ``sinks``, ``results_dir``…).

    Returns:
        The facade's :class:`repro.api.RunResult`.
    """
    from repro.api import ExecutionOptions, RunRequest, Workbench

    request = RunRequest.campaign(
        spec, overrides, options=ExecutionOptions(**execution)
    )
    return Workbench().run(request)
