"""Built-in campaign specs: the paper's studies as declarative data.

Each built-in is a *factory* returning an ordinary spec dict, so the
CLI (``python -m repro campaign <name>``) can parameterize it with
``--set key=value`` and every consumer — tests, benchmarks, merge
manifests — sees the same normal form a hand-written spec file would
produce.  ``fig5`` and ``study`` live next to the experiment code they
re-express (:mod:`repro.experiments.fig5`,
:mod:`repro.experiments.schedulability_study`); the simulation and EDF
campaigns are defined here on top of the new families of
:mod:`repro.engine.families`.
"""

from __future__ import annotations

from repro.utils.checks import require


def sim_validate_campaign_spec(
    utilizations: list[float] | None = None,
    sets_per_point: int = 25,
    n_tasks: int = 4,
    q_fraction: float = 0.5,
    delay_height: float = 0.05,
    policy: str = "fp",
    seed: int = 2012,
    sporadic: bool = False,
) -> dict:
    """Bound-validation campaign: simulator runs vs Algorithm 1 bounds.

    A grid of generated task sets is simulated under the adversarial
    (full ``f_i``) delay model; every record carries the observed
    ``max_tightness`` and whether the static bound held — Theorem 1
    fuzzed at campaign scale.
    """
    utilizations = (
        utilizations if utilizations is not None else [0.3, 0.5, 0.7]
    )
    return {
        "name": "sim-validate",
        "description": "observed preemption delay vs Algorithm 1 bound",
        "family": "sim",
        "axes": {
            "utilization": {"grid": list(utilizations)},
            "seed": {"seeds": {"base": seed, "count": sets_per_point}},
        },
        "defaults": {
            "n_tasks": n_tasks,
            "q_fraction": q_fraction,
            "delay_height": delay_height,
            "policy": policy,
            "sporadic": sporadic,
        },
    }


def edf_study_campaign_spec(
    utilizations: list[float] | None = None,
    sets_per_point: int = 40,
    n_tasks: int = 5,
    q_fraction: float = 0.5,
    delay_height: float = 0.05,
    seed: int = 2012,
    methods: list[str] | None = None,
) -> dict:
    """EDF acceptance-ratio campaign over the delay-aware test family."""
    from repro.sched.edf_delay_aware import EDF_METHODS

    utilizations = (
        utilizations
        if utilizations is not None
        else [0.3, 0.5, 0.65, 0.8, 0.9]
    )
    return {
        "name": "edf-study",
        "description": "EDF delay-aware acceptance ratios vs utilization",
        "family": "edf-study",
        "axes": {
            "utilization": {"grid": list(utilizations)},
            "seed": {"seeds": {"base": seed, "count": sets_per_point}},
        },
        "defaults": {
            "n_tasks": n_tasks,
            "q_fraction": q_fraction,
            "delay_height": delay_height,
            "methods": (
                list(methods) if methods is not None else list(EDF_METHODS)
            ),
        },
    }


def _builtins() -> dict:
    from repro.experiments.fig5 import fig5_campaign_spec
    from repro.experiments.schedulability_study import study_campaign_spec

    return {
        "fig5": fig5_campaign_spec,
        "study": study_campaign_spec,
        "sim-validate": sim_validate_campaign_spec,
        "edf-study": edf_study_campaign_spec,
    }


def builtin_names() -> tuple[str, ...]:
    """The names ``python -m repro campaign`` accepts besides spec files."""
    return tuple(sorted(_builtins()))


def builtin_campaign(name: str, **overrides) -> dict:
    """Instantiate a built-in campaign spec.

    Args:
        name: One of :func:`builtin_names`.
        overrides: Factory parameters (e.g. ``points=5`` for ``fig5``),
            the CLI's ``--set key=value`` payload.

    Raises:
        ValueError: for unknown names or parameters the factory does
            not accept, listing the valid choices.
    """
    factories = _builtins()
    require(
        name in factories,
        f"unknown built-in campaign {name!r}; available: "
        f"{', '.join(sorted(factories))}",
    )
    try:
        return factories[name](**overrides)
    except TypeError as exc:
        raise ValueError(
            f"invalid parameter(s) for built-in campaign {name!r}: {exc}"
        ) from exc
