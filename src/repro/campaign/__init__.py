"""Declarative scenario campaigns (substrate S14): specs in, sweeps out.

The engine (PR 1) evaluates any flat scenario list and the store
(PR 2) makes evaluation incremental — but until now every new study
shape needed Python edits.  ``repro.campaign`` closes that gap: a
campaign is a plain JSON/TOML mapping naming a *scenario family* (from
the engine's registry), a set of *axes* (grid or seeded-random
samplers per scenario field) and fixed *defaults*;
:func:`compile_campaign` turns it into a deterministic scenario
stream that flows through ``run_batch`` / ``run_cached_batch``
unchanged — cached, resumable and shardable exactly like the
hand-coded sweeps, with byte-identical outputs.

Layering: ``campaign`` sits beside :mod:`repro.experiments`, above
:mod:`repro.engine` (whose registry it resolves families through) and
below :mod:`repro.cli`, which exposes ``python -m repro campaign``.
Built-in specs re-express the paper's studies (Figure 5 grid,
acceptance study) plus the new simulation-validation and EDF
campaigns; a spec file can describe any grid over any registered
family without touching this package.
"""

from repro.campaign.builtin import (
    builtin_campaign,
    builtin_names,
    edf_study_campaign_spec,
    sim_validate_campaign_spec,
)
from repro.campaign.resolve import parse_set_overrides, resolve_spec, run
from repro.campaign.samplers import SAMPLERS, expand_axis
from repro.campaign.spec import (
    SPEC_KEYS,
    CompiledCampaign,
    compile_campaign,
    load_spec,
)

__all__ = [
    "SPEC_KEYS",
    "CompiledCampaign",
    "compile_campaign",
    "load_spec",
    "SAMPLERS",
    "expand_axis",
    "builtin_campaign",
    "builtin_names",
    "sim_validate_campaign_spec",
    "edf_study_campaign_spec",
    "parse_set_overrides",
    "resolve_spec",
    "run",
]
