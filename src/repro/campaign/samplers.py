"""Axis samplers: declarative value lists for campaign axes.

An *axis* of a campaign spec maps one scenario field to a list of
values.  The axis spec is a one-key mapping naming the sampler::

    {"grid":     [10.0, 20.0, 40.0]}                     # explicit
    {"linspace": {"start": 0.3, "stop": 0.9, "points": 4}}
    {"logspace": {"start": 12.0, "stop": 2000.0, "points": 40}}
    {"range":    {"start": 0, "stop": 25}}               # ints
    {"uniform":  {"low": 0.3, "high": 0.9, "count": 8, "seed": 7}}
    {"seeds":    {"base": 2012, "count": 100}}           # SplitMix64

Every sampler is a pure function of its parameters — the expansion of a
spec is deterministic across processes and machines, which is what
makes campaign store keys stable.  ``logspace`` reproduces
:func:`repro.experiments.default_q_grid` bit-for-bit (same ratio
formula, same float operations), so a campaign over the Figure 5 grid
addresses exactly the same store rows as ``python -m repro sweep``.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Any

from repro.engine.chunking import derive_seed
from repro.utils.checks import require

_SCALARS = (bool, int, float, str)


def _require_keys(
    kind: str, params: Any, required: tuple[str, ...], optional: tuple[str, ...] = ()
) -> Mapping[str, Any]:
    require(
        isinstance(params, Mapping),
        f"sampler {kind!r} expects a parameter mapping, got {params!r}",
    )
    missing = [key for key in required if key not in params]
    require(
        not missing,
        f"sampler {kind!r} is missing parameter(s) {', '.join(missing)}",
    )
    unknown = [
        key for key in params if key not in required and key not in optional
    ]
    require(
        not unknown,
        f"sampler {kind!r} got unknown parameter(s) {', '.join(unknown)}",
    )
    return params


def _number(kind: str, params: Mapping[str, Any], key: str) -> float:
    value = params[key]
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"sampler {kind!r} parameter {key!r} must be a number, got {value!r}",
    )
    return float(value)


def _integer(kind: str, params: Mapping[str, Any], key: str) -> int:
    value = params[key]
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"sampler {kind!r} parameter {key!r} must be an integer, got {value!r}",
    )
    return value


def _grid(kind: str, values: Any) -> list[Any]:
    require(
        isinstance(values, (list, tuple)) and len(values) > 0,
        f"sampler {kind!r} expects a non-empty list of values, got {values!r}",
    )
    for value in values:
        require(
            isinstance(value, _SCALARS) or value is None,
            f"grid values must be scalars, got {value!r}",
        )
    return list(values)


def _linspace(kind: str, params: Any) -> list[float]:
    params = _require_keys(kind, params, ("start", "stop", "points"))
    start = _number(kind, params, "start")
    stop = _number(kind, params, "stop")
    points = _integer(kind, params, "points")
    require(points >= 2, f"sampler {kind!r} needs points >= 2, got {points}")
    step = (stop - start) / (points - 1)
    return [start + k * step for k in range(points)]


def _logspace(kind: str, params: Any) -> list[float]:
    params = _require_keys(kind, params, ("start", "stop", "points"))
    start = _number(kind, params, "start")
    stop = _number(kind, params, "stop")
    points = _integer(kind, params, "points")
    require(
        0 < start < stop,
        f"sampler {kind!r} needs 0 < start < stop, got [{start}, {stop}]",
    )
    require(points >= 2, f"sampler {kind!r} needs points >= 2, got {points}")
    # Identical arithmetic to repro.experiments.default_q_grid, so the
    # Figure 5 campaign grid is bit-for-bit the sweep command's grid.
    ratio = (stop / start) ** (1.0 / (points - 1))
    return [start * ratio**k for k in range(points)]


def _range(kind: str, params: Any) -> list[int]:
    params = _require_keys(kind, params, ("start", "stop"), ("step",))
    start = _integer(kind, params, "start")
    stop = _integer(kind, params, "stop")
    step = _integer(kind, params, "step") if "step" in params else 1
    require(step != 0, f"sampler {kind!r} needs a non-zero step")
    values = list(range(start, stop, step))
    require(
        len(values) > 0,
        f"sampler {kind!r} produced no values for "
        f"range({start}, {stop}, {step})",
    )
    return values


def _uniform(kind: str, params: Any) -> list[float]:
    params = _require_keys(kind, params, ("low", "high", "count", "seed"))
    low = _number(kind, params, "low")
    high = _number(kind, params, "high")
    count = _integer(kind, params, "count")
    seed = _integer(kind, params, "seed")
    require(low < high, f"sampler {kind!r} needs low < high")
    require(count >= 1, f"sampler {kind!r} needs count >= 1")
    rng = random.Random(seed)
    return [rng.uniform(low, high) for _ in range(count)]


def _seeds(kind: str, params: Any) -> list[int]:
    params = _require_keys(kind, params, ("base", "count"))
    base = _integer(kind, params, "base")
    count = _integer(kind, params, "count")
    require(count >= 1, f"sampler {kind!r} needs count >= 1")
    return [derive_seed(base, index) for index in range(count)]


#: Sampler kind -> expansion function.
SAMPLERS = {
    "grid": _grid,
    "linspace": _linspace,
    "logspace": _logspace,
    "range": _range,
    "uniform": _uniform,
    "seeds": _seeds,
}


def normalize_params(kind: str, params: Any) -> Any:
    """Canonical JSON form of one sampler's parameters.

    Two specs that expand to the same values must record the same
    manifest, so numeric parameters are normalized to the types the
    sampler actually uses (``start: 40`` and ``start: 40.0`` expand
    identically and must serialize identically) and optional
    parameters are made explicit.  ``grid`` values are returned as-is —
    the spec compiler normalizes those against the scenario field's
    type, which samplers cannot know.
    """
    if kind == "grid":
        return list(params)
    if kind in ("linspace", "logspace"):
        return {
            "start": _number(kind, params, "start"),
            "stop": _number(kind, params, "stop"),
            "points": _integer(kind, params, "points"),
        }
    if kind == "range":
        return {
            "start": _integer(kind, params, "start"),
            "stop": _integer(kind, params, "stop"),
            "step": _integer(kind, params, "step") if "step" in params else 1,
        }
    if kind == "uniform":
        return {
            "low": _number(kind, params, "low"),
            "high": _number(kind, params, "high"),
            "count": _integer(kind, params, "count"),
            "seed": _integer(kind, params, "seed"),
        }
    require(kind == "seeds", f"unknown sampler {kind!r}")
    return {
        "base": _integer(kind, params, "base"),
        "count": _integer(kind, params, "count"),
    }


def expand_axis(name: str, axis_spec: Any) -> list[Any]:
    """Expand one axis spec into its (non-empty) value list.

    Args:
        name: Axis (scenario field) name, used in error messages.
        axis_spec: One-key mapping ``{sampler_kind: parameters}``.

    Returns:
        The deterministic value list.

    Raises:
        ValueError: for malformed specs, unknown samplers or invalid
            sampler parameters.
    """
    require(
        isinstance(axis_spec, Mapping) and len(axis_spec) == 1,
        f"axis {name!r} must be a one-key mapping "
        f"{{sampler: parameters}}, got {axis_spec!r}",
    )
    ((kind, params),) = axis_spec.items()
    require(
        kind in SAMPLERS,
        f"axis {name!r} uses unknown sampler {kind!r}; known samplers: "
        f"{', '.join(sorted(SAMPLERS))}",
    )
    return SAMPLERS[kind](kind, params)
