"""Campaign specs: validate and compile declarative sweep descriptions.

A *campaign spec* is a plain mapping (typically read from a JSON or
TOML file) describing a scenario grid without any Python::

    {
      "name": "fig5",
      "family": "bound",
      "axes": {
        "q":        {"logspace": {"start": 12.0, "stop": 2000.0, "points": 40}},
        "function": {"grid": ["gaussian1", "gaussian2", "bimodal"]}
      },
      "defaults": {"knots": 2048}
    }

:func:`compile_campaign` resolves the ``family`` through the engine's
registry (:mod:`repro.engine.registry`), expands every axis with the
samplers of :mod:`repro.campaign.samplers`, and instantiates one frozen
scenario per point of the cartesian product — axis order is
declaration order, first axis outermost (row-major), so the stream
order is part of the spec and byte-identical output is reproducible
from the spec alone.

Field values are validated and coerced against the scenario
dataclass's type hints: JSON integers feed ``float`` fields as exact
floats (so ``"q": 12`` and ``"q": 12.0`` address the same store key),
JSON lists feed ``tuple`` fields, and unknown or missing fields fail
with a message naming the family's real fields.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Mapping
from dataclasses import MISSING, dataclass, fields
from pathlib import Path
from typing import Any, get_args, get_origin, get_type_hints

from repro.campaign.samplers import expand_axis, normalize_params
from repro.engine.registry import ScenarioFamily, get_family
from repro.utils.checks import require

#: Recognised top-level spec keys.
SPEC_KEYS = ("name", "description", "family", "axes", "defaults")


@dataclass(frozen=True)
class CompiledCampaign:
    """A spec compiled into a concrete, ordered scenario stream.

    Attributes:
        name: Campaign name (defaults to the family name).
        family: The resolved scenario family.
        scenarios: The frozen scenarios, in deterministic stream order.
        spec: The normalized spec — JSON-round-trippable, recorded as
            the store manifest so ``repro merge`` can recompile the
            exact same stream.
    """

    name: str
    family: ScenarioFamily
    scenarios: list[Any]
    spec: dict[str, Any]


def load_spec(path: Path | str) -> dict[str, Any]:
    """Read a campaign spec mapping from a ``.json`` or ``.toml`` file.

    Raises:
        ValueError: for unreadable/unsupported files or non-mapping
            content.
    """
    path = Path(path)
    require(path.exists(), f"campaign spec {path} does not exist")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # pragma: no cover - py<3.11
            raise ValueError(
                f"cannot read {path}: TOML specs need Python >= 3.11 "
                "(tomllib); use a JSON spec instead"
            ) from exc
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        require(
            suffix == ".json",
            f"unsupported campaign spec format {suffix!r} for {path}; "
            "expected .json or .toml",
        )
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"campaign spec {path} is not valid JSON: {exc}") from exc
    require(
        isinstance(data, dict),
        f"campaign spec {path} must contain a mapping, got {type(data).__name__}",
    )
    return data


def _field_types(scenario_type: type) -> dict[str, Any]:
    """Resolved field name -> type hint of a scenario dataclass."""
    hints = get_type_hints(scenario_type)
    return {field.name: hints[field.name] for field in fields(scenario_type)}


def _coerce(family: str, name: str, value: Any, hint: Any) -> Any:
    """Coerce one JSON-shaped value onto a scenario field's type.

    The coercions are exactly the ones a JSON round trip demands: int
    literals feeding float fields, lists feeding tuple fields.  Anything
    else must already have the right type — silent lossy casts would
    fork store keys.
    """
    origin = get_origin(hint)
    if origin is tuple:
        require(
            isinstance(value, (list, tuple)),
            f"field {name!r} of family {family!r} expects a list, got {value!r}",
        )
        args = get_args(hint)
        inner = args[0] if args and args[-1] is Ellipsis else None
        return tuple(
            _coerce(family, f"{name}[{i}]", item, inner)
            if inner is not None
            else item
            for i, item in enumerate(value)
        )
    if hint is float:
        require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"field {name!r} of family {family!r} expects a number, got {value!r}",
        )
        return float(value)
    if hint is int:
        require(
            isinstance(value, int) and not isinstance(value, bool),
            f"field {name!r} of family {family!r} expects an integer, got {value!r}",
        )
        return value
    if hint is bool:
        require(
            isinstance(value, bool),
            f"field {name!r} of family {family!r} expects a boolean, got {value!r}",
        )
        return value
    if hint is str:
        require(
            isinstance(value, str),
            f"field {name!r} of family {family!r} expects a string, got {value!r}",
        )
        return value
    return value


def _manifest_value(value: Any) -> Any:
    """Field-coerced value -> its JSON-stable manifest form.

    Coercion produces tuples for tuple fields, but the manifest lives
    as JSON (where tuples become lists); recording lists directly keeps
    ``set_manifest``'s equality check true across a store round trip.
    """
    if isinstance(value, tuple):
        return [_manifest_value(item) for item in value]
    return value


def _axis_items(axes: Any) -> dict[str, Any]:
    """Normalize the ``axes`` entry to an ordered name -> spec mapping.

    Axes are accepted either as a mapping (the natural authoring form;
    JSON/TOML preserve key order) or as a list of ``[name, spec]``
    pairs — the form :func:`compile_campaign` emits into the normalized
    spec, because the store manifest is serialized with sorted keys and
    a mapping would lose the axis order that defines the stream order.
    """
    if isinstance(axes, Mapping):
        items = list(axes.items())
    else:
        require(
            isinstance(axes, (list, tuple)),
            f"campaign 'axes' must be a mapping or a list of "
            f"[name, spec] pairs, got {axes!r}",
        )
        items = []
        for entry in axes:
            require(
                isinstance(entry, (list, tuple)) and len(entry) == 2,
                f"axes list entries must be [name, spec] pairs, got {entry!r}",
            )
            items.append((entry[0], entry[1]))
    require(len(items) > 0, "campaign spec needs at least one axis")
    names = [name for name, _ in items]
    require(
        len(set(names)) == len(names),
        f"campaign axes repeat name(s): "
        f"{', '.join(sorted({n for n in names if names.count(n) > 1}))}",
    )
    for name in names:
        require(
            isinstance(name, str) and name,
            f"axis names must be non-empty strings, got {name!r}",
        )
    return dict(items)


def compile_campaign(spec: Mapping[str, Any]) -> CompiledCampaign:
    """Validate ``spec`` and compile it into a scenario stream.

    Args:
        spec: The campaign spec mapping (see the module docstring).

    Returns:
        The :class:`CompiledCampaign` — family, ordered scenarios and
        the normalized manifest-ready spec.

    Raises:
        ValueError: for any structural problem — unknown keys, unknown
            family, axes/defaults naming fields the family does not
            have, missing required fields, or type mismatches.  Errors
            name the offending key and the valid alternatives.
    """
    require(
        isinstance(spec, Mapping),
        f"campaign spec must be a mapping, got {type(spec).__name__}",
    )
    unknown = [key for key in spec if key not in SPEC_KEYS]
    require(
        not unknown,
        f"campaign spec has unknown key(s) {', '.join(sorted(unknown))}; "
        f"expected a subset of {', '.join(SPEC_KEYS)}",
    )
    require("family" in spec, "campaign spec needs a 'family' key")
    family = get_family(spec["family"])
    name = spec.get("name", family.name)
    require(
        isinstance(name, str) and name,
        f"campaign name must be a non-empty string, got {name!r}",
    )

    axes = _axis_items(spec.get("axes", {}))
    defaults = spec.get("defaults", {})
    require(
        isinstance(defaults, Mapping),
        f"campaign 'defaults' must be a mapping, got {defaults!r}",
    )

    types = _field_types(family.scenario_type)
    for origin_name, keys in (("axes", axes), ("defaults", defaults)):
        bad = [key for key in keys if key not in types]
        require(
            not bad,
            f"{origin_name} name(s) {', '.join(sorted(bad))} are not fields "
            f"of family {family.name!r}; its fields are "
            f"{', '.join(types)}",
        )
    overlap = [key for key in defaults if key in axes]
    require(
        not overlap,
        f"field(s) {', '.join(sorted(overlap))} appear in both axes and "
        "defaults; pick one",
    )

    required = {
        field.name
        for field in fields(family.scenario_type)
        if field.default is MISSING and field.default_factory is MISSING
    }
    uncovered = sorted(required - set(axes) - set(defaults))
    require(
        not uncovered,
        f"family {family.name!r} requires field(s) {', '.join(uncovered)} "
        "to be covered by an axis or a default",
    )

    axis_names = list(axes)
    axis_values = [
        [
            _coerce(family.name, axis, value, types[axis])
            for value in expand_axis(axis, axes[axis])
        ]
        for axis in axis_names
    ]
    fixed = {
        key: _coerce(family.name, key, value, types[key])
        for key, value in defaults.items()
    }

    scenarios = [
        family.scenario_type(**fixed, **dict(zip(axis_names, combo)))
        for combo in itertools.product(*axis_values)
    ]

    # The normalized spec is the store manifest, and manifests gate
    # resume: JSON-equivalent specs (``1`` vs ``1.0``, an implicit vs
    # explicit range step) must normalize to the *same* mapping.  Axis
    # parameters take the sampler's canonical form; grid values and
    # defaults take the already field-coerced values.
    normalized_axes = []
    for axis, values in zip(axis_names, axis_values):
        ((kind, _),) = axes[axis].items()
        if kind == "grid":
            params: Any = [_manifest_value(v) for v in values]
        else:
            params = normalize_params(kind, axes[axis][kind])
        normalized_axes.append([axis, {kind: params}])
    normalized: dict[str, Any] = {
        "name": name,
        "family": family.name,
        "axes": normalized_axes,
        "defaults": {
            key: _manifest_value(value) for key, value in fixed.items()
        },
    }
    if "description" in spec:
        normalized["description"] = spec["description"]
    return CompiledCampaign(
        name=name, family=family, scenarios=scenarios, spec=normalized
    )
