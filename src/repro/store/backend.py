"""The on-disk result store: one SQLite file, content-addressed rows.

Schema (format version :data:`repro.store.keys.STORE_FORMAT_VERSION`):

* ``results(key TEXT PRIMARY KEY, record TEXT)`` — one row per computed
  scenario; ``record`` is the sink record as strict JSON (sorted keys,
  non-finite floats as ``"inf"``/``"-inf"``/``"nan"`` strings, exactly
  as :class:`repro.engine.sinks.JsonlSink` would write it);
* ``meta(key TEXT PRIMARY KEY, value TEXT)`` — the code fingerprint the
  rows were computed under and the sweep manifest (the parameters that
  regenerate the scenario grid, written by the CLI so ``repro merge``
  can rebuild the final output without re-specifying them).

Writes are batched: :meth:`ResultStore.put` commits every
``commit_every`` rows and on :meth:`~ResultStore.close`, so a killed
sweep loses at most the last uncommitted batch — the resume pass simply
recomputes those scenarios.  SQLite's journal keeps committed batches
durable across ``SIGKILL``.

Stores merge by key: rows for the same key are interchangeable because
the key already binds scenario *and* code fingerprint, so
:func:`merge_stores` can combine shards computed on different machines
into one store with first-writer-wins semantics.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import Any

from repro.utils.checks import require
from repro.utils.jsonsafe import json_safe

#: Default number of puts between commits (checkpoint granularity).
DEFAULT_COMMIT_EVERY = 64

#: The exactness class under which backend recordings are
#: interchangeable (mirrors
#: :data:`repro.piecewise.backends.EXACT_BIT_IDENTICAL`; kept as a
#: literal so the store layer stays import-independent of the kernels).
_BIT_IDENTICAL = "bit-identical"

#: How long a writer waits on a locked database before erroring (s).
#: Concurrent writers (shard runs into one store, the serve job
#: executor next to a reader) serialize on SQLite's write lock; a
#: generous timeout turns contention into a wait, not a crash.
DEFAULT_BUSY_TIMEOUT = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    record TEXT NOT NULL
);
"""


def dumps_record(record: Mapping[str, Any]) -> str:
    """Serialize a sink record to the store's strict-JSON row format.

    Key *insertion* order is preserved (not sorted): records round-trip
    through the store in their original column order, so a
    :class:`~repro.engine.sinks.CsvSink` fed from the store infers the
    same header as one fed fresh results.
    """
    safe = {key: json_safe(value) for key, value in record.items()}
    return json.dumps(safe, allow_nan=False)


class ResultStore:
    """A persistent ``key → record`` cache backed by one SQLite file.

    Args:
        path: Store file; parent directories are created on demand.
        fingerprint: Code fingerprint the caller computes results under.
            Recorded on first use; later opens with a *different*
            fingerprint fail loudly — a store written by other code must
            never serve (or silently absorb) results.  ``None`` adopts
            whatever the store already records.
        commit_every: Puts between automatic commits (checkpoint
            granularity; lower is safer, higher is faster).
        busy_timeout: Seconds a write waits on another writer's lock
            before failing.  Multi-writer access (two shard processes
            sharing a store, the serve job executor) is legal: the
            store runs in WAL mode, so readers never block writers and
            concurrent writers queue on this timeout instead of dying
            with ``database is locked``.
    """

    def __init__(
        self,
        path: Path | str,
        fingerprint: str | None = None,
        commit_every: int = DEFAULT_COMMIT_EVERY,
        busy_timeout: float = DEFAULT_BUSY_TIMEOUT,
    ) -> None:
        require(commit_every > 0, "commit_every must be > 0")
        require(busy_timeout >= 0, "busy_timeout must be >= 0")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self.path, timeout=busy_timeout
        )
        try:
            # WAL keeps committed batches durable across SIGKILL *and*
            # lets concurrent processes read while a writer commits —
            # the access pattern of a shared serve store.  On
            # filesystems where WAL is unsupported SQLite keeps the
            # prior journal mode; correctness is unaffected, only
            # concurrency.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            self._conn.close()  # not close(): commit would raise again
            self._conn = None
            raise ValueError(
                f"{self.path} is not a valid result store: {exc}"
            ) from exc
        self._commit_every = commit_every
        self._uncommitted = 0
        stored = self._get_meta("fingerprint")
        if fingerprint is None:
            self.fingerprint = stored or ""
        else:
            if stored is not None and stored != fingerprint:
                self.close()
                raise ValueError(
                    f"store {self.path} was written under a different "
                    f"code fingerprint ({stored[:12]}… != "
                    f"{fingerprint[:12]}…); refusing to mix results — "
                    "use a fresh store"
                )
            if stored is None:
                self._set_meta("fingerprint", fingerprint)
            self.fingerprint = fingerprint

    # ------------------------------------------------------------------
    # meta
    # ------------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        require(self._conn is not None, f"store {self.path} is closed")
        return self._conn

    def _get_meta(self, key: str) -> str | None:
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        conn = self._connection()
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )
        conn.commit()

    @property
    def manifest(self) -> dict[str, Any] | None:
        """The sweep manifest (parameters regenerating the scenario
        grid), or ``None`` when none has been recorded."""
        raw = self._get_meta("manifest")
        return None if raw is None else json.loads(raw)

    def set_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Record the sweep manifest; re-recording must be identical.

        A store only ever belongs to one sweep shape — a manifest
        mismatch means the caller is resuming with different parameters,
        which would interleave incompatible scenario grids.
        """
        existing = self.manifest
        new = dict(manifest)
        require(
            existing is None or existing == new,
            f"store {self.path} already records manifest {existing}, "
            f"which differs from {new}; use a fresh store",
        )
        if existing is None:
            self._set_meta(
                "manifest", json.dumps(new, sort_keys=True, allow_nan=False)
            )

    @property
    def shard(self) -> str | None:
        """The shard scope this store was recorded under (a canonical
        ``i/N`` spec or ``"full"``), or ``None`` when none is set."""
        return self._get_meta("shard")

    def set_shard(self, scope: str) -> None:
        """Record the shard scope; re-recording must be identical.

        A store belongs to exactly one slice of one scenario grid.
        Resuming (or extending) it under a *different* ``--shard`` spec
        would silently interleave incompatible slices and emit a
        partial result file, so a mismatch fails loudly instead.
        """
        existing = self.shard
        require(
            existing is None or existing == scope,
            f"store {self.path} was recorded for shard {existing!r}, "
            f"but this run requests shard {scope!r}; mixing shard "
            "slices would silently produce a partial result file — "
            "rerun with the recorded shard spec (or none, for 'full') "
            "or use a fresh store",
        )
        if existing is None:
            self._set_meta("shard", scope)

    @property
    def backend_info(self) -> dict[str, str] | None:
        """The kernel backend this store's records were computed with:
        ``{"name": ..., "exactness": ...}``, or ``None`` when none has
        been recorded (pre-backend stores)."""
        raw = self._get_meta("backend")
        return None if raw is None else json.loads(raw)

    def set_backend_info(self, name: str, exactness: str) -> None:
        """Record the kernel backend (and its declared exactness class)
        that computed this store's records.

        Bit-identical backends are interchangeable by definition, so a
        store first recorded under one of them may be extended (resume,
        shard merge) under another — the first recording is kept, since
        the bytes cannot differ.  Any mix involving a *tolerance-class*
        backend would silently blend records computed under different
        numerics, so it fails loudly instead.
        """
        require(bool(name), "backend name must be non-empty")
        require(bool(exactness), "backend exactness must be non-empty")
        existing = self.backend_info
        new = {"name": name, "exactness": exactness}
        if existing is not None and existing != new:
            require(
                existing["exactness"] == _BIT_IDENTICAL
                and exactness == _BIT_IDENTICAL,
                f"store {self.path} records backend "
                f"{existing['name']!r} ({existing['exactness']}), but "
                f"this run uses backend {name!r} ({exactness}); mixing "
                "non-bit-identical backends would blend records "
                "computed under different numerics — rerun with the "
                "recorded backend or use a fresh store",
            )
            return
        if existing is None:
            self._set_meta(
                "backend", json.dumps(new, sort_keys=True, allow_nan=False)
            )

    # ------------------------------------------------------------------
    # job manifests
    # ------------------------------------------------------------------

    #: Meta-key namespace of per-job manifests (the ``serve`` kind).
    _JOB_PREFIX = "job:"

    def set_job_manifest(
        self, job_id: str, manifest: Mapping[str, Any]
    ) -> None:
        """Record one served job's manifest under its job id.

        A *serve* store is a shared memo table for many different grids
        at once, so unlike :meth:`set_manifest` (one sweep shape per
        store) it records one manifest **per job**, keyed by the job's
        content-addressed id.  Job ids are pure functions of the
        manifest, so re-recording must be identical — a mismatch means
        a hash collision or corrupted meta and fails loudly.
        """
        require(bool(job_id), "job id must be non-empty")
        key = self._JOB_PREFIX + job_id
        new = json.dumps(dict(manifest), sort_keys=True, allow_nan=False)
        existing = self._get_meta(key)
        require(
            existing is None or existing == new,
            f"store {self.path} already records a different manifest "
            f"for job {job_id}; refusing to overwrite",
        )
        if existing is None:
            self._set_meta(key, new)

    def job_manifest(self, job_id: str) -> dict[str, Any] | None:
        """The manifest recorded for ``job_id``, or ``None``."""
        raw = self._get_meta(self._JOB_PREFIX + job_id)
        return None if raw is None else json.loads(raw)

    def job_ids(self) -> list[str]:
        """All job ids with recorded manifests, sorted."""
        rows = self._connection().execute(
            "SELECT key FROM meta WHERE key LIKE ? ORDER BY key",
            (self._JOB_PREFIX + "%",),
        )
        return [key[len(self._JOB_PREFIX):] for (key,) in rows]

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Insert (or overwrite) one record; commits every
        ``commit_every`` puts."""
        self._connection().execute(
            "INSERT OR REPLACE INTO results (key, record) VALUES (?, ?)",
            (key, dumps_record(record)),
        )
        self._uncommitted += 1
        if self._uncommitted >= self._commit_every:
            self.commit()

    def get(self, key: str) -> dict[str, Any] | None:
        """The record stored under ``key``, or ``None``."""
        row = self._connection().execute(
            "SELECT record FROM results WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def __contains__(self, key: str) -> bool:
        return (
            self._connection()
            .execute("SELECT 1 FROM results WHERE key = ?", (key,))
            .fetchone()
            is not None
        )

    def __len__(self) -> int:
        return self._connection().execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()[0]

    def keys(self) -> Iterator[str]:
        """All keys, sorted (deterministic iteration order)."""
        for (key,) in self._connection().execute(
            "SELECT key FROM results ORDER BY key"
        ):
            yield key

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """All ``(key, record)`` pairs, sorted by key."""
        for key, record in self._connection().execute(
            "SELECT key, record FROM results ORDER BY key"
        ):
            yield key, json.loads(record)

    def merge_from(self, other: "ResultStore") -> int:
        """Absorb ``other``'s rows (first writer wins); returns the
        number of new rows.

        Both stores must carry the same code fingerprint — keys bind
        the fingerprint, so rows from a different one would be
        unreachable dead weight at best and a bug mask at worst.
        """
        require(
            other.fingerprint == self.fingerprint,
            f"cannot merge {other.path} (fingerprint "
            f"{other.fingerprint[:12]}…) into {self.path} "
            f"({self.fingerprint[:12]}…): stores were computed under "
            "different code",
        )
        conn = self._connection()
        before = len(self)
        conn.executemany(
            "INSERT OR IGNORE INTO results (key, record) VALUES (?, ?)",
            other._connection().execute("SELECT key, record FROM results"),
        )
        self.commit()
        return len(self) - before

    def adopt_rows(
        self, other: "ResultStore", keys: Iterable[str]
    ) -> int:
        """Copy ``other``'s records for ``keys`` into this store.

        The selective counterpart of :meth:`merge_from`: a shard store
        pre-seeded from a shared serve store should carry *only* its
        shard's rows, not the whole memo table (which holds unrelated
        grids).  First writer wins; missing keys are simply skipped —
        the shard run computes them.  Returns the number of new rows.
        """
        require(
            other.fingerprint == self.fingerprint,
            f"cannot adopt rows from {other.path} (fingerprint "
            f"{other.fingerprint[:12]}…) into {self.path} "
            f"({self.fingerprint[:12]}…): stores were computed under "
            "different code",
        )
        conn = self._connection()
        before = len(self)
        wanted = list(keys)
        # Chunk the IN(...) selects: SQLite caps bound parameters.
        chunk = 500
        for start in range(0, len(wanted), chunk):
            batch = wanted[start:start + chunk]
            marks = ",".join("?" for _ in batch)
            rows = other._connection().execute(
                f"SELECT key, record FROM results WHERE key IN ({marks})",
                batch,
            )
            conn.executemany(
                "INSERT OR IGNORE INTO results (key, record) "
                "VALUES (?, ?)",
                rows,
            )
        self.commit()
        return len(self) - before

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Force a durable checkpoint of all pending puts."""
        self._connection().commit()
        self._uncommitted = 0

    def close(self) -> None:
        """Commit and release the connection; idempotent."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def merge_stores(
    target: ResultStore, sources: Iterable[ResultStore]
) -> int:
    """Merge every source store into ``target``; returns rows added.

    Manifests must agree wherever present: the target adopts the first
    manifest it sees, and later sources with a *different* manifest are
    rejected (they describe a different sweep).  Backend recordings
    propagate the same way, under :meth:`ResultStore.set_backend_info`'s
    compatibility rule (bit-identical backends merge freely; tolerance
    classes must match exactly).
    """
    added = 0
    for source in sources:
        manifest = source.manifest
        if manifest is not None:
            target.set_manifest(manifest)
        backend = source.backend_info
        if backend is not None:
            target.set_backend_info(backend["name"], backend["exactness"])
        added += target.merge_from(source)
    return added
