"""Canonical scenario serialization and content-addressed keys.

A store key must be a pure function of *what is being computed*: the
scenario value and the code that evaluates it.  :func:`canonical_bytes`
maps a scenario (dataclass, mapping, sequence, scalar) to a stable byte
string — type-tagged, key-sorted, float-exact — and
:func:`scenario_key` hashes it together with a code fingerprint.  Two
processes on two machines computing the same scenario under the same
code therefore address the same store row, which is what makes sharded
sweeps mergeable and resumed sweeps exact.

Fingerprints come in two strengths:

* :func:`code_fingerprint` hashes the source of the modules that define
  the given objects — cheap, but blind to changes in modules they call;
* :func:`package_fingerprint` hashes every ``*.py`` file of a package —
  the conservative choice used by the CLI, where a stale cache hit is
  worse than a cold start.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import math
from importlib import import_module
from pathlib import Path
from types import ModuleType
from typing import Any

from repro.utils.checks import require

#: Bump when the canonical encoding or store record format changes;
#: part of every fingerprint, so old stores can never serve new code.
STORE_FORMAT_VERSION = 1


def _encode(value: Any) -> Any:
    """Map ``value`` onto a JSON-serializable canonical form.

    The encoding is type-tagged so that distinct Python values never
    collide: tuples and lists are distinguished, dataclasses carry
    their qualified type name, and non-finite floats (legal scenario
    and result values here — diverged bounds are ``inf``) become tagged
    strings because strict JSON cannot represent them.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            return {"__float__": repr(value)}
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                field.name: _encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(item) for item in value]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            require(
                isinstance(key, str),
                f"canonical mappings need str keys, got {key!r}",
            )
        return {key: _encode(item) for key, item in value.items()}
    raise ValueError(
        f"cannot canonicalize a {type(value).__name__}: {value!r}"
    )


def canonical_bytes(value: Any) -> bytes:
    """Stable byte serialization of a scenario value.

    Deterministic across processes and platforms: mapping keys are
    sorted, floats use ``repr`` round-trip semantics, container types
    are tagged.  Raises :class:`ValueError` for values outside the
    canonical vocabulary (sets, arbitrary objects…), so accidental
    non-determinism fails loudly instead of silently forking keys.
    """
    import json

    return json.dumps(
        _encode(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("ascii")


def scenario_key(scenario: Any, fingerprint: str = "") -> str:
    """Content-addressed store key for ``scenario`` under ``fingerprint``.

    Args:
        scenario: Any value :func:`canonical_bytes` accepts.
        fingerprint: Code fingerprint (see :func:`code_fingerprint` /
            :func:`package_fingerprint`); different fingerprints address
            disjoint key spaces, so results computed by different code
            can never be confused.

    Returns:
        A 64-character SHA-256 hex digest.
    """
    digest = hashlib.sha256()
    digest.update(f"v{STORE_FORMAT_VERSION}".encode("ascii"))
    digest.update(b"\x00")
    digest.update(fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_bytes(scenario))
    return digest.hexdigest()


def _module_of(obj: Any) -> ModuleType:
    if isinstance(obj, ModuleType):
        return obj
    module = inspect.getmodule(obj)
    require(module is not None, f"cannot resolve the module of {obj!r}")
    return module


def code_fingerprint(*objects: Any) -> str:
    """Fingerprint of the source files defining ``objects``.

    Accepts functions, classes or modules; duplicate modules are hashed
    once.  The digest covers the module *sources* (not bytecode), so it
    is stable across interpreter versions but changes whenever the
    defining code — including docstrings — changes.
    """
    require(bool(objects), "need at least one object to fingerprint")
    sources: dict[str, bytes] = {}
    for obj in objects:
        module = _module_of(obj)
        path = getattr(module, "__file__", None)
        require(
            path is not None,
            f"module {module.__name__!r} has no source file to fingerprint",
        )
        sources[module.__name__] = Path(path).read_bytes()
    return _digest_sources(sources)


def package_fingerprint(package: str | ModuleType = "repro") -> str:
    """Fingerprint of *every* ``*.py`` file of ``package``.

    The conservative fingerprint: any change anywhere in the package —
    a bound algorithm, a generator, a constant — invalidates all cached
    results.  A cold cache costs minutes; a stale hit costs a wrong
    figure, so the CLI always uses this one.
    """
    module = (
        import_module(package) if isinstance(package, str) else package
    )
    path = getattr(module, "__file__", None)
    require(
        path is not None and Path(path).name == "__init__.py",
        f"{module.__name__!r} is not a package with a source directory",
    )
    root = Path(path).parent
    sources = {
        str(source.relative_to(root)): source.read_bytes()
        for source in sorted(root.rglob("*.py"))
    }
    return _digest_sources(sources)


def _digest_sources(sources: dict[str, bytes]) -> str:
    digest = hashlib.sha256()
    digest.update(f"v{STORE_FORMAT_VERSION}".encode("ascii"))
    for name in sorted(sources):
        digest.update(b"\x00")
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(sources[name])
    return digest.hexdigest()
