"""Persistent result store (substrate S13): content-addressed caching
and checkpointing for sweeps.

Exact floating-NPR analyses are expensive and the evaluation space
(Q grids × functions × task-set seeds) is huge, so recomputing a sweep
from scratch — or losing a half-finished one to a crash — is the
dominant cost at scale.  This package makes sweep results *persistent*
and *addressable*:

* :mod:`repro.store.keys` canonicalizes scenarios (dataclasses, plain
  mappings, tuples, floats — including non-finite ones) into a stable
  byte form and hashes them, together with a code fingerprint, into a
  content-addressed key.  Same scenario + same code → same key, on any
  machine, in any process, in any order.
* :mod:`repro.store.backend` is the on-disk store: a single SQLite file
  holding ``key → record`` rows plus a small ``meta`` table (code
  fingerprint, sweep manifest).  It supports get/put/iterate and
  merging other stores, so shards computed on different machines
  combine into one result set.

Layering: ``store`` sits beside ``engine`` — it depends only on
``repro.utils`` — and :mod:`repro.engine.cached` glues the two
together (skip cached scenarios, checkpoint fresh ones, emit final
sinks from the store in scenario order).  See ``docs/architecture.md``.
"""

from repro.store.backend import ResultStore, merge_stores
from repro.store.keys import (
    canonical_bytes,
    code_fingerprint,
    package_fingerprint,
    scenario_key,
)

__all__ = [
    "ResultStore",
    "merge_stores",
    "canonical_bytes",
    "code_fingerprint",
    "package_fingerprint",
    "scenario_key",
]
