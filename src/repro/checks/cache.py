"""Content-fingerprinted incremental cache for the checks pass.

A full ``repro check`` parses every covered file and walks a call
graph over all of them; on a repo that hasn't changed since the last
run that work re-derives a result the previous run already proved.
This module persists per-file findings keyed by content fingerprints
and replays them when they are provably still valid, so the warm path
reduces to hashing file bytes (ASTs are parsed lazily and a clean
warm run never needs one).

Soundness is driven by each checker's declared ``cache_scope``
(:class:`repro.checks.model.Checker`):

* ``"file"`` — findings depend on the file alone; reused whenever the
  file's fingerprint is unchanged.
* ``"deps"`` — findings depend on the file plus its call-graph
  closure (functions it reaches + modules it imports, recorded at
  cache-write time); reused when the file, every dependency, *and*
  the covered file set are unchanged (a new file can capture an
  import that previously resolved externally).
* ``"tree"`` — findings couple arbitrary files (lock-order conflicts
  pair sites across modules; entry-point discovery is global); reused
  only when nothing at all changed.
* ``None`` — never cached: the rule reads live registries, not just
  source text, and runs every pass.

The cache stores *raw* findings — pre-suppression, pre-baseline — and
every run folds them through
:func:`repro.checks.model.fold_findings`, the same path a cold run
takes, so cold and warm reports are byte-identical by construction
(asserted in CI by running the pass twice and comparing JSON).

Cached entries exist only for the codes the writing run selected;
running with a different ``--select`` simply recomputes and rewrites.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from pathlib import Path

from repro.checks.model import (
    REPORT_VERSION,
    Checker,
    CheckReport,
    Finding,
    fold_findings,
    selected_checkers,
)
from repro.checks.source import SourceTree

#: Version stamp of the cache file format.
CACHE_VERSION = 1

__all__ = ["CACHE_VERSION", "rules_fingerprint", "run_with_cache"]


def rules_fingerprint() -> str:
    """A digest over the checker implementation itself.

    Any edit to any module in ``repro.checks`` (a new rule, a changed
    blocking set, a resolver fix) must invalidate every cached
    finding; hashing the package sources is the cheapest sound way to
    get that.
    """
    digest = hashlib.sha256()
    digest.update(f"report-v{REPORT_VERSION}".encode())
    package = Path(__file__).resolve().parent
    for path in sorted(package.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _load_cache(path: Path, fingerprint: str) -> dict | None:
    """The usable cached payload at ``path``, or ``None`` (= cold)."""
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None  # a corrupt cache is a cold run, never an error
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CACHE_VERSION:
        return None
    if payload.get("rules") != fingerprint:
        return None
    return payload


def _as_findings(entries: Sequence[dict]) -> list[Finding]:
    return [Finding(**entry) for entry in entries]


def _as_dicts(findings: Sequence[Finding]) -> list[dict]:
    return [
        {
            "code": f.code,
            "file": f.file,
            "line": f.line,
            "severity": f.severity,
            "message": f.message,
        }
        for f in findings
    ]


def run_with_cache(
    tree: SourceTree,
    cache_path: Path,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline: Sequence[tuple[str, str, int]] = (),
) -> CheckReport:
    """Run the selected checkers over ``tree``, reusing cached results.

    Behaviourally identical to :func:`repro.checks.model.run_checks`
    with the same arguments — same findings, same report, same
    ordering — except that provably-unchanged per-file results are
    replayed from ``cache_path`` instead of recomputed, and the cache
    file is rewritten to describe this run.
    """
    checkers = selected_checkers(select, ignore)
    codes_run = tuple(c.code for c in checkers)
    fingerprint = rules_fingerprint()
    shas = {file.rel: _sha(file.text) for file in tree.files}
    cached = _load_cache(cache_path, fingerprint)

    old_shas: dict[str, str] = cached.get("shas", {}) if cached else {}
    old_deps: dict[str, list] = cached.get("deps", {}) if cached else {}
    old_file: dict = cached.get("file_findings", {}) if cached else {}
    old_tree: dict = cached.get("tree_findings", {}) if cached else {}
    same_file_set = set(old_shas) == set(shas)
    all_clean = same_file_set and old_shas == shas

    def file_clean(rel: str) -> bool:
        return old_shas.get(rel) == shas[rel]

    def deps_clean(rel: str) -> bool:
        if not same_file_set or not file_clean(rel):
            return False
        if rel not in old_deps:
            return False
        return all(
            old_shas.get(dep) == shas.get(dep)
            for dep in old_deps[rel]
        )

    raw: list[Finding] = []
    fresh_by_code: dict[str, list[Finding]] = {}
    ran_fresh = False  # a *cacheable* checker recomputed something
    for checker in checkers:
        scope = checker.cache_scope
        if scope is None:
            # Never cached (live-registry rules) — and never a reason
            # to rewrite the cache file either.
            raw.extend(checker.run(tree))
            continue
        if scope == "tree":
            if cached is not None and all_clean and checker.code in old_tree:
                raw.extend(_as_findings(old_tree[checker.code]))
            else:
                found = list(checker.run(tree))
                fresh_by_code[checker.code] = found
                raw.extend(found)
                ran_fresh = True
            continue
        clean = file_clean if scope == "file" else deps_clean
        dirty = [
            file.rel
            for file in tree.files
            if cached is None
            or not clean(file.rel)
            or checker.code not in old_file.get(file.rel, {})
        ]
        reused = [
            file.rel for file in tree.files if file.rel not in set(dirty)
        ]
        for rel in reused:
            raw.extend(_as_findings(old_file[rel][checker.code]))
        if dirty:
            view = tree.restrict(dirty)
            found = list(checker.run(view))
            fresh_by_code[checker.code] = found
            raw.extend(found)
            ran_fresh = True

    report = fold_findings(tree, raw, baseline=baseline, codes_run=codes_run)

    if ran_fresh or cached is None:
        _write_cache(
            cache_path,
            tree,
            checkers,
            fingerprint,
            shas,
            raw,
            old_deps if all_clean else {},
        )
    return report


def _write_cache(
    path: Path,
    tree: SourceTree,
    checkers: Sequence[Checker],
    fingerprint: str,
    shas: dict[str, str],
    raw: Sequence[Finding],
    fallback_deps: dict[str, list],
) -> None:
    """Persist this run's raw findings, fingerprints and dep sets."""
    by_scope = {c.code: c.cache_scope for c in checkers}
    file_findings: dict[str, dict[str, list[dict]]] = {}
    tree_findings: dict[str, list[dict]] = {}
    for code, scope in sorted(by_scope.items()):
        if scope is None:
            continue
        code_findings = [f for f in raw if f.code == code]
        if scope == "tree":
            tree_findings[code] = _as_dicts(code_findings)
            continue
        for rel in shas:
            file_findings.setdefault(rel, {})[code] = _as_dicts(
                [f for f in code_findings if f.file == rel]
            )
    needs_deps = any(
        scope == "deps" for scope in by_scope.values()
    )
    deps: dict[str, list[str]] = {}
    if needs_deps:
        graph = tree.callgraph()
        deps = {
            rel: sorted(graph.file_closure(rel)) for rel in sorted(shas)
        }
    elif fallback_deps:
        deps = {
            rel: entry
            for rel, entry in fallback_deps.items()
            if rel in shas
        }
    payload = {
        "version": CACHE_VERSION,
        "rules": fingerprint,
        "shas": shas,
        "deps": deps,
        "file_findings": file_findings,
        "tree_findings": tree_findings,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
