"""Fork/subprocess-safety checkers (``FS``): what child workers touch.

``repro.serve``'s shard fan-out and the engine's process pools both
ship work to child processes: a module-level function is pickled (or
re-imported) and executed in a fresh interpreter whose inherited
state is a trap.  An asyncio event loop does not survive a fork;
threads do not exist in the child; a lock captured mid-acquisition
deadlocks forever.  These rules walk everything reachable from a
*subprocess entry point* — a function passed to
``ProcessPoolExecutor.submit`` or ``multiprocessing.Process(target=…)``
— and flag the state it must not touch:

* ``FS001`` — event-loop or thread machinery reachable from the entry
  point: any ``asyncio.*`` call, ``threading.Thread``/
  ``current_thread``/``enumerate``/``active_count``, or
  ``loop.run_until_complete``-style attribute calls.  Creating a
  *new* ``ThreadPoolExecutor`` inside the child is deliberately not
  flagged — fresh pools are legitimate child-side tools; inherited
  loop/thread handles are not.
* ``FS002`` — module-global mutation (``global``/``nonlocal``
  statements) reachable from the entry point.  A child's write to a
  module global silently diverges from the parent's copy — state
  smuggled through globals breaks the "scenario in, result out"
  worker contract that makes shard runs reproducible.

Both findings anchor on the offending statement and report the call
path from the entry point, so a violation three helpers deep is as
actionable as a lexical one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.callgraph import CallSite, _scoped_walk, format_path
from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceTree

#: ``threading`` entry points that reference *live* thread machinery.
_THREAD_STATE = frozenset(
    {
        "threading.Thread",
        "threading.current_thread",
        "threading.enumerate",
        "threading.active_count",
        "threading.main_thread",
        "threading.settrace",
        "threading.setprofile",
    }
)

#: Attribute calls that operate on an event loop object.
_LOOP_ATTRS = frozenset(
    {
        "run_until_complete",
        "run_in_executor",
        "call_soon_threadsafe",
        "create_task",
        "ensure_future",
    }
)


def _loop_or_thread_label(site: CallSite) -> str | None:
    """The loop/thread surface a resolved call site touches, if any."""
    if site.external is not None:
        if site.external.split(".")[0] == "asyncio":
            return site.external
        if site.external in _THREAD_STATE:
            return site.external
    if site.attr is not None and site.attr in _LOOP_ATTRS:
        return site.raw or f".{site.attr}"
    return None


def _fs001(tree: SourceTree) -> Iterator[Finding]:
    """Loop/thread state reachable from subprocess entry points."""
    graph = tree.callgraph()
    covered = {file.rel for file in tree.files}
    reported: set[tuple[str, int, str]] = set()
    for entry, launch in sorted(
        graph.fork_entries(), key=lambda pair: (pair[0], pair[1].line)
    ):
        info = graph.function(entry)
        for path, site in graph.walk_sites(entry):
            label = _loop_or_thread_label(site)
            if label is None:
                continue
            if site.file not in covered:
                continue
            key = (site.file, site.line, label)
            if key in reported:
                continue
            reported.add(key)
            yield Finding(
                code="FS001",
                file=site.file,
                line=site.line,
                severity="error",
                message=(
                    f"{label}() runs in a child process: reachable "
                    f"from subprocess entry point {info.qual} "
                    f"(launched at {launch.file}:{launch.line}) via "
                    f"{format_path(graph, path, label)}; loops and "
                    "threads do not survive the fork boundary"
                ),
            )


def _fs002(tree: SourceTree) -> Iterator[Finding]:
    """Module-global mutation reachable from subprocess entry points."""
    graph = tree.callgraph()
    covered = {file.rel for file in tree.files}
    reported: set[tuple[str, int]] = set()
    for entry, launch in sorted(
        graph.fork_entries(), key=lambda pair: (pair[0], pair[1].line)
    ):
        info = graph.function(entry)
        seen = {entry}
        queue: list[tuple[str, ...]] = [(entry,)]
        while queue:
            path = queue.pop(0)
            node_id = path[-1]
            reached = graph.function(node_id)
            if reached.file in covered:
                # _scoped_walk stays out of nested defs: a global
                # statement belongs to the function that is actually
                # reachable, not to whatever encloses it lexically.
                for stmt in _scoped_walk(graph.ast_of(node_id)):
                    if not isinstance(stmt, ast.Global):
                        continue
                    key = (reached.file, stmt.lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    names = ", ".join(stmt.names)
                    chain = " -> ".join(
                        graph.function(n).qual for n in path
                    )
                    yield Finding(
                        code="FS002",
                        file=reached.file,
                        line=stmt.lineno,
                        severity="error",
                        message=(
                            f"global {names} mutated in a child "
                            "process: reachable from subprocess entry "
                            f"point {info.qual} (launched at "
                            f"{launch.file}:{launch.line}) via "
                            f"{chain}; the parent never sees the "
                            "write — thread state through the "
                            "scenario and the returned result"
                        ),
                    )
            for site in graph.callees(node_id):
                if site.target is not None and site.target not in seen:
                    seen.add(site.target)
                    queue.append((*path, site.target))


def _register() -> None:
    register_check(
        Checker(
            code="FS001",
            group="fork-safety",
            severity="error",
            summary="asyncio loop or live-thread state reachable from "
            "a subprocess entry point",
            run=_fs001,
            cache_scope="tree",
        )
    )
    register_check(
        Checker(
            code="FS002",
            group="fork-safety",
            severity="error",
            summary="module-global mutation reachable from a "
            "subprocess entry point",
            run=_fs002,
            cache_scope="tree",
        )
    )


_register()
