"""The static-analysis core: findings, the checker registry, reports.

A *checker* is one named, registered rule (``DET001``, ``WP002``,
``ASY001``, ``RC004``…) that inspects the repository — its parsed
source tree, its live registries, or both — and yields
:class:`Finding` values.  :func:`run_checks` evaluates a selected set
of checkers against one :class:`~repro.checks.source.SourceTree`,
applies inline suppressions (``# repro-check: ignore[CODE]``) and the
committed baseline, and returns a :class:`CheckReport` the CLI renders
as text or JSON.

The registry mirrors the repo's other registries (scenario families,
kernel backends, workloads): checkers register at import time under a
stable code, duplicates fail loudly, and frontends enumerate
:func:`check_codes` rather than hard-coding the rule set — which is
also what keeps the generated checker table in ``docs/api.md`` honest.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.checks.source import SourceTree
from repro.utils.checks import require

#: Finding severities, mildest last.
SEVERITIES = ("error", "warning")

#: Version stamp of the JSON report and baseline formats.
REPORT_VERSION = 1


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        code: The checker's registry code (``DET001``, ``RC004``, …).
        file: Repo-relative posix path of the offending file.
        line: 1-based line number (best effort for introspection-based
            checkers, which map live objects back to their source).
        severity: ``"error"`` or ``"warning"``.
        message: One-line human explanation of the violation.
    """

    code: str
    file: str
    line: int
    severity: str
    message: str

    def __post_init__(self) -> None:
        require(
            self.severity in SEVERITIES,
            f"finding severity must be one of {', '.join(SEVERITIES)}; "
            f"got {self.severity!r}",
        )

    @property
    def location(self) -> str:
        """``file:line`` (what the text report prints and editors open)."""
        return f"{self.file}:{self.line}"

    def key(self) -> tuple[str, str, int]:
        """The identity a baseline entry matches on."""
        return (self.code, self.file, self.line)


@dataclass(frozen=True, slots=True)
class Checker:
    """One registered static-analysis rule.

    Attributes:
        code: Stable registry key (``<GROUP><NNN>``); what ``--select``/
            ``--ignore`` and suppression comments refer to.
        group: Checker group (``determinism``, ``worker-purity``,
            ``async-hygiene``, ``contracts``).
        severity: Severity stamped on the findings this rule yields.
        summary: One-line description (docs table, ``--help`` listings).
        run: ``SourceTree -> iterable of Finding``.  Introspection-based
            rules may ignore the tree and read the live registries.
        cache_scope: How the incremental cache may reuse this rule's
            findings for an unchanged file (see
            :mod:`repro.checks.cache`). ``"file"``: findings depend on
            the file alone. ``"deps"``: findings depend on the file
            plus its call-graph closure. ``"tree"``: findings couple
            arbitrary files (reused only when *nothing* changed).
            ``None``: never cached — the rule reads live registries,
            not just source text, so it runs every pass.
    """

    code: str
    group: str
    severity: str
    summary: str
    run: Callable[[SourceTree], Iterable[Finding]]
    cache_scope: str | None = None

    def __post_init__(self) -> None:
        require(
            self.cache_scope in (None, "file", "deps", "tree"),
            f"checker {self.code}: cache_scope must be None, 'file', "
            f"'deps' or 'tree'; got {self.cache_scope!r}",
        )


_CHECKERS: dict[str, Checker] = {}


def register_check(checker: Checker, replace: bool = False) -> None:
    """Register ``checker`` under its code (duplicates fail loudly)."""
    require(bool(checker.code), "checker needs a non-empty code")
    require(
        replace or checker.code not in _CHECKERS,
        f"checker {checker.code!r} is already registered",
    )
    _CHECKERS[checker.code] = checker


def get_check(code: str) -> Checker:
    """The registered checker called ``code`` (unknown codes fail with
    the valid choices listed)."""
    require(
        code in _CHECKERS,
        f"unknown checker {code!r}; registered checkers: "
        f"{', '.join(check_codes())}",
    )
    return _CHECKERS[code]


def check_codes() -> tuple[str, ...]:
    """All registered checker codes, in registration order."""
    return tuple(_CHECKERS)


def check_groups() -> tuple[str, ...]:
    """The distinct checker groups, in first-registration order."""
    groups: dict[str, None] = {}
    for checker in _CHECKERS.values():
        groups.setdefault(checker.group, None)
    return tuple(groups)


def _selected(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Checker]:
    """Resolve ``--select``/``--ignore`` terms into concrete checkers.

    A term matches a checker by exact code (``DET001``), by group name
    (``determinism``) or by code prefix (``DET``); unknown terms fail
    loudly so a typo never silently runs nothing.
    """

    def matches(term: str, checker: Checker) -> bool:
        return (
            term == checker.code
            or term == checker.group
            or checker.code.startswith(term)
        )

    def resolve(terms: Sequence[str]) -> list[Checker]:
        resolved: dict[str, Checker] = {}
        for term in terms:
            hits = [c for c in _CHECKERS.values() if matches(term, c)]
            require(
                bool(hits),
                f"unknown checker selection {term!r}; valid codes: "
                f"{', '.join(check_codes())}; valid groups: "
                f"{', '.join(check_groups())}",
            )
            for checker in hits:
                resolved[checker.code] = checker
        return list(resolved.values())

    chosen = (
        resolve(select) if select else list(_CHECKERS.values())
    )
    if ignore:
        dropped = {c.code for c in resolve(ignore)}
        chosen = [c for c in chosen if c.code not in dropped]
    return chosen


def selected_checkers(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Checker]:
    """The concrete checkers a ``--select``/``--ignore`` pair runs.

    Public alias of the resolution :func:`run_checks` uses, so the
    incremental cache layer partitions exactly the same checker set by
    ``cache_scope`` instead of re-implementing term matching.
    """
    return _selected(select, ignore)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> list[tuple[str, str, int]]:
    """Parse the committed baseline file into finding keys.

    A missing file is an empty baseline; a malformed one fails loudly
    (a silently ignored baseline would un-grandfather every finding).
    """
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"baseline file {path} is not valid JSON: {exc}"
        ) from exc
    require(
        isinstance(payload, Mapping)
        and payload.get("version") == REPORT_VERSION
        and isinstance(payload.get("findings"), list),
        f"baseline file {path} must be "
        f'{{"version": {REPORT_VERSION}, "findings": [...]}}',
    )
    keys = []
    for entry in payload["findings"]:
        require(
            isinstance(entry, Mapping)
            and isinstance(entry.get("code"), str)
            and isinstance(entry.get("file"), str)
            and isinstance(entry.get("line"), int),
            f"baseline entry {entry!r} needs string code/file and int line",
        )
        keys.append((entry["code"], entry["file"], entry["line"]))
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            {"code": f.code, "file": f.file, "line": f.line}
            for f in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def prune_baseline(
    path: Path, stale: Sequence[tuple[str, str, int]]
) -> int:
    """Drop the ``stale`` entries from the baseline file in place.

    Entries are matched by ``(code, file, line)`` key; surviving
    entries keep every extra field they carry (notably the ``reason``
    comment the committed baseline requires per entry).  Returns the
    number of entries removed.
    """
    if not path.exists() or not stale:
        return 0
    load_baseline(path)  # validate before rewriting
    payload = json.loads(path.read_text())
    doomed = set(stale)
    kept = [
        entry
        for entry in payload["findings"]
        if (entry["code"], entry["file"], entry["line"]) not in doomed
    ]
    removed = len(payload["findings"]) - len(kept)
    payload["findings"] = kept
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return removed


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Outcome of one :func:`run_checks` pass.

    Attributes:
        findings: Violations that survived suppression and the
            baseline, in ``(file, line, code)`` order.
        suppressed: Findings silenced by inline
            ``# repro-check: ignore[CODE]`` comments.
        baselined: Findings matched (and absorbed) by the baseline.
        stale: Baseline entries (``(code, file, line)`` keys, sorted)
            whose finding no longer fires — the baseline is
            self-cleaning, so these fail the pass until pruned
            (``--prune-baseline``).  Only codes that actually ran can
            declare an entry stale.
        codes_run: The checker codes that actually ran.
        files_checked: Files the source tree covered.
    """

    findings: tuple[Finding, ...]
    suppressed: int
    baselined: int
    codes_run: tuple[str, ...]
    files_checked: int
    stale: tuple[tuple[str, str, int], ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the pass is clean (no live findings, no stale
        baseline entries)."""
        return not self.findings and not self.stale

    def to_json(self) -> dict[str, Any]:
        """The JSON report (``--format json``; schema-tested)."""
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "findings": [asdict(f) for f in self.findings],
            "stale": [
                {"code": code, "file": file, "line": line}
                for code, file, line in self.stale
            ],
            "summary": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale": len(self.stale),
                "checks": len(self.codes_run),
                "files": self.files_checked,
            },
        }

    def render_text(self) -> str:
        """The human report (``--format text``, the default)."""
        tail = (
            f"{len(self.codes_run)} check(s), "
            f"{len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed, "
            f"{self.baselined} baselined, "
            f"{self.files_checked} file(s)"
        )
        if self.ok:
            return f"OK: {tail}"
        lines = [
            f"{f.location}: {f.code} [{f.severity}] {f.message}"
            for f in self.findings
        ]
        lines.extend(
            f"{file}:{line}: {code} [stale-baseline] entry no longer "
            "fires; prune it with --prune-baseline"
            for code, file, line in self.stale
        )
        return "\n".join([*lines, tail])


def run_checks(
    tree: SourceTree,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline: Sequence[tuple[str, str, int]] = (),
) -> CheckReport:
    """Run the selected checkers over ``tree`` and fold the results.

    Suppression: a finding whose source line carries
    ``# repro-check: ignore[CODE]`` (its own code listed) is counted,
    not reported.  Baseline: a finding whose ``(code, file, line)`` key
    appears in ``baseline`` is grandfathered — and a baseline entry
    matching *no* raw finding of a checker that ran is reported stale
    (the baseline may only ever shrink, and it shrinks loudly).
    Everything else is live.
    """
    checkers = _selected(select, ignore)
    raw: list[Finding] = []
    for checker in checkers:
        raw.extend(checker.run(tree))
    return fold_findings(
        tree,
        raw,
        baseline=baseline,
        codes_run=tuple(c.code for c in checkers),
    )


def fold_findings(
    tree: SourceTree,
    raw: Sequence[Finding],
    baseline: Sequence[tuple[str, str, int]],
    codes_run: tuple[str, ...],
) -> CheckReport:
    """Fold raw findings through suppression/baseline into a report.

    Split out of :func:`run_checks` so the incremental cache — which
    assembles ``raw`` from a mix of fresh checker runs and cached
    per-file results — produces byte-identical reports through the
    same folding path.
    """
    baseline_keys = set(baseline)
    findings: list[Finding] = []
    suppressed = 0
    baselined = 0
    matched: set[tuple[str, str, int]] = set()
    for finding in raw:
        if finding.key() in baseline_keys:
            matched.add(finding.key())
        if tree.is_suppressed(finding.file, finding.line, finding.code):
            suppressed += 1
        elif finding.key() in baseline_keys:
            baselined += 1
        else:
            findings.append(finding)
    ran = set(codes_run)
    stale = sorted(
        key
        for key in baseline_keys - matched
        if key[0] in ran
    )
    findings.sort(key=lambda f: (f.file, f.line, f.code))
    return CheckReport(
        findings=tuple(findings),
        suppressed=suppressed,
        baselined=baselined,
        codes_run=codes_run,
        files_checked=len(tree.files),
        stale=tuple(stale),
    )
