"""SARIF 2.1.0 output for the checks pass (GitHub code scanning).

``--format sarif`` renders a :class:`~repro.checks.model.CheckReport`
as a Static Analysis Results Interchange Format log, the shape
GitHub's ``upload-sarif`` action ingests to surface findings as
code-scanning annotations on the offending lines of a pull request.

The emitter stays deliberately minimal — one run, one tool driver,
one rule per registered checker code that ran, one result per live
finding — and uses only required-plus-stable properties, so the
output validates against the 2.1.0 schema (asserted structurally in
``tests/checks/test_sarif.py``) without depending on any SARIF
library.  Relative paths are emitted against the ``SRCROOT`` URI base
so the log is machine-independent: CI sets the base to the checkout
root.
"""

from __future__ import annotations

from typing import Any

from repro import __version__
from repro.checks.model import CheckReport, get_check

#: The canonical 2.1.0 schema URI GitHub's ingestion accepts.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

SARIF_VERSION = "2.1.0"

#: Finding severity → SARIF result/configuration level.
_LEVELS = {"error": "error", "warning": "warning"}

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "report_to_sarif"]


def report_to_sarif(report: CheckReport) -> dict[str, Any]:
    """The SARIF 2.1.0 log of one checks report.

    Every code in ``report.codes_run`` becomes a driver rule (so a
    clean run still advertises what was checked), every live finding
    a result; suppressed/baselined findings are absent by design —
    code scanning should mirror exactly what fails the pass.
    """
    rules = []
    rule_index = {}
    for index, code in enumerate(report.codes_run):
        checker = get_check(code)
        rule_index[code] = index
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": checker.summary},
                "defaultConfiguration": {
                    "level": _LEVELS[checker.severity]
                },
                "properties": {"group": checker.group},
            }
        )
    results = []
    for finding in report.findings:
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index[finding.code],
                "level": _LEVELS[finding.severity],
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.file,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": finding.line},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "informationUri": (
                            "https://example.invalid/repro-checks"
                        ),
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "description": {
                            "text": "repository checkout root"
                        }
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
