"""Determinism checkers (``DET``): no hidden nondeterminism in results.

Everything this reproduction promises about caching and distribution —
content-addressed store keys that two machines agree on, resumed and
sharded streams byte-identical to uninterrupted runs, kernel backends
bit-identical to the scalar reference, single-flight dedup in
``repro.serve`` — is a determinism claim.  These rules flag the source
patterns that silently break it:

* ``DET001`` — module-level ``random.*`` calls (shared, unseeded
  global state; scenario workers must thread an explicit
  ``random.Random(seed)``);
* ``DET002`` — wall-clock/entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4`` …) whose value
  would leak into results or keys;
* ``DET003`` — the builtin ``hash()`` outside ``__hash__``: string
  hashes are randomized per process (``PYTHONHASHSEED``), so a
  ``hash()``-derived value can never feed a store key or wire id;
* ``DET004`` — iterating a set display/comprehension/constructor
  directly: element order varies across processes, so any
  serialization fed from it is unstable (wrap in ``sorted``);
* ``DET005`` — ``==``/``!=`` against a non-integral float literal:
  analysis values are accumulated floats, and exact comparison against
  ``0.1``-style literals is a rounding bug waiting for an input;
* ``DET006`` — the interprocedural upgrade of DET001/DET002: a
  wall-clock, entropy or global-``random`` read reachable from a
  *registered scenario-family worker* through any chain of calls.
  Workers are what the engine fans out over process pools, and the
  registry's contract is that their results depend on the scenario
  alone — the finding anchors on the worker's first hop into the
  offending chain and reports the whole path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.callgraph import CallSite, format_path, transitive_hits
from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceFile, SourceTree, dotted_name

#: ``random``-module attributes that are fine at module level (the
#: seeded/class entry points a deterministic caller uses).
_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: Exact dotted names of wall-clock/entropy reads (DET002).
_CLOCK_ENTROPY = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

#: Dotted-name *suffixes* of naive now/today constructors (DET002);
#: matched on the last two parts so ``datetime.datetime.now`` and a
#: ``from datetime import datetime`` style ``datetime.now`` both hit.
_CLOCK_SUFFIXES = (
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)


def _calls(file: SourceFile) -> Iterator[tuple[ast.Call, str | None]]:
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            yield node, dotted_name(node.func)


def _det001(tree: SourceTree) -> Iterator[Finding]:
    for file in tree.files:
        for call, name in _calls(file):
            if name is None or "." not in name:
                continue
            parts = name.split(".")
            hits_module_random = (
                parts[0] == "random" and parts[1] not in _RANDOM_OK
            )
            # numpy's legacy global generator: np.random.rand & co.
            hits_np_random = len(parts) >= 3 and parts[1] == "random"
            if hits_module_random or hits_np_random:
                yield Finding(
                    code="DET001",
                    file=file.rel,
                    line=call.lineno,
                    severity="error",
                    message=(
                        f"module-level randomness {name}() draws from "
                        "shared unseeded state; thread an explicit "
                        "random.Random(seed) through the scenario"
                    ),
                )


def _det002(tree: SourceTree) -> Iterator[Finding]:
    for file in tree.files:
        for call, name in _calls(file):
            if name is None:
                continue
            parts = tuple(name.split("."))
            if name in _CLOCK_ENTROPY or (
                len(parts) >= 2 and parts[-2:] in _CLOCK_SUFFIXES
            ):
                yield Finding(
                    code="DET002",
                    file=file.rel,
                    line=call.lineno,
                    severity="error",
                    message=(
                        f"{name}() reads wall-clock/entropy state; a "
                        "value derived from it can never enter results, "
                        "store keys or wire ids (perf_counter durations "
                        "for reporting are fine — they stay out of "
                        "records)"
                    ),
                )


class _HashVisitor(ast.NodeVisitor):
    """Find builtin ``hash(...)`` calls outside ``__hash__`` bodies."""

    def __init__(self) -> None:
        self.hits: list[int] = []
        self._stack: list[str] = []

    def _visit_function(self, node: ast.AST) -> None:
        self._stack.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "__hash__" not in self._stack
        ):
            self.hits.append(node.lineno)
        self.generic_visit(node)


def _det003(tree: SourceTree) -> Iterator[Finding]:
    for file in tree.files:
        visitor = _HashVisitor()
        visitor.visit(file.tree)
        for line in visitor.hits:
            yield Finding(
                code="DET003",
                file=file.rel,
                line=line,
                severity="error",
                message=(
                    "builtin hash() is process-seeded for strings "
                    "(PYTHONHASHSEED); derive identities from "
                    "repro.store.keys.canonical_bytes + hashlib instead"
                ),
            )


def _iterates_unordered(node: ast.AST) -> bool:
    """Whether ``node`` (an iterable position) is an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _det004(tree: SourceTree) -> Iterator[Finding]:
    for file in tree.files:
        spots: list[int] = []
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _iterates_unordered(node.iter):
                    spots.append(node.iter.lineno)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _iterates_unordered(generator.iter):
                        spots.append(generator.iter.lineno)
        for line in spots:
            yield Finding(
                code="DET004",
                file=file.rel,
                line=line,
                severity="error",
                message=(
                    "iterating a set directly yields an unstable order "
                    "across processes; wrap it in sorted(...) before "
                    "anything ordered (output, serialization) consumes it"
                ),
            )


def _det005(tree: SourceTree) -> Iterator[Finding]:
    for file in tree.files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in (node.left, *node.comparators):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and not side.value.is_integer()
                ):
                    yield Finding(
                        code="DET005",
                        file=file.rel,
                        line=node.lineno,
                        severity="error",
                        message=(
                            f"exact equality against the float literal "
                            f"{side.value!r} on analysis values; compare "
                            "with an explicit tolerance (math.isclose or "
                            "the module's documented epsilon)"
                        ),
                    )
                    break


def entropy_label(site: CallSite) -> str | None:
    """The nondeterministic surface a resolved call site reads, if
    any.

    The union of DET001's and DET002's lexical sets, matched against
    the call graph's canonical external names (``from time import
    time`` still reads ``time.time``).
    """
    name = site.external
    if name is None:
        return None
    parts = name.split(".")
    if name in _CLOCK_ENTROPY:
        return name
    if len(parts) >= 2 and tuple(parts[-2:]) in _CLOCK_SUFFIXES:
        return name
    if (
        len(parts) >= 2
        and parts[0] == "random"
        and parts[1] not in _RANDOM_OK
    ):
        return name
    if len(parts) >= 3 and parts[1] == "random":
        return name
    return None


def _det006(tree: SourceTree) -> Iterator[Finding]:
    """``DET006``: entropy reachable from registered family workers."""
    graph = tree.callgraph()
    covered = {file.rel for file in tree.files}
    roles: dict[str, str] = {}
    for node_id, _site, role in graph.worker_entries():
        roles.setdefault(node_id, role)
    for node_id, role in sorted(roles.items()):
        info = graph.function(node_id)
        if info.file not in covered:
            continue
        seen: set[tuple[int, str]] = set()
        for first, path, label in transitive_hits(
            graph, node_id, entropy_label
        ):
            if (first.line, label) in seen:
                continue
            seen.add((first.line, label))
            yield Finding(
                code="DET006",
                file=info.file,
                line=first.line,
                severity="error",
                message=(
                    f"scenario-family {role} {info.qual} reaches "
                    f"nondeterministic {label}() through "
                    f"{format_path(graph, path, label)}; worker results "
                    "must depend on the scenario alone (thread "
                    "random.Random(seed), never the wall clock)"
                ),
            )


def _register() -> None:
    register_check(
        Checker(
            code="DET001",
            group="determinism",
            severity="error",
            summary="module-level random.* call (shared unseeded state)",
            run=_det001,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="DET002",
            group="determinism",
            severity="error",
            summary="wall-clock/entropy read (time.time, datetime.now, "
            "os.urandom, uuid4)",
            run=_det002,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="DET003",
            group="determinism",
            severity="error",
            summary="builtin hash() outside __hash__ (PYTHONHASHSEED-"
            "randomized)",
            run=_det003,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="DET004",
            group="determinism",
            severity="error",
            summary="direct set iteration (unstable order feeding "
            "ordered consumers)",
            run=_det004,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="DET005",
            group="determinism",
            severity="error",
            summary="float == against a non-integral literal on "
            "analysis values",
            run=_det005,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="DET006",
            group="determinism",
            severity="error",
            summary="entropy/clock read reachable from a registered "
            "family worker (path reported)",
            run=_det006,
            cache_scope="tree",
        )
    )


_register()
