"""Lock-discipline checkers (``LK``): deadlock and stall patterns.

``repro.serve`` mixes an asyncio event loop, an executor thread pool
and two mutable tables guarded by ``threading`` primitives
(``_slot_lock``, ``_claims_cond``).  That combination has exactly
three classic failure shapes, and each gets a rule:

* ``LK001`` — *inconsistent acquisition order*: somewhere lock ``B``
  is taken while ``A`` is held, somewhere else ``A`` while ``B`` is
  held (lexically nested ``with`` blocks or through any call chain).
  Two threads running those paths concurrently deadlock; the fix is
  one documented order.
* ``LK002`` — *blocking while holding a lock*: file/socket/subprocess
  I/O, ``future.result()``, ``concurrent.futures.wait`` or foreign
  ``.wait()``/``.acquire()`` reachable while a ``threading`` lock is
  held.  Every other thread touching the lock stalls for the
  operation's duration.  ``Condition.wait()`` *on a held condition
  itself* is the one exemption — that is the primitive's contract (it
  releases the lock while waiting).
* ``LK003`` — *await under a sync lock*: an ``await`` expression
  lexically inside a ``with some_threading_lock:`` block of a
  coroutine.  The coroutine parks at the await point still holding
  the lock; any executor thread then contending for it blocks its
  worker, and the loop can deadlock against its own pool.

Lock objects are identified structurally: ``self.x =
threading.Lock()`` (``RLock``/``Condition``/``Semaphore`` included)
gives the class-scoped identity ``module:Class.x``; a module-level
``x = threading.Lock()`` gives ``module:x``.  ``with`` statements on
those names are acquisitions.  ``.join()`` is deliberately *not* in
the blocking set (``str.join`` would drown the signal); thread joins
under a lock surface through the futures rules instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    format_path,
    module_name,
)
from repro.checks.hygiene import blocking_label
from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceTree, dotted_name

#: ``threading`` constructors whose instances count as locks here.
_LOCK_TYPES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Future-synchronisation calls that block the calling thread.
_FUTURE_BLOCKING = frozenset(
    {"concurrent.futures.wait", "concurrent.futures.as_completed"}
)

#: Attribute calls that block on synchronisation objects.
_SYNC_ATTRS = frozenset({"result", "wait", "acquire"})


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _LOCK_TYPES


def _collect_locks(graph: CallGraph, tree: SourceTree) -> frozenset[str]:
    """Every structurally-identified lock in the tree.

    Identities: ``module:Class.attr`` for a ``self.attr = Lock()``
    assignment in any of the class's methods; ``module:name`` for a
    module-level ``name = Lock()``.
    """
    locks: set[str] = set()
    for info in graph.functions():
        if info.class_name is None:
            continue
        for stmt in ast.walk(graph.ast_of(info.node_id)):
            if not (
                isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value)
            ):
                continue
            for target in stmt.targets:
                name = dotted_name(target)
                if name is not None and name.startswith("self."):
                    attr = name[len("self."):]
                    locks.add(f"{info.module}:{info.class_name}.{attr}")
    for file in tree.all_files():
        module = module_name(file.rel)
        for stmt in file.tree.body:
            if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        locks.add(f"{module}:{target.id}")
    return frozenset(locks)


def _identity(
    name: str | None, info: FunctionInfo, locks: frozenset[str]
) -> str | None:
    """The lock identity a dotted source name refers to, if known."""
    if name is None:
        return None
    if name.startswith("self.") and info.class_name is not None:
        attr = name[len("self."):]
        ident = f"{info.module}:{info.class_name}.{attr}"
        return ident if ident in locks else None
    if "." not in name:
        ident = f"{info.module}:{name}"
        return ident if ident in locks else None
    return None


def _short(ident: str) -> str:
    """``module:Class.attr`` → ``Class.attr`` for messages."""
    return ident.split(":", 1)[1]


class _LockFacts:
    """What one function does with locks, lexically.

    Attributes:
        acquires: Lock identities taken anywhere in the body.
        pairs: ``(held, taken, line)`` — ``taken`` acquired by a
            ``with`` nested inside one holding ``held``.
        held_calls: ``(held identities, site)`` for every call made
            while at least one lock is held.
        held_awaits: ``(held identities, line)`` per ``await``
            evaluated under a held sync lock.
    """

    def __init__(self) -> None:
        self.acquires: set[str] = set()
        self.pairs: list[tuple[str, str, int]] = []
        self.held_calls: list[tuple[tuple[str, ...], CallSite]] = []
        self.held_awaits: list[tuple[tuple[str, ...], int]] = []


def _scan_function(
    graph: CallGraph, info: FunctionInfo, locks: frozenset[str]
) -> _LockFacts:
    facts = _LockFacts()
    sites_by_line: dict[int, list[CallSite]] = {}
    for site in graph.callees(info.node_id):
        sites_by_line.setdefault(site.line, []).append(site)
    claimed: set[int] = set()

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return  # nested scopes are their own graph nodes
        if isinstance(node, ast.With):
            taken: list[str] = []
            for item in node.items:
                visit(item.context_expr, held)
                ident = _identity(
                    dotted_name(item.context_expr), info, locks
                )
                if ident is not None:
                    facts.acquires.add(ident)
                    for holder in held:
                        if holder != ident:
                            facts.pairs.append(
                                (holder, ident, node.lineno)
                            )
                    taken.append(ident)
            inner = (*held, *taken)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Await) and held:
            facts.held_awaits.append((held, node.lineno))
        if isinstance(node, ast.Call) and held:
            for site in sites_by_line.get(node.lineno, ()):
                if id(site) not in claimed:
                    claimed.add(id(site))
                    facts.held_calls.append((held, site))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for child in ast.iter_child_nodes(graph.ast_of(info.node_id)):
        visit(child, ())
    return facts


class _Analysis:
    """Shared per-tree lock analysis the three LK rules read."""

    def __init__(self, tree: SourceTree) -> None:
        self.graph = tree.callgraph()
        self.locks = _collect_locks(self.graph, tree)
        self.facts: dict[str, _LockFacts] = {
            info.node_id: _scan_function(self.graph, info, self.locks)
            for info in self.graph.functions()
        }
        self._closure: dict[str, frozenset[str]] = {}
        self._hits: dict[
            str, list[tuple[tuple[str, ...], CallSite, str, str | None]]
        ] = {}

    # -- transitive acquisitions (LK001) ---------------------------------

    def closure_acquires(self, node_id: str) -> frozenset[str]:
        """Locks acquired by ``node_id`` or anything it reaches."""
        memo = self._closure.get(node_id)
        if memo is not None:
            return memo
        acquired: set[str] = set()
        seen = {node_id}
        queue = [node_id]
        while queue:
            current = queue.pop(0)
            acquired |= self.facts[current].acquires
            for site in self.graph.callees(current):
                if site.target is not None and site.target not in seen:
                    seen.add(site.target)
                    queue.append(site.target)
        result = frozenset(acquired)
        self._closure[node_id] = result
        return result

    # -- transitive blocking (LK002) -------------------------------------

    def blocking_hits(
        self, node_id: str
    ) -> list[tuple[tuple[str, ...], CallSite, str, str | None]]:
        """Blocking sites reachable from ``node_id`` (depth 0 up).

        Each hit is ``(path, site, label, receiver identity)`` — the
        identity is set for ``.wait()``/``.acquire()`` on a known lock
        so the caller can apply the held-condition exemption with its
        own held set.
        """
        memo = self._hits.get(node_id)
        if memo is not None:
            return memo
        hits: list[tuple[tuple[str, ...], CallSite, str, str | None]] = []
        for path, site in self.graph.walk_sites(node_id):
            container = self.graph.function(path[-1])
            label, ident = self._blocking(site, container)
            if label is not None:
                hits.append((path, site, label, ident))
        self._hits[node_id] = hits
        return hits

    def _blocking(
        self, site: CallSite, container: FunctionInfo
    ) -> tuple[str | None, str | None]:
        """Classify one site: ``(blocking label, receiver identity)``."""
        if site.target is not None:
            # Calls into functions of the tree are walked, not
            # pattern-matched (an internal method named .result() or
            # .wait() is not a futures call).
            return None, None
        if site.external in _FUTURE_BLOCKING:
            return site.external, None
        label = blocking_label(site)
        if label is not None:
            return label, None
        attr = site.attr or (
            site.raw.split(".")[-1] if site.raw else None
        )
        if attr in _SYNC_ATTRS:
            receiver = (
                site.raw.rsplit(".", 1)[0]
                if site.raw and "." in site.raw
                else None
            )
            ident = _identity(receiver, container, self.locks)
            return site.raw or f".{attr}", ident
        return None, None


def _analysis(tree: SourceTree) -> _Analysis:
    """The tree's lock analysis, computed once and shared.

    Memoized on the call graph object, which full trees and their
    restricted views share — so the three LK rules (and cold/warm
    cache runs over the same tree) scan each function exactly once.
    """
    graph = tree.callgraph()
    memo = getattr(graph, "_lock_analysis", None)
    if memo is None:
        memo = _Analysis(tree)
        graph._lock_analysis = memo
    return memo


def _lk001(tree: SourceTree) -> Iterator[Finding]:
    """Inconsistent lock acquisition order across the tree."""
    analysis = _analysis(tree)
    graph = analysis.graph
    covered = {file.rel for file in tree.files}
    # Ordered pair occurrences: (held, taken) -> [(file, line)].
    occurrences: dict[tuple[str, str], list[tuple[str, int]]] = {}
    for info in graph.functions():
        facts = analysis.facts[info.node_id]
        for held, taken, line in facts.pairs:
            occurrences.setdefault((held, taken), []).append(
                (info.file, line)
            )
        for held, site in facts.held_calls:
            if site.target is None:
                continue
            for taken in analysis.closure_acquires(site.target):
                for holder in held:
                    if holder != taken:
                        occurrences.setdefault(
                            (holder, taken), []
                        ).append((info.file, site.line))
    for (held, taken), spots in sorted(occurrences.items()):
        reverse = occurrences.get((taken, held))
        if not reverse:
            continue
        counter_file, counter_line = sorted(reverse)[0]
        for file, line in sorted(set(spots)):
            if file not in covered:
                continue
            yield Finding(
                code="LK001",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"lock {_short(taken)} is acquired while "
                    f"{_short(held)} is held, but the opposite order "
                    f"occurs at {counter_file}:{counter_line}; two "
                    "threads running both paths deadlock — pick one "
                    "acquisition order"
                ),
            )


def _lk002(tree: SourceTree) -> Iterator[Finding]:
    """Blocking operations reachable while a lock is held."""
    analysis = _analysis(tree)
    graph = analysis.graph
    for file in tree.files:
        rel = file.rel
        for info in graph.functions():
            if info.file != rel:
                continue
            facts = analysis.facts[info.node_id]
            seen: set[tuple[int, str]] = set()
            for held, site in facts.held_calls:
                label, ident, path = None, None, None
                direct_label, direct_ident = analysis._blocking(
                    site, info
                )
                if direct_label is not None:
                    label, ident = direct_label, direct_ident
                    path = (info.node_id,)
                elif site.target is not None:
                    for hit in analysis.blocking_hits(site.target):
                        hit_path, _hit_site, hit_label, hit_ident = hit
                        if hit_ident is not None and hit_ident in held:
                            continue  # held-condition exemption
                        label, ident = hit_label, hit_ident
                        path = (info.node_id, *hit_path)
                        break
                if label is None or path is None:
                    continue
                if ident is not None and ident in held:
                    continue  # cond.wait() under its own lock
                if (site.line, label) in seen:
                    continue
                seen.add((site.line, label))
                yield Finding(
                    code="LK002",
                    file=rel,
                    line=site.line,
                    severity="error",
                    message=(
                        f"blocking {label}() reachable while "
                        f"{', '.join(_short(h) for h in held)} is held "
                        f"({format_path(graph, path, label)}); every "
                        "thread contending for the lock stalls for its "
                        "duration — release the lock first"
                    ),
                )


def _lk003(tree: SourceTree) -> Iterator[Finding]:
    """``await`` parked under a held synchronous lock."""
    analysis = _analysis(tree)
    graph = analysis.graph
    for file in tree.files:
        for info in graph.functions():
            if info.file != file.rel or not info.is_async:
                continue
            for held, line in analysis.facts[info.node_id].held_awaits:
                yield Finding(
                    code="LK003",
                    file=file.rel,
                    line=line,
                    severity="error",
                    message=(
                        f"await while holding sync lock "
                        f"{', '.join(_short(h) for h in held)}: the "
                        "coroutine parks holding it and executor "
                        "threads contending for the lock stall the "
                        "pool — do the awaiting outside the with block"
                    ),
                )


def _register() -> None:
    register_check(
        Checker(
            code="LK001",
            group="concurrency",
            severity="error",
            summary="inconsistent lock acquisition order between two "
            "sites (deadlock)",
            run=_lk001,
            cache_scope="tree",
        )
    )
    register_check(
        Checker(
            code="LK002",
            group="concurrency",
            severity="error",
            summary="blocking I/O or future-wait reachable while a "
            "threading lock is held",
            run=_lk002,
            cache_scope="deps",
        )
    )
    register_check(
        Checker(
            code="LK003",
            group="concurrency",
            severity="error",
            summary="await under a held synchronous lock inside a "
            "coroutine",
            run=_lk003,
            cache_scope="deps",
        )
    )


_register()
