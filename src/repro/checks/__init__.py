"""Domain-invariant static analysis for the reproduction codebase.

The repo's load-bearing promises — content-addressed store keys two
machines agree on, byte-identical resumed/sharded streams,
bit-identical kernel backends, process-pool workers that pickle, an
event loop that never stalls — are easy to break with one innocent
line.  This package turns those invariants into registered, named
checkers over a parsed source tree, the live registries, and an
interprocedural call graph (:mod:`repro.checks.callgraph`):

* ``determinism`` (``DET001``–``DET006``) — unseeded randomness,
  wall-clock/entropy reads, ``hash()`` of strings, unordered set
  iteration, exact float-literal equality, and entropy reachable from
  registered family workers through any call chain;
* ``worker-purity`` (``WP001``–``WP003``) — frozen scenario
  dataclasses, picklable top-level family callables, no
  ``global``/``nonlocal`` in workers;
* ``async-hygiene`` (``ASY001``–``ASY002``) — blocking calls inside
  (or transitively reachable from) ``async def``;
* ``concurrency`` (``LK001``–``LK003``) — inconsistent lock order,
  blocking while holding a lock, ``await`` under a sync lock;
* ``fork-safety`` (``FS001``–``FS002``) — loop/thread state or global
  mutation reachable from subprocess entry points;
* ``contracts`` (``RC001``–``RC005``) — registry/wire declarations
  that must not drift from the code they describe.

Run it as ``python -m repro check`` (see :mod:`repro.api.workloads`),
or programmatically via :func:`run_repo_checks`.  False positives are
silenced per line with ``# repro-check: ignore[CODE]``; pre-existing
findings are grandfathered in the committed ``checks-baseline.json``,
where every entry carries a reason and a stale entry (one whose
finding no longer fires) fails the pass until pruned
(``--prune-baseline``).  With a cache path
(``--cache``/:func:`run_repo_checks`'s ``cache_path``) unchanged
files replay their previous findings instead of being re-analysed —
see :mod:`repro.checks.cache`.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

# Importing the checker modules is what registers their rules; the
# order here fixes the registration (and docs-table) order.
from repro.checks import (  # noqa: F401
    concurrency,
    contracts,
    determinism,
    forksafety,
    hygiene,
    purity,
)
from repro.checks.cache import rules_fingerprint, run_with_cache
from repro.checks.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_graph,
)
from repro.checks.model import (
    REPORT_VERSION,
    Checker,
    CheckReport,
    Finding,
    check_codes,
    check_groups,
    get_check,
    load_baseline,
    prune_baseline,
    register_check,
    run_checks,
    write_baseline,
)
from repro.checks.sarif import report_to_sarif
from repro.checks.source import (
    DEFAULT_SUBDIRS,
    SourceFile,
    SourceTree,
    load_tree,
    parse_file,
    repo_root,
)

__all__ = [
    "REPORT_VERSION",
    "CallGraph",
    "CallSite",
    "Checker",
    "CheckReport",
    "Finding",
    "FunctionInfo",
    "build_graph",
    "check_codes",
    "check_groups",
    "get_check",
    "register_check",
    "run_checks",
    "run_with_cache",
    "rules_fingerprint",
    "load_baseline",
    "prune_baseline",
    "write_baseline",
    "report_to_sarif",
    "DEFAULT_SUBDIRS",
    "SourceFile",
    "SourceTree",
    "load_tree",
    "parse_file",
    "repo_root",
    "run_repo_checks",
]


def run_repo_checks(
    root: Path | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline_path: Path | None = None,
    cache_path: Path | None = None,
) -> CheckReport:
    """Run the full pass the ``check`` workload and CI job run.

    Args:
        root: Repository root (default: inferred from the package
            layout via :func:`repo_root`).
        select: Checker codes/groups/prefixes to run (default: all).
        ignore: Checker codes/groups/prefixes to drop from the run.
        baseline_path: Grandfathered-findings file (default:
            ``<root>/checks-baseline.json``; missing file = empty).
        cache_path: Incremental-cache file; ``None`` (the default)
            runs cold.  Cold and cached runs produce identical
            reports (see :mod:`repro.checks.cache`).
    """
    base = Path(root) if root is not None else repo_root()
    tree = load_tree(base)
    if baseline_path is None:
        baseline_path = base / "checks-baseline.json"
    baseline = load_baseline(Path(baseline_path))
    if cache_path is not None:
        return run_with_cache(
            tree,
            Path(cache_path),
            select=select,
            ignore=ignore,
            baseline=baseline,
        )
    return run_checks(
        tree,
        select=select,
        ignore=ignore,
        baseline=baseline,
    )
