"""Domain-invariant static analysis for the reproduction codebase.

The repo's load-bearing promises — content-addressed store keys two
machines agree on, byte-identical resumed/sharded streams,
bit-identical kernel backends, process-pool workers that pickle, an
event loop that never stalls — are easy to break with one innocent
line.  This package turns those invariants into registered, named
checkers over a parsed source tree and the live registries:

* ``determinism`` (``DET001``–``DET005``) — unseeded randomness,
  wall-clock/entropy reads, ``hash()`` of strings, unordered set
  iteration, exact float-literal equality;
* ``worker-purity`` (``WP001``–``WP003``) — frozen scenario
  dataclasses, picklable top-level family callables, no
  ``global``/``nonlocal`` in workers;
* ``async-hygiene`` (``ASY001``) — blocking calls inside ``async def``;
* ``contracts`` (``RC001``–``RC005``) — registry/wire declarations
  that must not drift from the code they describe.

Run it as ``python -m repro check`` (see :mod:`repro.api.workloads`),
or programmatically via :func:`run_repo_checks`.  False positives are
silenced per line with ``# repro-check: ignore[CODE]``; pre-existing
findings are grandfathered in the committed ``checks-baseline.json``,
which CI asserts only ever shrinks.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

# Importing the checker modules is what registers their rules; the
# order here fixes the registration (and docs-table) order.
from repro.checks import contracts, determinism, hygiene, purity  # noqa: F401
from repro.checks.model import (
    REPORT_VERSION,
    Checker,
    CheckReport,
    Finding,
    check_codes,
    check_groups,
    get_check,
    load_baseline,
    register_check,
    run_checks,
    write_baseline,
)
from repro.checks.source import (
    DEFAULT_SUBDIRS,
    SourceFile,
    SourceTree,
    load_tree,
    parse_file,
    repo_root,
)

__all__ = [
    "REPORT_VERSION",
    "Checker",
    "CheckReport",
    "Finding",
    "check_codes",
    "check_groups",
    "get_check",
    "register_check",
    "run_checks",
    "load_baseline",
    "write_baseline",
    "DEFAULT_SUBDIRS",
    "SourceFile",
    "SourceTree",
    "load_tree",
    "parse_file",
    "repo_root",
    "run_repo_checks",
]


def run_repo_checks(
    root: Path | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline_path: Path | None = None,
) -> CheckReport:
    """Run the full pass the ``check`` workload and CI job run.

    Args:
        root: Repository root (default: inferred from the package
            layout via :func:`repo_root`).
        select: Checker codes/groups/prefixes to run (default: all).
        ignore: Checker codes/groups/prefixes to drop from the run.
        baseline_path: Grandfathered-findings file (default:
            ``<root>/checks-baseline.json``; missing file = empty).
    """
    base = Path(root) if root is not None else repo_root()
    tree = load_tree(base)
    if baseline_path is None:
        baseline_path = base / "checks-baseline.json"
    return run_checks(
        tree,
        select=select,
        ignore=ignore,
        baseline=load_baseline(Path(baseline_path)),
    )
