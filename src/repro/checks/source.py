"""Source-tree loading for the static-analysis pass.

One :class:`SourceTree` is parsed per ``repro check`` run and shared by
every checker: each covered file is read, AST-parsed and scanned for
inline suppression comments exactly once, so adding a checker never
adds a parse pass.  The tree also owns the object-to-location mapping
the introspection-based checkers (worker purity, registry contracts)
use to anchor findings on real ``file:line`` positions.

Suppression grammar: a line containing ``# repro-check:
ignore[CODE]`` (one code, or several comma-separated) silences exactly
those codes on exactly that line.  There is no file-level or wildcard
form — a suppression documents one reviewed false positive, not a
blanket opt-out — and :func:`repro.checks.model.run_checks` counts
every use so the report keeps them visible.
"""

from __future__ import annotations

import ast
import inspect
import re
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.utils.checks import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.checks.callgraph import CallGraph

#: Directories (repo-relative) a default tree covers.
DEFAULT_SUBDIRS = ("src/repro", "examples")

#: The inline suppression marker: ``# repro-check: ignore[DET001]``.
_SUPPRESSION = re.compile(r"#\s*repro-check:\s*ignore\[([A-Z0-9, ]+)\]")


def _scan_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the codes suppressed on them."""
    found: dict[int, frozenset[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESSION.search(line)
        if match is not None:
            codes = frozenset(
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if codes:
                found[number] = codes
    return found


@dataclass(frozen=True, slots=True)
class SourceFile:
    """One parsed file of the tree.

    Attributes:
        path: Absolute filesystem path.
        rel: Repo-relative posix path (what findings report).
        text: Raw file contents.
        lines: The contents split into lines (1-based via index+1).
        suppressions: ``line -> codes`` inline suppression map.

    The AST is parsed lazily on first ``tree`` access and memoized:
    a warm incremental-cache run over an unchanged repo hashes file
    contents but never needs an AST, and skipping the parse is where
    most of the warm-run speedup comes from.
    """

    path: Path
    rel: str
    text: str
    lines: list[str]
    suppressions: dict[int, frozenset[str]]
    _ast: ast.Module | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def tree(self) -> ast.Module:
        """The parsed ``ast.Module`` (parsed on first access)."""
        if self._ast is None:
            object.__setattr__(
                self,
                "_ast",
                ast.parse(self.text, filename=str(self.path)),
            )
        assert self._ast is not None
        return self._ast


@dataclass(frozen=True)
class SourceTree:
    """Every file one ``repro check`` pass covers, parsed once.

    Attributes:
        root: Repository root the relative paths hang off.
        files: The parsed files, in sorted path order.
    """

    root: Path
    files: tuple[SourceFile, ...]
    _by_rel: dict[str, SourceFile] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _graph: list = field(
        init=False, repr=False, compare=False, default_factory=list
    )

    def __post_init__(self) -> None:
        self._by_rel.update({f.rel: f for f in self.files})

    def file(self, rel: str) -> SourceFile | None:
        """The parsed file at repo-relative ``rel``, if covered."""
        return self._by_rel.get(rel)

    def all_files(self) -> tuple[SourceFile, ...]:
        """Every covered file (same as ``files`` on a full tree).

        Restricted views (:meth:`restrict`) override this: checkers
        iterate ``files`` for the set they must *report on*, while the
        call graph always builds over ``all_files()`` so transitive
        queries cross the view boundary.
        """
        return self.files

    def callgraph(self) -> CallGraph:
        """The interprocedural call graph, built once per tree."""
        if not self._graph:
            from repro.checks.callgraph import build_graph

            self._graph.append(build_graph(self))
        return self._graph[0]

    def restrict(self, rels: Iterable[str]) -> SourceView:
        """A view over this tree covering only ``rels``.

        The incremental cache re-runs per-file checkers on exactly the
        changed files; a view keeps the checker contract (iterate
        ``tree.files``) while sharing this tree's call graph and
        suppression tables.
        """
        wanted = set(rels)
        return SourceView(
            base=self,
            files=tuple(f for f in self.files if f.rel in wanted),
        )

    def is_suppressed(self, rel: str, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on ``rel:line``."""
        covered = self._by_rel.get(rel)
        if covered is None:
            return False
        return code in covered.suppressions.get(line, frozenset())

    def suppression_count(self) -> int:
        """Total inline suppression markers across the tree."""
        return sum(len(f.suppressions) for f in self.files)

    # ------------------------------------------------------------------
    # locating live objects (introspection-based checkers)
    # ------------------------------------------------------------------

    def locate(self, obj: Any) -> tuple[str, int]:
        """Best-effort ``(rel_path, line)`` of a live object.

        Introspection-based checkers anchor findings about registered
        objects (scenario dataclasses, worker functions, backend
        entries) on the object's definition site.  Objects defined
        outside the tree (REPLs, test fabrications) fall back to the
        object's module name at line 1 so the finding still renders.
        """
        try:
            path = Path(inspect.getsourcefile(obj) or "")
            line = inspect.getsourcelines(obj)[1]
        except (TypeError, OSError):
            return (getattr(obj, "__module__", str(obj)) or str(obj), 1)
        try:
            rel = path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            rel = path.name
        return (rel, line)


@dataclass(frozen=True)
class SourceView:
    """A restricted window onto a :class:`SourceTree`.

    ``files`` covers only the requested subset (what per-file checkers
    iterate and report on); every cross-file capability — suppression
    lookup, object location, the call graph, ``all_files()`` —
    delegates to the full base tree, so transitive checkers looking
    *through* the view still see the whole repository.
    """

    base: SourceTree
    files: tuple[SourceFile, ...]

    @property
    def root(self) -> Path:
        return self.base.root

    def file(self, rel: str) -> SourceFile | None:
        """The parsed file at ``rel`` — full-tree lookup."""
        return self.base.file(rel)

    def all_files(self) -> tuple[SourceFile, ...]:
        """The full underlying file set (call-graph coverage)."""
        return self.base.files

    def callgraph(self) -> CallGraph:
        """The base tree's call graph (shared, built once)."""
        return self.base.callgraph()

    def is_suppressed(self, rel: str, line: int, code: str) -> bool:
        return self.base.is_suppressed(rel, line, code)

    def suppression_count(self) -> int:
        return sum(len(f.suppressions) for f in self.files)

    def locate(self, obj: Any) -> tuple[str, int]:
        return self.base.locate(obj)


def parse_file(path: Path, rel: str) -> SourceFile:
    """Read one file into a :class:`SourceFile` (AST parsed lazily)."""
    text = path.read_text()
    return SourceFile(
        path=path,
        rel=rel,
        text=text,
        lines=text.splitlines(),
        suppressions=_scan_suppressions(text.splitlines()),
    )


def load_tree(
    root: Path, subdirs: tuple[str, ...] = DEFAULT_SUBDIRS
) -> SourceTree:
    """Parse every ``*.py`` file under ``root``'s covered subdirs."""
    root = Path(root)
    require(root.is_dir(), f"check root {root} is not a directory")
    files: list[SourceFile] = []
    for subdir in subdirs:
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            files.append(parse_file(path, rel))
    return SourceTree(root=root, files=tuple(files))


def repo_root() -> Path:
    """The repository root inferred from the installed package layout.

    The source layout is ``<root>/src/repro/...``; walking two levels
    up from the package lands on ``<root>``.  Callers needing a
    different root (tests over fixture trees) pass one explicitly.
    """
    import repro

    return Path(repro.__file__).resolve().parents[2]


def dotted_name(node: ast.AST) -> str | None:
    """The dotted name of a ``Name``/``Attribute`` chain, if it is one.

    ``time.sleep`` → ``"time.sleep"``; anything rooted in a call or
    subscript (``foo().bar``) yields ``None`` — the checkers match
    known module-level names, not arbitrary expressions.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
