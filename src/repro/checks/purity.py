"""Worker-purity checkers (``WP``): scenario workers must pickle and
must not mutate shared state.

The batch engine fans scenario chunks over *process* pools: a worker
travels to its pool process by pickle (so it must be an importable
module-level function), its scenario must be an immutable value (the
store keys a frozen dataclass; a mutable scenario could drift between
keying and evaluation), and nothing it does may leak across scenarios
through module globals (results must be identical whether a scenario
runs first, last, in-process or in a fresh pool worker).

* ``WP001`` — a registered family's scenario dataclass is not frozen;
* ``WP002`` — a registered family callable (worker, batch worker,
  decoder, context key) is not importable by its qualified name, so it
  cannot pickle into a process pool;
* ``WP003`` — a registered worker's body uses ``global``/``nonlocal``,
  i.e. mutates state that outlives one scenario evaluation.

These rules are *registry-driven*: they check whatever is registered at
run time, so a new family is covered the moment
:func:`repro.engine.registry.register_family` sees it.  The ``families``
parameter exists for the fixture tests, which check fabricated families
without touching the real registry.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Callable, Iterable, Iterator
from importlib import import_module
from typing import Any

from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceTree


def _registered_families() -> list[Any]:
    from repro.engine.registry import family_names, get_family

    return [get_family(name) for name in family_names()]


def _family_callables(family: Any) -> Iterator[tuple[str, Callable]]:
    for role in ("worker", "batch_worker", "decoder", "context_key"):
        func = getattr(family, role, None)
        if func is not None:
            yield role, func


def _importable(func: Callable) -> bool:
    """Whether ``func`` pickles by reference (module + qualname)."""
    qualname = getattr(func, "__qualname__", "")
    module = getattr(func, "__module__", "")
    if not qualname or not module or "<" in qualname:
        return False  # lambdas and <locals> never pickle
    try:
        target: Any = import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError):
        return False
    return target is func


def check_frozen_scenarios(
    tree: SourceTree, families: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``WP001`` over ``families`` (default: the live registry)."""
    for family in families if families is not None else _registered_families():
        scenario = family.scenario_type
        frozen = (
            dataclasses.is_dataclass(scenario)
            and scenario.__dataclass_params__.frozen
        )
        if not frozen:
            file, line = tree.locate(scenario)
            yield Finding(
                code="WP001",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"scenario type {scenario.__name__!r} of family "
                    f"{family.name!r} must be a frozen dataclass: the "
                    "store keys the scenario value, and a mutable one "
                    "could drift between keying and evaluation"
                ),
            )


def check_picklable_callables(
    tree: SourceTree, families: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``WP002`` over ``families`` (default: the live registry)."""
    for family in families if families is not None else _registered_families():
        for role, func in _family_callables(family):
            if not _importable(func):
                file, line = tree.locate(func)
                yield Finding(
                    code="WP002",
                    file=file,
                    line=line,
                    severity="error",
                    message=(
                        f"{role} of family {family.name!r} "
                        f"({getattr(func, '__qualname__', func)!r}) is not "
                        "importable by its qualified name, so it cannot "
                        "pickle into the engine's process pools; define "
                        "it at module top level"
                    ),
                )


def check_worker_globals(
    tree: SourceTree, families: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``WP003``: registered worker bodies must not rebind outer state."""
    for family in families if families is not None else _registered_families():
        for role in ("worker", "batch_worker"):
            func = getattr(family, role, None)
            if func is None:
                continue
            file, line = tree.locate(func)
            covered = tree.file(file)
            if covered is None:
                continue  # defined outside the tree (tests)
            definition = _function_at(covered.tree, func.__name__, line)
            if definition is None:
                continue
            for node in ast.walk(definition):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    names = ", ".join(node.names)
                    yield Finding(
                        code="WP003",
                        file=file,
                        line=node.lineno,
                        severity="error",
                        message=(
                            f"{role} {func.__name__!r} of family "
                            f"{family.name!r} rebinds outer state "
                            f"({names}); workers must be pure — shared "
                            "state breaks run-order and pool-placement "
                            "independence"
                        ),
                    )


def _function_at(
    module: ast.Module, name: str, line: int
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    best = None
    for node in ast.walk(module):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            if node.lineno == line:
                return node
            best = best or node
    return best


def _register() -> None:
    register_check(
        Checker(
            code="WP001",
            group="worker-purity",
            severity="error",
            summary="registered scenario dataclass is not frozen",
            run=check_frozen_scenarios,
        )
    )
    register_check(
        Checker(
            code="WP002",
            group="worker-purity",
            severity="error",
            summary="registered family callable does not pickle "
            "(not module top level)",
            run=check_picklable_callables,
        )
    )
    register_check(
        Checker(
            code="WP003",
            group="worker-purity",
            severity="error",
            summary="registered worker mutates module globals",
            run=check_worker_globals,
        )
    )


_register()
