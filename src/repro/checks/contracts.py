"""Registry/wire contract checkers (``RC``): declared surfaces agree.

The facade's registries promise more than "a name resolves": the
engine groups work by each family's *declared* shared-artifact context,
the docs/CLI render each family's axes from its *declared* field help,
the store records each backend's *declared* exactness, and the serve
protocol round-trips requests through the *declared* wire field set.
Each of those declarations can silently drift from the code it
describes; these rules re-derive both sides and fail on disagreement:

* ``RC001`` — a registered family misses its shared-artifact
  declaration (``context_key`` + ``artifacts``);
* ``RC002`` — a family's ``field_help`` drifts from its scenario
  dataclass (an undocumented axis, or help for a field that no longer
  exists);
* ``RC003`` — a kernel backend's declarations are inconsistent
  (no exactness class, ``requires``/``available`` disagreement, a
  batch kernel on a backend not declared batch-capable, kernels on an
  unavailable backend);
* ``RC004`` — the wire option/request field sets
  (:mod:`repro.api.wire`) drift from the
  :class:`~repro.api.options.ExecutionOptions` /
  :class:`~repro.api.request.RunRequest` dataclasses — the drift that
  would make a served request silently drop a new execution flag;
* ``RC005`` — a workload declares an unknown shared-flag group, or a
  parameter whose name collides with one of its enabled groups' CLI
  flags.

Every rule takes its subjects as optional parameters so the fixture
tests can check fabricated registries — which is also how
``tests/checks/test_contracts.py`` demonstrates that adding a field to
``ExecutionOptions`` without a matching wire entry fails the check.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceTree

#: The shared execution-flag groups a workload may enable.
KNOWN_FLAG_GROUPS = frozenset(
    {"engine", "store", "shard", "sink", "backend"}
)


def _registered_families() -> list[Any]:
    from repro.engine.registry import family_names, get_family

    return [get_family(name) for name in family_names()]


def _registered_backends() -> list[Any]:
    from repro.piecewise.backends import backend_names, get_backend

    return [get_backend(name) for name in backend_names()]


def _registered_workloads() -> list[Any]:
    from repro.api.workloads import get_workload, workload_names

    return [get_workload(name) for name in workload_names()]


# ----------------------------------------------------------------------
# RC001 / RC002 — scenario-family declarations
# ----------------------------------------------------------------------


def check_family_context(
    tree: SourceTree, families: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``RC001``: every family declares its shared-artifact context."""
    for family in families if families is not None else _registered_families():
        file, line = tree.locate(family.scenario_type)
        if family.context_key is None:
            yield Finding(
                code="RC001",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"family {family.name!r} declares no context_key; "
                    "the engine cannot group its grid into "
                    "shared-artifact contexts, so every scenario "
                    "rebuilds per-group state from scratch"
                ),
            )
        elif not family.artifacts:
            yield Finding(
                code="RC001",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"family {family.name!r} has a context_key but "
                    "declares no artifacts; a grouping key without "
                    "consumed artifacts buys nothing and hides what "
                    "the worker actually reads"
                ),
            )


def check_family_axes(
    tree: SourceTree, families: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``RC002``: ``field_help`` covers the scenario dataclass exactly."""
    for family in families if families is not None else _registered_families():
        file, line = tree.locate(family.scenario_type)
        declared = {name for name, _ in family.field_help}
        actual = {
            f.name for f in dataclasses.fields(family.scenario_type)
        }
        for missing in sorted(actual - declared):
            yield Finding(
                code="RC002",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"family {family.name!r} axis {missing!r} has no "
                    "field_help entry; the generated docs and campaign "
                    "error messages would present an undocumented axis"
                ),
            )
        for stale in sorted(declared - actual):
            yield Finding(
                code="RC002",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"family {family.name!r} documents axis {stale!r} "
                    "which its scenario dataclass no longer has"
                ),
            )


# ----------------------------------------------------------------------
# RC003 — kernel-backend declarations
# ----------------------------------------------------------------------


def check_backend_declarations(
    tree: SourceTree, backends: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``RC003``: backend registry entries are internally consistent."""
    for backend in backends if backends is not None else _registered_backends():
        file, line = tree.locate(type(backend))
        problems: list[str] = []
        if not backend.exactness:
            problems.append(
                "declares no exactness class (the store records it "
                "with every backend-evaluated run)"
            )
        if backend.requires is None and not backend.available:
            problems.append(
                "needs no third-party module yet registers unavailable"
            )
        if backend.available and backend.evaluate_many is None:
            problems.append(
                "registers available without a point-evaluation kernel"
            )
        if not backend.available and (
            backend.evaluate_many is not None
            or backend.bound_batch is not None
        ):
            problems.append(
                "registers unavailable but still carries kernels"
            )
        if backend.bound_batch is not None and not backend.batch_capable:
            problems.append(
                "ships a batch bound kernel without declaring "
                "batch_capable (the docs table would lie)"
            )
        for problem in problems:
            yield Finding(
                code="RC003",
                file=file,
                line=line,
                severity="error",
                message=f"backend {backend.name!r} {problem}",
            )


# ----------------------------------------------------------------------
# RC004 — wire format vs dataclass field sets
# ----------------------------------------------------------------------


def check_wire_contract(
    tree: SourceTree,
    options_cls: type | None = None,
    request_cls: type | None = None,
    wire_option_fields: Sequence[str] | None = None,
    wire_request_fields: Sequence[str] | None = None,
) -> Iterator[Finding]:
    """``RC004``: the wire field sets mirror the dataclasses exactly.

    A field added to :class:`ExecutionOptions` without a matching
    :mod:`repro.api.wire` entry would silently vanish on every served
    request (the server rebuilds the request from its wire form); a
    wire field without a dataclass field would crash the rebuild.  The
    same holds one level up for :class:`RunRequest` itself.
    """
    from repro.api import wire as wire_module

    if options_cls is None:
        from repro.api.options import ExecutionOptions

        options_cls = ExecutionOptions
    if request_cls is None:
        from repro.api.request import RunRequest

        request_cls = RunRequest
    if wire_option_fields is None:
        wire_option_fields = tuple(wire_module._SCALAR_OPTION_FIELDS) + tuple(
            wire_module._COMPOUND_OPTION_FIELDS
        )
    if wire_request_fields is None:
        wire_request_fields = tuple(wire_module._REQUEST_FIELDS)

    file, line = tree.locate(options_cls)
    declared = set(wire_option_fields)
    actual = {f.name for f in dataclasses.fields(options_cls)}
    for missing in sorted(actual - declared):
        yield Finding(
            code="RC004",
            file=file,
            line=line,
            severity="error",
            message=(
                f"{options_cls.__name__} field {missing!r} has no "
                "api/wire.py mapping; a served request would silently "
                "drop it (add it to the wire field tuples and bump "
                "WIRE_VERSION if the change is incompatible)"
            ),
        )
    for stale in sorted(declared - actual):
        yield Finding(
            code="RC004",
            file=file,
            line=line,
            severity="error",
            message=(
                f"api/wire.py maps option field {stale!r} which "
                f"{options_cls.__name__} no longer declares"
            ),
        )

    file, line = tree.locate(request_cls)
    declared = set(wire_request_fields)
    if "version" not in declared:
        yield Finding(
            code="RC004",
            file=file,
            line=line,
            severity="error",
            message=(
                "the wire request mapping does not reserve a 'version' "
                "key; decoders could not reject incompatible payloads"
            ),
        )
    declared.discard("version")  # envelope key, not a dataclass field
    actual = {f.name for f in dataclasses.fields(request_cls)}
    for missing in sorted(actual - declared):
        yield Finding(
            code="RC004",
            file=file,
            line=line,
            severity="error",
            message=(
                f"{request_cls.__name__} field {missing!r} is not in "
                "the wire request mapping; served submissions would "
                "silently drop it"
            ),
        )
    for stale in sorted(declared - actual):
        yield Finding(
            code="RC004",
            file=file,
            line=line,
            severity="error",
            message=(
                f"the wire request mapping names field {stale!r} which "
                f"{request_cls.__name__} no longer declares"
            ),
        )


# ----------------------------------------------------------------------
# RC005 — workload flag-group declarations
# ----------------------------------------------------------------------


def _group_dests() -> dict[str, set[str]]:
    """Each shared flag group's argparse dest names (from the CLI)."""
    from repro.cli import _EXECUTION_FLAGS

    return {
        group: {flag.lstrip("-").replace("-", "_") for flag, _ in flags}
        for group, flags in _EXECUTION_FLAGS.items()
    }


def check_workload_flags(
    tree: SourceTree, workloads: Iterable[Any] | None = None
) -> Iterator[Finding]:
    """``RC005``: workload flag groups exist and cannot shadow params."""
    dests = _group_dests()
    subjects = (
        workloads if workloads is not None else _registered_workloads()
    )
    for workload in subjects:
        file, line = tree.locate(workload.runner)
        for group in sorted(set(workload.flags) - KNOWN_FLAG_GROUPS):
            yield Finding(
                code="RC005",
                file=file,
                line=line,
                severity="error",
                message=(
                    f"workload {workload.name!r} enables unknown flag "
                    f"group {group!r}; known groups: "
                    f"{', '.join(sorted(KNOWN_FLAG_GROUPS))}"
                ),
            )
        enabled = {
            dest
            for group in workload.flags
            for dest in dests.get(group, set())
        }
        for param in workload.parameters:
            if param.name in enabled:
                yield Finding(
                    code="RC005",
                    file=file,
                    line=line,
                    severity="error",
                    message=(
                        f"workload {workload.name!r} parameter "
                        f"{param.name!r} collides with an enabled "
                        "shared execution flag; argparse would bind "
                        "one value to both surfaces"
                    ),
                )


def _register() -> None:
    register_check(
        Checker(
            code="RC001",
            group="contracts",
            severity="error",
            summary="scenario family missing its shared-artifact "
            "declaration",
            run=check_family_context,
        )
    )
    register_check(
        Checker(
            code="RC002",
            group="contracts",
            severity="error",
            summary="family field_help drifted from its scenario "
            "dataclass",
            run=check_family_axes,
        )
    )
    register_check(
        Checker(
            code="RC003",
            group="contracts",
            severity="error",
            summary="kernel backend declarations inconsistent "
            "(exactness/availability/batch)",
            run=check_backend_declarations,
        )
    )
    register_check(
        Checker(
            code="RC004",
            group="contracts",
            severity="error",
            summary="wire field set drifted from "
            "ExecutionOptions/RunRequest",
            run=check_wire_contract,
        )
    )
    register_check(
        Checker(
            code="RC005",
            group="contracts",
            severity="error",
            summary="workload flag groups unknown or shadowed by "
            "parameters",
            run=check_workload_flags,
        )
    )


_register()
