"""Async-hygiene checker (``ASY``): no blocking calls in coroutines.

``repro.serve`` runs one asyncio event loop for every connection it
serves; a single synchronous call inside a coroutine stalls *all* of
them (heartbeats, backpressure rejections, stream fan-out) for its
duration.  The server's own architecture note says it plainly: sqlite,
engine evaluation and anything else blocking belongs on the executor
thread, reached via ``run_in_executor``/``asyncio.to_thread``.

``ASY001`` flags calls to a known-blocking surface — ``time.sleep``,
``sqlite3``, ``subprocess``, sync socket constructors, the builtin
``open`` and ``pathlib`` file I/O — lexically inside an ``async def``
body (nested synchronous ``def`` bodies are exempt: they execute
wherever they are called, typically on the executor).

``ASY002`` is the interprocedural upgrade: the same blocking surface
reached from an ``async def`` *through any chain of synchronous
calls* (a helper three frames deep that opens a file stalls the loop
exactly as if the coroutine had).  The finding is anchored on the
first hop — the call in the coroutine that enters the chain, which is
the line that must change — and its message spells out the whole
path.  Chains are not followed into ``async`` callees (those are
checked in their own right) and lexical hits stay ``ASY001``'s, so
the two rules never double-report one site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.callgraph import CallSite, format_path, transitive_hits
from repro.checks.model import Checker, Finding, register_check
from repro.checks.source import SourceTree, dotted_name

#: Exact dotted names of known-blocking calls.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Builtin calls that block on file/tty I/O.
_BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Attribute suffixes of blocking ``pathlib.Path`` file operations.
_BLOCKING_ATTRS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "mkdir",
        "unlink",
        "rmdir",
    }
)


class _AsyncVisitor(ast.NodeVisitor):
    """Collect blocking calls whose *innermost* function is async."""

    def __init__(self) -> None:
        self.hits: list[tuple[int, str]] = []
        self._stack: list[bool] = []  # True = async frame

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(False)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(True)
        self.generic_visit(node)
        self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._stack and self._stack[-1]:
            name = dotted_name(node.func)
            blocking = (
                name in _BLOCKING
                or name in _BLOCKING_BUILTINS
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_ATTRS
                )
            )
            if blocking:
                label = name or node.func.attr  # type: ignore[union-attr]
                self.hits.append((node.lineno, label))
        self.generic_visit(node)


def blocking_label(site: CallSite) -> str | None:
    """The blocking surface a resolved call site hits, if any.

    Matches the same sets ``ASY001`` uses lexically, but against the
    call graph's resolved view: canonical external names (so ``from
    time import sleep`` still reads ``time.sleep``), blocking builtins
    and the ``pathlib``-style attribute suffixes on unresolved
    receivers.  Shared by ``ASY002`` and the lock-discipline rules.
    """
    if site.external is not None:
        if (
            site.external in _BLOCKING
            or site.external in _BLOCKING_BUILTINS
        ):
            return site.external
        if site.external.split(".")[-1] in _BLOCKING_ATTRS:
            return site.external
    if site.attr is not None and site.attr in _BLOCKING_ATTRS:
        return site.raw or f".{site.attr}"
    return None


def check_async_hygiene(tree: SourceTree) -> Iterator[Finding]:
    """``ASY001`` over every coroutine in the tree."""
    for file in tree.files:
        visitor = _AsyncVisitor()
        visitor.visit(file.tree)
        for line, label in visitor.hits:
            yield Finding(
                code="ASY001",
                file=file.rel,
                line=line,
                severity="error",
                message=(
                    f"blocking call {label}() inside an async def stalls "
                    "the whole event loop; move it to the executor "
                    "thread (run_in_executor / asyncio.to_thread)"
                ),
            )


def check_async_transitive(tree: SourceTree) -> Iterator[Finding]:
    """``ASY002``: blocking surfaces reachable from coroutines."""
    graph = tree.callgraph()
    covered = {file.rel for file in tree.files}
    for info in graph.functions():
        if not info.is_async or info.file not in covered:
            continue
        seen: set[tuple[int, str]] = set()
        for first, path, label in transitive_hits(
            graph,
            info.node_id,
            blocking_label,
            follow=lambda callee: not callee.is_async,
        ):
            if (first.line, label) in seen:
                continue
            seen.add((first.line, label))
            yield Finding(
                code="ASY002",
                file=info.file,
                line=first.line,
                severity="error",
                message=(
                    f"async def {info.qual} reaches blocking "
                    f"{label}() through {format_path(graph, path, label)}; "
                    "the whole chain runs on the event loop — move the "
                    "entry call to the executor (run_in_executor / "
                    "asyncio.to_thread)"
                ),
            )


def _register() -> None:
    register_check(
        Checker(
            code="ASY001",
            group="async-hygiene",
            severity="error",
            summary="blocking call (sleep, sqlite, subprocess, file I/O) "
            "inside async def",
            run=check_async_hygiene,
            cache_scope="file",
        )
    )
    register_check(
        Checker(
            code="ASY002",
            group="async-hygiene",
            severity="error",
            summary="blocking call reachable from async def through a "
            "sync call chain (path reported)",
            run=check_async_transitive,
            cache_scope="deps",
        )
    )


_register()
