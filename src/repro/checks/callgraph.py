"""The interprocedural core: a call graph over the parsed source tree.

PR 8's checkers were strictly file-local AST walks, but the bugs that
actually threaten the serve layer's thread-pool + fork fan-out are
*interprocedural*: a helper three calls deep that blocks while a lock
is held, touches the asyncio loop after fork, or reads wall-clock
inside a record-producing path.  This module resolves module-level
names, imports and attribute calls across the whole
:class:`~repro.checks.source.SourceTree` into one :class:`CallGraph`
that every transitive checker (``LK``, ``FS``, ``ASY002``, ``DET006``)
queries instead of re-deriving resolution per rule.

What the graph models, and what it deliberately does not:

* Every ``def``/``async def`` at any nesting depth is a
  :class:`FunctionInfo` node (``module:Qualified.Name`` ids).
* A call edge is an :class:`ast.Call` whose callee resolves through
  the lexical scope chain — local ``def``s, module functions/classes,
  import aliases (module-level *and* function-local, the repo's lazy-
  import idiom), ``self.``/``cls.`` methods of the enclosing class.
* Unresolvable callees are kept, not dropped: a call on an arbitrary
  object records its attribute name (``.result()``, ``.read_text()``)
  and a call into an imported third-party module records its canonical
  dotted name (``time.sleep`` whether imported as ``time`` or ``from
  time import sleep``), so checkers can still match known-blocking
  surfaces at the graph's edge.
* No data flow: a function *referenced* (passed to ``to_thread``,
  stored in a registry) is not an edge — only a call is.  Entry-point
  discovery for those indirection idioms is explicit instead:
  :meth:`CallGraph.fork_entries` (``ProcessPoolExecutor.submit`` /
  ``Process(target=...)``) and :meth:`CallGraph.worker_entries`
  (``register_family(... worker=...)``).

Reachability queries (:meth:`CallGraph.walk_sites`) run a BFS that
visits each function once, so every reported finding carries the
*shortest* call path from its entry point to the offending site.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.checks.source import dotted_name

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "build_graph",
    "format_path",
    "module_name",
    "transitive_hits",
]


def module_name(rel: str) -> str:
    """The dotted module name of a repo-relative ``*.py`` path.

    ``src/repro/serve/server.py`` → ``repro.serve.server``;
    ``src/repro/checks/__init__.py`` → ``repro.checks``;
    ``examples/analysis_service.py`` → ``examples.analysis_service``.
    """
    parts = rel[: -len(".py")].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One ``def``/``async def`` node of the graph.

    Attributes:
        node_id: Stable id — ``module:Qualified.Name`` (nested
            functions use the ``outer.<locals>.inner`` qualname form).
        file: Repo-relative path of the defining file.
        module: Dotted module name.
        qual: Qualified name within the module.
        name: Bare function name.
        lineno: 1-based definition line.
        is_async: Whether the function is a coroutine.
        class_name: Enclosing class name, when the function is a
            method (``None`` otherwise).
        parent: ``node_id`` of the enclosing function, for nested
            defs (``None`` at module/class level).
    """

    node_id: str
    file: str
    module: str
    qual: str
    name: str
    lineno: int
    is_async: bool
    class_name: str | None
    parent: str | None


@dataclass(frozen=True)
class CallSite:
    """One call expression attributed to its enclosing function.

    Exactly one of ``target``/``external``/``attr`` is the useful
    handle: ``target`` for calls resolved to a function in the tree,
    ``external`` for calls resolved to a canonical dotted name outside
    it, ``attr`` for method calls on unresolvable objects.
    """

    file: str
    line: int
    raw: str | None
    target: str | None = None
    external: str | None = None
    attr: str | None = None

    @property
    def label(self) -> str:
        """What a finding message calls this site."""
        if self.external:
            return self.external
        if self.raw:
            return self.raw
        if self.attr:
            return f".{self.attr}"
        return "?"


@dataclass
class _ModuleInfo:
    """Resolution tables of one covered module."""

    module: str
    file: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, dict[str, str]] = field(default_factory=dict)


def _import_aliases(
    node: ast.Import | ast.ImportFrom, package: str
) -> Iterator[tuple[str, str]]:
    """``(alias, canonical dotted target)`` pairs of one import."""
    if isinstance(node, ast.Import):
        for name in node.names:
            alias = name.asname or name.name.split(".")[0]
            target = name.name if name.asname else name.name.split(".")[0]
            yield alias, target
        return
    base = node.module or ""
    if node.level:  # relative import: resolve against the package
        hops = package.split(".") if package else []
        hops = hops[: len(hops) - (node.level - 1)]
        base = ".".join([*hops, base] if base else hops)
    for name in node.names:
        if name.name == "*":
            continue
        alias = name.asname or name.name
        yield alias, f"{base}.{name.name}" if base else name.name


class CallGraph:
    """Call edges and reachability over one parsed source tree."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionInfo] = {}
        self._ast: dict[str, ast.AST] = {}
        self._modules: dict[str, _ModuleInfo] = {}
        self._edges: dict[str, tuple[CallSite, ...]] = {}
        self._children: dict[str, dict[str, str]] = {}
        self._module_imports: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def function(self, node_id: str) -> FunctionInfo:
        """The :class:`FunctionInfo` registered under ``node_id``."""
        return self._functions[node_id]

    def functions(self) -> tuple[FunctionInfo, ...]:
        """Every function in the graph, in registration order."""
        return tuple(self._functions.values())

    def callees(self, node_id: str) -> tuple[CallSite, ...]:
        """The call sites inside ``node_id``'s own scope."""
        return self._edges.get(node_id, ())

    def resolve(self, module: str, qual: str) -> str | None:
        """The node id of ``module:qual``, if that function exists."""
        node_id = f"{module}:{qual}"
        return node_id if node_id in self._functions else None

    def resolve_dotted(self, dotted: str) -> str | None:
        """Resolve a canonical dotted name to an internal function.

        Tries the longest module prefix first, so
        ``repro.engine.registry.get_family`` finds the function and
        ``repro.serve.server.AnalysisServer.stats`` finds the method.
        A dotted name naming a class resolves to its ``__init__``.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            info = self._modules.get(".".join(parts[:cut]))
            if info is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                hit = info.functions.get(rest[0])
                if hit is None and rest[0] in info.classes:
                    hit = info.classes[rest[0]].get("__init__")
                return hit
            if len(rest) == 2 and rest[0] in info.classes:
                return info.classes[rest[0]].get(rest[1])
            return None
        return None

    def ast_of(self, node_id: str) -> ast.AST:
        """The ``ast`` definition node of a function (checker use)."""
        return self._ast[node_id]

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------

    def walk_sites(
        self,
        start: str,
        follow: Callable[[FunctionInfo], bool] | None = None,
    ) -> Iterator[tuple[tuple[str, ...], CallSite]]:
        """BFS every call site reachable from ``start``.

        Yields ``(path, site)`` pairs where ``path`` is the shortest
        chain of node ids from ``start`` to the function *containing*
        ``site`` (so ``len(path) == 1`` means a site lexically inside
        ``start`` itself).  ``follow`` filters which resolved callees
        the walk descends into (default: all internal callees); each
        function is visited at most once.
        """
        queue: list[tuple[str, ...]] = [(start,)]
        seen = {start}
        while queue:
            path = queue.pop(0)
            for site in self.callees(path[-1]):
                yield path, site
                target = site.target
                if target is None or target in seen:
                    continue
                if follow is not None and not follow(
                    self._functions[target]
                ):
                    continue
                seen.add(target)
                queue.append((*path, target))

    def file_closure(self, rel: str) -> frozenset[str]:
        """Files this file's findings may depend on.

        The union of (a) files containing any function reachable from
        a function defined in ``rel`` and (b) files of modules ``rel``
        imports — the set the incremental cache records as the file's
        dependency fingerprint.
        """
        starts = [
            info.node_id
            for info in self._functions.values()
            if info.file == rel
        ]
        closure: set[str] = set()
        seen: set[str] = set(starts)
        queue = list(starts)
        while queue:
            node_id = queue.pop(0)
            for site in self.callees(node_id):
                target = site.target
                if target is None or target in seen:
                    continue
                seen.add(target)
                closure.add(self._functions[target].file)
                queue.append(target)
        module = module_name(rel)
        for imported in self._module_imports.get(module, set()):
            info = self._modules.get(imported)
            if info is not None:
                closure.add(info.file)
        closure.discard(rel)
        return frozenset(closure)

    # ------------------------------------------------------------------
    # entry-point discovery
    # ------------------------------------------------------------------

    def fork_entries(self) -> tuple[tuple[str, CallSite], ...]:
        """Functions entering worker *processes*, with their launch
        sites.

        Two idioms are recognized: ``pool.submit(f, ...)`` where
        ``pool`` is bound from a ``ProcessPoolExecutor(...)`` call in
        the same scope, and ``Process(target=f)``-shaped constructions
        (``multiprocessing.Process``, ``mp_context.Process``).
        """
        entries: dict[tuple[str, CallSite], None] = {}
        for info in self._functions.values():
            scope = self.ast_of(info.node_id)
            pools = _process_pool_names(scope)
            for node in _scoped_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if (
                    name is not None
                    and name.endswith(".submit")
                    and name.rsplit(".", 1)[0] in pools
                    and node.args
                ):
                    target = self._resolve_value(info, node.args[0])
                    if target is not None:
                        site = CallSite(
                            file=info.file,
                            line=node.lineno,
                            raw=name,
                            target=target,
                        )
                        entries[(target, site)] = None
                if name is not None and name.split(".")[-1] == "Process":
                    for keyword in node.keywords:
                        if keyword.arg != "target":
                            continue
                        target = self._resolve_value(info, keyword.value)
                        if target is not None:
                            site = CallSite(
                                file=info.file,
                                line=node.lineno,
                                raw=name,
                                target=target,
                            )
                            entries[(target, site)] = None
        return tuple(entries)

    def worker_entries(self) -> tuple[tuple[str, CallSite, str], ...]:
        """Registered scenario-family callables, with declaration
        sites.

        Purely syntactic — ``register_family(Something(...,
        worker=f, batch_worker=g))`` call shapes — so fixture packages
        are covered without importing anything, and the real registry
        modules are covered by the same rule.  Yields ``(node_id,
        declaration site, role)``.
        """
        entries: list[tuple[str, CallSite, str]] = []
        for info in self._functions.values():
            entries.extend(self._worker_entries_in(info))
        for rel, mod in sorted(
            (m.file, m) for m in self._modules.values()
        ):
            tree = self._module_ast.get(rel)
            if tree is None:
                continue
            # module-level registrations (outside any function)
            entries.extend(
                self._worker_entries_from(
                    _module_resolver(self, mod), mod.file, tree
                )
            )
        return tuple(entries)

    def _worker_entries_in(
        self, info: FunctionInfo
    ) -> list[tuple[str, CallSite, str]]:
        resolver = self._resolvers.get(info.node_id)
        if resolver is None:
            return []
        return self._worker_entries_from(
            resolver, info.file, self.ast_of(info.node_id)
        )

    def _worker_entries_from(
        self,
        resolver: Callable[[str], tuple[str | None, str | None]],
        rel: str,
        scope: ast.AST,
    ) -> list[tuple[str, CallSite, str]]:
        found: list[tuple[str, CallSite, str]] = []
        for node in _scoped_walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "register_family":
                continue
            for payload in ast.walk(node):
                if not isinstance(payload, ast.Call):
                    continue
                for keyword in payload.keywords:
                    if keyword.arg not in ("worker", "batch_worker"):
                        continue
                    value = dotted_name(keyword.value)
                    if value is None:
                        continue
                    target, _external = resolver(value)
                    if target is not None:
                        found.append(
                            (
                                target,
                                CallSite(
                                    file=rel,
                                    line=node.lineno,
                                    raw=value,
                                    target=target,
                                ),
                                keyword.arg,
                            )
                        )
        return found

    def _resolve_value(
        self, info: FunctionInfo, value: ast.AST
    ) -> str | None:
        """Resolve a non-call value expression (a function reference)."""
        name = dotted_name(value)
        if name is None:
            return None
        resolver = self._resolvers.get(info.node_id)
        if resolver is None:
            return None
        target, _external = resolver(name)
        return target

    # populated by build_graph
    _resolvers: dict[str, Callable[[str], tuple[str | None, str | None]]]
    _module_ast: dict[str, ast.Module]


def _scoped_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Statements of the scope itself — at any structural depth (inside
    ``if``/``with``/``try``…) — are visited; bodies of nested
    ``def``/``async def``/``lambda`` belong to their own graph nodes
    and are skipped.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _process_pool_names(scope: ast.AST) -> set[str]:
    """Names bound from a ``ProcessPoolExecutor(...)`` call in scope."""

    def is_pool_call(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func)
        return (
            name is not None
            and name.split(".")[-1] == "ProcessPoolExecutor"
        )

    names: set[str] = set()
    for node in _scoped_walk(scope):
        if isinstance(node, ast.Assign) and is_pool_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.withitem) and is_pool_call(
            node.context_expr
        ):
            if isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
    return names


def _shadowed_names(scope: ast.AST) -> set[str]:
    """Names locally bound in ``scope`` (they hide module/import
    names)."""
    names: set[str] = set()
    args = getattr(scope, "args", None)
    if args is not None:
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            names.add(arg.arg)
    for node in _scoped_walk(scope):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def _module_resolver(graph: CallGraph, mod: _ModuleInfo):
    """A resolver closure for module-level (non-function) code."""

    def resolve(name: str) -> tuple[str | None, str | None]:
        return _resolve_name(
            graph, mod, name, class_name=None, scopes=(), shadowed=()
        )

    return resolve


def _resolve_name(
    graph: CallGraph,
    mod: _ModuleInfo,
    name: str,
    class_name: str | None,
    scopes: tuple[dict[str, str], ...],
    shadowed: tuple[frozenset[str], ...],
    local_imports: dict[str, str] | None = None,
) -> tuple[str | None, str | None]:
    """Resolve a dotted source name to ``(internal id, external)``.

    The lexical rule: enclosing local ``def``s win, then
    ``self``/``cls`` methods, then locally-shadowed names resolve to
    nothing, then module functions/classes, then import aliases
    (function-local over module-level), then — for names rooted in an
    import — the canonical external dotted name.
    """
    parts = name.split(".")
    head = parts[0]
    if head in ("self", "cls") and class_name is not None:
        if len(parts) == 2:
            return (
                graph._modules[mod.module]
                .classes.get(class_name, {})
                .get(parts[1]),
                None,
            )
        return None, None
    if len(parts) == 1:
        for scope in reversed(scopes):
            if head in scope:
                return scope[head], None
        for mask in reversed(shadowed):
            if head in mask:
                return None, None
        if local_imports and head in local_imports:
            # A function-local import is a local binding: it shadows
            # any module-level def of the same name (the repo's lazy-
            # import idiom would otherwise resolve to the wrong one).
            dotted = local_imports[head]
            internal = graph.resolve_dotted(dotted)
            return (internal, None) if internal else (None, dotted)
        if head in mod.functions:
            return mod.functions[head], None
        if head in mod.classes:
            return mod.classes[head].get("__init__"), None
    imports = dict(mod.imports)
    if local_imports:
        imports.update(local_imports)
    if head in imports:
        dotted = ".".join([imports[head], *parts[1:]])
        internal = graph.resolve_dotted(dotted)
        if internal is not None:
            return internal, None
        return None, dotted
    if len(parts) == 1:
        return None, head  # builtin or truly global name
    if head in mod.classes:
        # Class.method style within the same module.
        internal = graph.resolve_dotted(f"{mod.module}.{name}")
        if internal is not None:
            return internal, None
    return None, None


def build_graph(tree) -> CallGraph:
    """Build the :class:`CallGraph` of a parsed source tree.

    ``tree`` is a :class:`~repro.checks.source.SourceTree` (or a
    restricted view of one — the *full* underlying file set is always
    what the graph covers, so transitive queries cross view
    boundaries).
    """
    graph = CallGraph()
    graph._resolvers = {}
    graph._module_ast = {}
    files = getattr(tree, "all_files", None)
    covered = files() if callable(files) else tree.files

    # Pass 1: register every function/class and the import tables.
    for file in covered:
        module = module_name(file.rel)
        mod = _ModuleInfo(module=module, file=file.rel)
        graph._modules[module] = mod
        graph._module_ast[file.rel] = file.tree
        package = (
            module
            if file.rel.endswith("__init__.py")
            else module.rsplit(".", 1)[0]
            if "." in module
            else ""
        )
        imported: set[str] = set()
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias, target in _import_aliases(node, package):
                    imported.add(target.split(":")[0])
                    if _is_module_scope(node, file.tree):
                        mod.imports.setdefault(alias, target)
        graph._module_imports[module] = {
            t for t in imported if not t.startswith(".")
        }
        _register_functions(graph, mod, file.rel, file.tree)

    # Pass 2: resolve every call expression into edges.
    for file in covered:
        mod = graph._modules[module_name(file.rel)]
        _build_edges(graph, mod, file.rel, file.tree)
    return graph


def _is_module_scope(node: ast.AST, module: ast.Module) -> bool:
    """Cheap check: imports at column 0 are module-scope."""
    return getattr(node, "col_offset", 1) == 0


def _register_functions(
    graph: CallGraph,
    mod: _ModuleInfo,
    rel: str,
    module_ast: ast.Module,
) -> None:
    def register(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        class_name: str | None,
        parent: str | None,
    ) -> str:
        node_id = f"{mod.module}:{qual}"
        graph._functions[node_id] = FunctionInfo(
            node_id=node_id,
            file=rel,
            module=mod.module,
            qual=qual,
            name=node.name,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            parent=parent,
        )
        graph._ast[node_id] = node
        if parent is not None:
            graph._children.setdefault(parent, {})[node.name] = node_id
        return node_id

    def walk_scope(
        scope: ast.AST,
        qual_prefix: str,
        class_name: str | None,
        parent: str | None,
    ) -> None:
        for node in _scoped_walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{qual_prefix}{node.name}"
                node_id = register(node, qual, class_name, parent)
                if class_name is not None and parent is None:
                    mod.classes.setdefault(class_name, {})[
                        node.name
                    ] = node_id
                elif parent is None:
                    mod.functions.setdefault(node.name, node_id)
                walk_scope(node, f"{qual}.<locals>.", None, node_id)
            elif isinstance(node, ast.ClassDef) and parent is None:
                mod.classes.setdefault(node.name, {})
                walk_scope(
                    _ClassScope(node), f"{node.name}.", node.name, parent
                )

    walk_scope(module_ast, "", None, None)


class _ClassScope:
    """Adapter letting ``_scoped_walk`` iterate a class body only."""

    def __init__(self, node: ast.ClassDef) -> None:
        self._node = node

    @property
    def body(self):  # pragma: no cover - trivial
        return self._node.body

    def __getattr__(self, item):
        return getattr(self._node, item)


def _build_edges(
    graph: CallGraph,
    mod: _ModuleInfo,
    rel: str,
    module_ast: ast.Module,
) -> None:
    def process(
        node_id: str,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        scopes: tuple[dict[str, str], ...],
        shadowed: tuple[frozenset[str], ...],
    ) -> None:
        local_defs = graph._children.get(node_id, {})
        local_imports: dict[str, str] = {}
        info = graph._functions[node_id]
        package = (
            mod.module
            if rel.endswith("__init__.py")
            else mod.module.rsplit(".", 1)[0]
            if "." in mod.module
            else ""
        )
        for node in _scoped_walk(scope):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias, target in _import_aliases(node, package):
                    local_imports[alias] = target
        mask = frozenset(_shadowed_names(scope) - set(local_defs))

        def resolver(name: str) -> tuple[str | None, str | None]:
            return _resolve_name(
                graph,
                mod,
                name,
                class_name,
                (*scopes, local_defs),
                (*shadowed, mask),
                local_imports,
            )

        graph._resolvers[node_id] = resolver
        sites: list[CallSite] = []
        for node in _scoped_walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                sites.append(
                    CallSite(
                        file=rel, line=node.lineno, raw=None, attr=attr
                    )
                )
                continue
            target, external = resolver(name)
            attr = name.split(".")[-1] if "." in name else None
            sites.append(
                CallSite(
                    file=rel,
                    line=node.lineno,
                    raw=name,
                    target=target,
                    external=external,
                    attr=None if target or external else attr,
                )
            )
        graph._edges[node_id] = tuple(sites)
        for child_name, child_id in sorted(local_defs.items()):
            child_info = graph._functions[child_id]
            process(
                child_id,
                graph._ast[child_id],  # type: ignore[arg-type]
                class_name if child_info.class_name else class_name,
                (*scopes, local_defs),
                (*shadowed, mask),
            )

    for info in [
        i
        for i in graph._functions.values()
        if i.file == rel and i.parent is None
    ]:
        process(
            info.node_id,
            graph._ast[info.node_id],  # type: ignore[arg-type]
            info.class_name,
            (),
            (),
        )


def transitive_hits(
    graph: CallGraph,
    start: str,
    predicate: Callable[[CallSite], str | None],
    follow: Callable[[FunctionInfo], bool] | None = None,
) -> list[tuple[CallSite, tuple[str, ...], str]]:
    """Depth-≥1 reachable sites matching ``predicate``, with anchors.

    For every call site reachable from ``start`` *through at least one
    internal call* whose ``predicate(site)`` returns a label, yields
    ``(first_hop_site, path, label)`` — where ``first_hop_site`` is
    the call in ``start`` itself that enters the offending chain (the
    line a finding anchors on) and ``path`` is the shortest node chain
    from ``start`` to the function containing the site.  Sites
    lexically inside ``start`` (depth 0) are excluded: those belong to
    the corresponding local rule.
    """
    hop_site: dict[str, CallSite] = {}
    hits: list[tuple[CallSite, tuple[str, ...], str]] = []
    for path, site in graph.walk_sites(start, follow=follow):
        if (
            len(path) == 1
            and site.target is not None
            and site.target not in hop_site
        ):
            hop_site[site.target] = site
        if len(path) < 2:
            continue
        label = predicate(site)
        if label is None:
            continue
        first = hop_site.get(path[1])
        if first is not None:
            hits.append((first, path, label))
    return hits


def format_path(
    graph: CallGraph, path: Iterable[str], label: str
) -> str:
    """Render a call chain for a finding message.

    ``format_path(g, ("m:a", "m:b"), "time.sleep")`` →
    ``"a -> b -> time.sleep()"`` — the qualified names stay short
    (function quals, not module paths) because the finding already
    names the file.
    """
    hops = [graph.function(node_id).qual for node_id in path]
    return " -> ".join([*hops, f"{label}()"])
