"""Streaming result sinks for the batch engine.

Sweeps of 10^5+ scenarios must not accumulate every result in memory;
the engine therefore emits records *incrementally*, in scenario order,
to a :class:`ResultSink`.  Records are flat mappings (column -> scalar);
:func:`as_record` converts the dataclass results produced by the sweep
workers.

Sinks are context managers::

    with JsonlSink(path) as sink:
        run_batch(worker, scenarios, sink=sink)
"""

from __future__ import annotations

import csv
import dataclasses
import json
from collections.abc import Mapping
from pathlib import Path
from typing import IO, Any

from repro.utils.checks import require
from repro.utils.jsonsafe import json_safe


def as_record(result: Any) -> dict[str, Any]:
    """Flatten a worker result into a sink record.

    Dataclasses become field dicts (one level; nested mappings are
    splatted with dotted keys), mappings are copied, anything else is
    wrapped under a ``"value"`` key.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        raw: Mapping[str, Any] = dataclasses.asdict(result)
    elif isinstance(result, Mapping):
        raw = result
    else:
        return {"value": result}
    record: dict[str, Any] = {}
    for key, value in raw.items():
        if isinstance(value, Mapping):
            for sub_key, sub_value in value.items():
                record[f"{key}.{sub_key}"] = sub_value
        else:
            record[key] = value
    return record


def record_line(record: Mapping[str, Any]) -> str:
    """The exact one-line strict-JSON form :class:`JsonlSink` writes.

    Factored out so other record consumers — the :mod:`repro.serve`
    job streams — produce lines *byte-identical* to a local JSONL sink
    by construction rather than by parallel implementation.
    """
    safe = {key: json_safe(value) for key, value in record.items()}
    return json.dumps(safe, sort_keys=True, allow_nan=False)


class ResultSink:
    """Base sink: a write-only record consumer with context management."""

    def write(self, record: Mapping[str, Any]) -> None:
        """Consume one result record (in scenario order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemorySink(ResultSink):
    """Collects records into :attr:`records` (tests, small sweeps)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))


class JsonlSink(ResultSink):
    """One JSON object per line — the streaming format for large sweeps.

    Non-finite floats (diverged bounds) are written as the strings
    ``"inf"``/``"-inf"``/``"nan"`` so every line stays strict JSON.

    Args:
        path: Target file; parent directories are created on demand.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = open(self.path, "w")
        self.written = 0

    def write(self, record: Mapping[str, Any]) -> None:
        require(self._handle is not None, "sink is closed")
        self._handle.write(record_line(record))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CsvSink(ResultSink):
    """CSV with a header row inferred from the first record.

    Later records must use the same columns (missing keys become empty
    cells; unexpected keys raise, so schema drift fails fast).

    Args:
        path: Target file; parent directories are created on demand.
        columns: Optional explicit column order; default is the first
            record's insertion order.
    """

    def __init__(self, path: Path | str, columns: list[str] | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = open(self.path, "w", newline="")
        self._writer: csv.DictWriter | None = None
        self._columns = list(columns) if columns is not None else None
        self.written = 0

    def write(self, record: Mapping[str, Any]) -> None:
        require(self._handle is not None, "sink is closed")
        if self._writer is None:
            if self._columns is None:
                self._columns = list(record.keys())
            self._writer = csv.DictWriter(self._handle, fieldnames=self._columns)
            self._writer.writeheader()
        self._writer.writerow(dict(record))
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
