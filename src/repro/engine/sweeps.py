"""Concrete scenario types and workers for the batch engine.

The two original scenario families cover the paper's evaluation
surface (the simulation-validation and EDF families live in
:mod:`repro.engine.families`; all are registered in
:mod:`repro.engine.registry`):

* :class:`BoundScenario` — one ``(benchmark function, Q)`` point of a
  delay-bound sweep (the Figure 5 shape).
* :class:`StudyScenario` — one randomly generated task set of a
  schedulability acceptance study (the Section VI / EXT-D shape).  The
  scenario carries its own seed, making results independent of which
  worker evaluates it.

Both workers evaluate against a shared-artifact
:class:`~repro.engine.context.AnalysisContext` resolved through the
per-process memo :func:`repro.engine.context.get_context`: the bound
worker reuses one built benchmark function (and its precomputed global
maximum) across every Q of a sweep, the study worker reuses one
generated task set, its Lehoczky/safe-Q curves and delay maxima across
every ``q_fraction``.  The context-served results are bit-identical to
the single-shot recipes (:func:`prepared_task_set` + the ``sched``
tests), which the context tests assert.

Workers are module-level functions (hence picklable) returning frozen
dataclasses, which :func:`repro.engine.sinks.as_record` flattens for the
streaming sinks.  Both workers are *definitionally* equivalent to the
pre-engine single-shot code paths; the engine tests assert bit-identical
results between ``max_workers=1`` and ``N``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import lru_cache

from repro.core.bounds import compare_bounds
from repro.core.delay_function import PreemptionDelayFunction
from repro.engine.context import (
    BENCHMARK_FUNCTION,
    DELAY_MAXIMA,
    FP_CURVES,
    TASK_SET,
    ContextKey,
    benchmark_context_key,
    get_context,
    taskset_context_key,
)
from repro.npr.assignment import assign_npr_lengths
from repro.sched.crpd_rta import delay_aware_rta
from repro.tasks.generation import gaussian_delay_factory, generate_task_set
from repro.tasks.task import TaskSet
from repro.utils.checks import require

# ----------------------------------------------------------------------
# Delay-bound sweeps (Figure 5 shape)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoundScenario:
    """One point of a delay-bound sweep.

    Attributes:
        function: Benchmark function name (one of
            :data:`repro.experiments.functions_fig4.FIG4_NAMES`).
        q: The floating-NPR length to analyse.
        interpretation: Benchmark parameter interpretation.
        knots: Piecewise resolution of the benchmark function.
    """

    function: str
    q: float
    interpretation: str = "literal"
    knots: int = 2048


@dataclass(frozen=True, slots=True)
class BoundResult:
    """Bounds for one :class:`BoundScenario`.

    Attributes:
        function: Scenario function name.
        q: Scenario NPR length.
        algorithm1: Algorithm 1's cumulative delay bound.
        state_of_the_art: The Eq. 4 bound.
        converged: Whether Algorithm 1 converged (``False`` means both
            bounds are infinite).
        preemptions: Number of windows Algorithm 1 charged.
    """

    function: str
    q: float
    algorithm1: float
    state_of_the_art: float
    converged: bool
    preemptions: int


@lru_cache(maxsize=64)
def benchmark_function(
    name: str, interpretation: str = "literal", knots: int = 2048
) -> PreemptionDelayFunction:
    """Per-process cache of the Figure 4 benchmark functions.

    Building a 2048-knot benchmark function costs orders of magnitude
    more than one bound evaluation; caching it per ``(name,
    interpretation, knots)`` is what makes the batched path beat the
    single-shot path even on one core.  The benchmark-kind
    :class:`~repro.engine.context.AnalysisContext` builds its function
    through this cache, so both layers share one instance.
    """
    from repro.experiments.functions_fig4 import fig4_delay_function

    return fig4_delay_function(name, interpretation, knots)


#: Context artifacts the ``bound`` family consumes.
BOUND_ARTIFACTS = (BENCHMARK_FUNCTION,)


def bound_context_key(scenario: BoundScenario) -> ContextKey:
    """The shared-artifact key of one bound scenario: its function."""
    return benchmark_context_key(
        scenario.function, scenario.interpretation, scenario.knots
    )


def evaluate_bound_scenario(scenario: BoundScenario) -> BoundResult:
    """Engine worker: compute Algorithm 1 and Eq. 4 for one scenario.

    The benchmark function and its global maximum come from the shared
    :class:`~repro.engine.context.AnalysisContext`, so a whole Q sweep
    against one function builds (and maximises) it once per process.
    """
    context = get_context(bound_context_key(scenario), BOUND_ARTIFACTS)
    comparison = compare_bounds(
        context.function, scenario.q, f_max=context.function_max
    )
    return BoundResult(
        function=scenario.function,
        q=scenario.q,
        algorithm1=comparison.algorithm1.total_delay,
        state_of_the_art=comparison.state_of_the_art.total_delay,
        converged=comparison.algorithm1.converged,
        preemptions=comparison.algorithm1.preemptions,
    )


def evaluate_bound_batch(
    scenarios: Sequence[BoundScenario], *, backend: str = "numpy"
) -> list[BoundResult]:
    """Engine batch entry point: one kernel call per shared context.

    The struct-of-arrays counterpart of
    :func:`evaluate_bound_scenario`: scenarios are partitioned by
    :func:`bound_context_key` (the engine's grouped chunk plan already
    sends single-group chunks, so the partition is usually trivial), the
    group's :class:`~repro.piecewise.backends.BatchedGrid` is resolved
    once through the per-process memo, and Algorithm 1 runs over the
    whole q lane-array in lockstep through the named backend's batch
    kernel.  The cheap O(1)-per-iteration Eq. 4 recurrence stays scalar
    per lane — it shares no per-q work to amortise.

    Results are bit-identical to the per-scenario worker for backends
    declaring bit-identical exactness (the parity tests assert this),
    and are returned in input order.

    Args:
        scenarios: The chunk; may mix context groups.
        backend: A batch-capable backend name (see
            :mod:`repro.piecewise.backends`).

    Raises:
        ValueError: for unknown/unavailable backends or one without a
            batch kernel.
    """
    from repro.core.floating_npr import (
        _MIN_PROGRESS_FRACTION,
        DEFAULT_MAX_ITERATIONS,
    )
    from repro.core.state_of_the_art import state_of_the_art_delay_bound
    from repro.piecewise.backends import batched_grid, resolve_backend

    kernel = resolve_backend(backend)
    require(
        kernel.bound_batch is not None,
        f"backend {backend!r} does not support batch bound evaluation",
    )
    groups: dict[ContextKey, list[int]] = {}
    for index, scenario in enumerate(scenarios):
        groups.setdefault(bound_context_key(scenario), []).append(index)
    results: list[BoundResult | None] = [None] * len(scenarios)
    for key, indices in groups.items():
        context = get_context(key, BOUND_ARTIFACTS)
        grid = batched_grid(context.function_index)
        qs = [scenarios[i].q for i in indices]
        totals, converged, preemptions = kernel.bound_batch(
            grid,
            qs,
            wcet=context.function.wcet,
            min_progress_fraction=_MIN_PROGRESS_FRACTION,
            max_iterations=DEFAULT_MAX_ITERATIONS,
        )
        for lane, index in enumerate(indices):
            scenario = scenarios[index]
            results[index] = BoundResult(
                function=scenario.function,
                q=scenario.q,
                algorithm1=totals[lane],
                state_of_the_art=state_of_the_art_delay_bound(
                    context.function,
                    scenario.q,
                    f_max=context.function_max,
                ).total_delay,
                converged=converged[lane],
                preemptions=preemptions[lane],
            )
    return [result for result in results if result is not None]


def _record_float(value: object) -> float:
    """Decode a record float, honouring the strict-JSON non-finite
    encoding (``"inf"``/``"-inf"``/``"nan"`` strings)."""
    if isinstance(value, str):
        return float(value)
    require(
        isinstance(value, (int, float)),
        f"expected a numeric record value, got {value!r}",
    )
    return float(value)


def bound_result_from_record(record: Mapping[str, object]) -> BoundResult:
    """Rebuild a :class:`BoundResult` from its sink/store record.

    Inverse of :func:`repro.engine.sinks.as_record` composed with the
    strict-JSON round trip, so results served from a
    :class:`repro.store.ResultStore` are indistinguishable from freshly
    computed ones.
    """
    return BoundResult(
        function=str(record["function"]),
        q=_record_float(record["q"]),
        algorithm1=_record_float(record["algorithm1"]),
        state_of_the_art=_record_float(record["state_of_the_art"]),
        converged=bool(record["converged"]),
        preemptions=int(record["preemptions"]),  # type: ignore[arg-type]
    )


def study_result_from_record(record: Mapping[str, object]) -> StudyResult:
    """Rebuild a :class:`StudyResult` from its sink/store record."""
    accepted = record["accepted"]
    require(
        isinstance(accepted, (list, tuple)),
        f"expected an accepted list, got {accepted!r}",
    )
    return StudyResult(
        utilization=_record_float(record["utilization"]),
        seed=int(record["seed"]),  # type: ignore[arg-type]
        admitted=bool(record["admitted"]),
        accepted=tuple(bool(v) for v in accepted),
    )


def q_sweep_scenarios(
    qs: list[float],
    functions: tuple[str, ...] | None = None,
    interpretation: str = "literal",
    knots: int = 2048,
) -> list[BoundScenario]:
    """Q-major scenario grid: all functions at ``qs[0]``, then ``qs[1]``…

    Args:
        qs: NPR lengths to sweep.
        functions: Benchmark function names (default: all three).
        interpretation: Parameter interpretation.
        knots: Function resolution.
    """
    from repro.experiments.functions_fig4 import FIG4_NAMES

    names = functions if functions is not None else FIG4_NAMES
    require(len(names) > 0, "need at least one function name")
    return [
        BoundScenario(
            function=name, q=q, interpretation=interpretation, knots=knots
        )
        for q in qs
        for name in names
    ]


# ----------------------------------------------------------------------
# Schedulability acceptance studies (Section VI / EXT-D shape)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StudyScenario:
    """One generated task set of an acceptance study.

    Attributes:
        utilization: Target total utilization.
        seed: RNG seed for the task-set generator (scenario-owned, so
            results never depend on worker scheduling).
        n_tasks: Tasks per generated set.
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        methods: Delay-aware test methods to run
            (see :data:`repro.sched.METHODS`).
    """

    utilization: float
    seed: int
    n_tasks: int
    q_fraction: float
    delay_height: float
    methods: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class StudyResult:
    """Accept/reject outcome of one :class:`StudyScenario`.

    Attributes:
        utilization: Scenario utilization (the grouping key).
        seed: Scenario seed.
        admitted: Whether the set admitted an NPR assignment at all;
            ``False`` counts as a rejection for every method.
        accepted: Per-method verdicts, aligned with
            ``scenario.methods``.
    """

    utilization: float
    seed: int
    admitted: bool
    accepted: tuple[bool, ...]


def prepared_task_set(
    n_tasks: int,
    utilization: float,
    seed: int,
    q_fraction: float,
    delay_height: float,
    policy: str = "fp",
) -> TaskSet | None:
    """Generate, prioritise and NPR-annotate one task set.

    The single-shot recipe; sweep workers resolve the same artifacts
    through :func:`repro.engine.context.get_context` instead, so one
    generated set serves every swept fraction.  Both paths produce
    bit-identical task sets (asserted in the context tests).

    Returns ``None`` when the set admits no NPR assignment (negative
    blocking tolerance / negative EDF slack): every delay-aware test
    counts it as a rejection.

    Args:
        n_tasks: Tasks per set.
        utilization: Target total utilization.
        seed: Generator seed (same seed -> same prepared set).
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        policy: NPR length policy — ``"fp"`` (Yao et al. blocking
            tolerances) or ``"edf"`` (Bertogna & Baruah slack).

    Raises:
        ValueError: for invalid *parameters* (unknown policy,
            out-of-range fraction) — these must fail loudly; only the
            per-task-set infeasibility is converted into ``None``.
    """
    # Validate caller-supplied knobs up front: the except below may
    # only absorb "this particular set admits no assignment", never a
    # typo'd campaign spec (which would silently reject everything).
    require(policy in ("edf", "fp"), f"unknown policy {policy!r}")
    require(
        0.0 < q_fraction <= 1.0,
        f"q_fraction must lie in (0, 1], got {q_fraction}",
    )
    factory = gaussian_delay_factory(relative_height=delay_height)
    tasks = generate_task_set(
        n_tasks,
        utilization,
        seed=seed,
        delay_function_factory=factory,
    ).rate_monotonic()
    try:
        return assign_npr_lengths(tasks, policy=policy, fraction=q_fraction)
    except ValueError:
        return None


#: Context artifacts the ``study`` family consumes.
STUDY_ARTIFACTS = (TASK_SET, DELAY_MAXIMA, FP_CURVES)


def study_context_key(scenario: StudyScenario) -> ContextKey:
    """The shared-artifact key of one study scenario: its task set.

    ``q_fraction`` (and ``methods``) are deliberately excluded — every
    fractional assignment of the same generated set shares one context.
    """
    return taskset_context_key(
        scenario.n_tasks,
        scenario.utilization,
        scenario.seed,
        scenario.delay_height,
    )


def evaluate_study_scenario(scenario: StudyScenario) -> StudyResult:
    """Engine worker: run every test method against one task set.

    The generated set, its blocking tolerances / safe-Q vector and the
    per-task delay maxima come from the shared
    :class:`~repro.engine.context.AnalysisContext`; only the
    ``q_fraction`` scaling and the Q-dependent Algorithm 1 bound are
    computed per scenario.  Bit-identical to the
    :func:`prepared_task_set` + :func:`repro.sched.delay_aware_rta`
    recipe.
    """
    context = get_context(study_context_key(scenario), STUDY_ARTIFACTS)
    task_set = context.prepared_task_set("fp", scenario.q_fraction)
    if task_set is None:
        return StudyResult(
            utilization=scenario.utilization,
            seed=scenario.seed,
            admitted=False,
            accepted=tuple(False for _ in scenario.methods),
        )
    return StudyResult(
        utilization=scenario.utilization,
        seed=scenario.seed,
        admitted=True,
        accepted=tuple(
            delay_aware_rta(
                task_set, method, delay_maxima=context.delay_maxima
            ).schedulable
            for method in scenario.methods
        ),
    )


def evaluate_study_batch(
    scenarios: Sequence[StudyScenario], *, backend: str = "numpy"
) -> list[StudyResult]:
    """Engine batch entry point for the acceptance study.

    The struct-of-arrays counterpart of
    :func:`evaluate_study_scenario`, mirroring
    :func:`evaluate_bound_batch`'s shape.  The study's per-scenario
    hot spot is the ``algorithm1`` method: one Algorithm 1 bound *per
    task* per scenario.  Scenarios are partitioned by
    :func:`study_context_key` (one generated set per group); within a
    group each task's delay function is fixed and only its assigned
    ``Q_i`` varies with ``q_fraction`` — exactly the lane shape
    :meth:`repro.piecewise.backends.KernelBackend.bound_batch` wants.
    So per task name one kernel call computes every scenario's
    cumulative bound, and ``C'_i = C_i + total`` (Eq. 5) feeds plain
    RTA.  The O(n²) event-accounting methods and the admission check
    stay scalar — they share no per-``q_fraction`` work to amortise.

    Results are bit-identical to the per-scenario worker for backends
    declaring bit-identical exactness (the parity tests assert this),
    and are returned in input order.

    Args:
        scenarios: The chunk; may mix context groups.
        backend: A batch-capable backend name (see
            :mod:`repro.piecewise.backends`).

    Raises:
        ValueError: for unknown/unavailable backends or one without a
            batch kernel.
    """
    from repro.core.floating_npr import (
        _MIN_PROGRESS_FRACTION,
        DEFAULT_MAX_ITERATIONS,
    )
    from repro.piecewise.backends import batched_grid_for, resolve_backend
    from repro.sched.rta import rta_fixed_priority

    kernel = resolve_backend(backend)
    require(
        kernel.bound_batch is not None,
        f"backend {backend!r} does not support batch bound evaluation",
    )
    groups: dict[ContextKey, list[int]] = {}
    for index, scenario in enumerate(scenarios):
        groups.setdefault(study_context_key(scenario), []).append(index)
    results: list[StudyResult | None] = [None] * len(scenarios)
    for key, indices in groups.items():
        context = get_context(key, STUDY_ARTIFACTS)
        prepared: dict[int, TaskSet] = {}
        for index in indices:
            task_set = context.prepared_task_set(
                "fp", scenarios[index].q_fraction
            )
            if task_set is None:
                scenario = scenarios[index]
                results[index] = StudyResult(
                    utilization=scenario.utilization,
                    seed=scenario.seed,
                    admitted=False,
                    accepted=tuple(False for _ in scenario.methods),
                )
            else:
                prepared[index] = task_set

        # One kernel call per task name: the group's generated set has
        # one ``f_i`` per task, and each admitted scenario assigns it a
        # different ``Q_i``.  Lanes only exist where algorithm1 will
        # actually read the bound.
        inflated: dict[tuple[int, str], float] = {}
        by_name: dict[str, list[int]] = {}
        for index in sorted(prepared):
            if "algorithm1" not in scenarios[index].methods:
                continue
            for task in prepared[index]:
                if task.delay_function is None or task.npr_length is None:
                    continue
                by_name.setdefault(task.name, []).append(index)
        for name, lanes in by_name.items():
            per_task = {
                index: next(
                    t for t in prepared[index] if t.name == name
                )
                for index in lanes
            }
            f = per_task[lanes[0]].delay_function
            if f is None:  # pragma: no cover - filtered above
                continue
            totals, _converged, _ = kernel.bound_batch(
                batched_grid_for(f.function),
                [per_task[index].npr_length for index in lanes],
                wcet=f.wcet,
                min_progress_fraction=_MIN_PROGRESS_FRACTION,
                max_iterations=DEFAULT_MAX_ITERATIONS,
            )
            for lane, index in enumerate(lanes):
                # Eq. 5 exactly as FloatingNPRBound.inflated_wcet
                # computes it: same two float operands, same addition.
                inflated[(index, name)] = f.wcet + totals[lane]

        for index in sorted(prepared):
            scenario = scenarios[index]
            task_set = prepared[index]
            accepted = []
            for method in scenario.methods:
                if method == "algorithm1":
                    accepted.append(
                        rta_fixed_priority(
                            task_set,
                            execution_times={
                                t.name: inflated.get(
                                    (index, t.name), t.wcet
                                )
                                for t in task_set
                            },
                        ).schedulable
                    )
                else:
                    accepted.append(
                        delay_aware_rta(
                            task_set,
                            method,
                            delay_maxima=context.delay_maxima,
                        ).schedulable
                    )
            results[index] = StudyResult(
                utilization=scenario.utilization,
                seed=scenario.seed,
                admitted=True,
                accepted=tuple(accepted),
            )
    return [result for result in results if result is not None]
