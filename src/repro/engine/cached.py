"""Store-integrated batch evaluation: skip, checkpoint, resume, merge.

:func:`run_cached_batch` is :func:`repro.engine.run_batch` with a
persistent memory (:class:`repro.store.ResultStore`):

1. every scenario is mapped to its content-addressed key
   (:func:`repro.store.scenario_key` under the store's code
   fingerprint);
2. scenarios whose key is already stored are *skipped* — their records
   are served from disk;
3. the rest are evaluated by the ordinary engine and **checkpointed**
   into the store as they stream out (commit-batched, so an interrupted
   run keeps all but the last partial batch);
4. finally the sink/return values are emitted **from the store** in
   scenario order.

Step 4 is what makes resume exact: fresh results take the same
``record → strict JSON → record`` round trip as cached ones, so an
interrupted-and-resumed sweep emits final output *byte-identical* to an
uninterrupted run — and a set of shard stores merged with
:func:`repro.store.merge_stores` emits byte-identical output to an
unsharded run (:func:`emit_from_store`).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.engine.engine import WorkerError, run_batch
from repro.engine.sinks import ResultSink
from repro.store import ResultStore, scenario_key
from repro.utils.checks import require

S = TypeVar("S")
R = TypeVar("R")

#: Decoder signature: sink record -> typed result.
Decoder = Callable[[Mapping[str, Any]], Any]


class JobCancelled(RuntimeError):
    """A cached batch stopped because its ``cancel`` predicate fired.

    Raised between records, after the current record was checkpointed,
    so everything computed up to the cancellation is committed to the
    store — a later run of the same scenarios resumes instead of
    recomputing.  This is the cancellation seam :mod:`repro.serve`
    uses to stop a job whose clients have abandoned it.
    """


@dataclass(frozen=True, slots=True)
class CachedRun:
    """Outcome of one :func:`run_cached_batch` call.

    Attributes:
        results: Decoded results in scenario order (``None`` when
            ``collect=False``).
        total: Number of scenarios requested.
        cached: Scenarios served from the store without recomputation.
        computed: Scenarios evaluated (and checkpointed) this run.
    """

    results: list[Any] | None
    total: int
    cached: int
    computed: int


class _CheckpointSink(ResultSink):
    """Puts freshly computed records into the store, in scenario order.

    The engine guarantees record order matches the submitted scenario
    order, so a running cursor pairs each record with its key.  The
    optional ``on_result`` hook fires after each checkpointed record —
    progress reporting, and the test seam for simulating a mid-sweep
    kill (raising from the hook leaves a valid, committed prefix).
    """

    def __init__(
        self,
        store: ResultStore,
        keys: Sequence[str],
        on_result: Callable[[int], None] | None = None,
        cancel: Callable[[], bool] | None = None,
    ) -> None:
        self._store = store
        self._keys = keys
        self._cursor = 0
        self._on_result = on_result
        self._cancel = cancel

    def write(self, record: Mapping[str, Any]) -> None:
        key = self._keys[self._cursor]
        self._cursor += 1
        self._store.put(key, record)
        if self._on_result is not None:
            self._on_result(self._cursor)
        if self._cancel is not None and self._cancel():
            # After the put: the record that triggered the check is
            # already checkpointed, so cancellation never loses work.
            self._store.commit()
            raise JobCancelled(
                f"batch cancelled after {self._cursor} fresh record(s); "
                "completed work is checkpointed"
            )


def emit_from_store(
    store: ResultStore,
    scenarios: Sequence[S],
    sink: ResultSink | None = None,
    decode: Decoder | None = None,
    collect: bool = True,
    fingerprint: str | None = None,
) -> list[Any] | None:
    """Stream the stored records of ``scenarios``, in scenario order.

    Every scenario must already be present; a store missing records
    (an unfinished shard, wrong parameters) fails with a count rather
    than emitting a silently truncated result set.

    Args:
        store: The store holding every scenario's record.
        scenarios: Scenario grid defining the emission order.
        sink: Optional sink receiving each record.
        decode: Optional record decoder for the returned list.
        collect: ``False`` streams to the sink only.
        fingerprint: Key fingerprint (default: the store's own).

    Returns:
        Decoded records in scenario order, or ``None``.
    """
    effective = store.fingerprint if fingerprint is None else fingerprint
    keys = [scenario_key(s, effective) for s in scenarios]
    results: list[Any] | None = [] if collect else None
    for key in keys:
        record = store.get(key)
        if record is None:
            # Count the damage only on the failure path; the happy path
            # stays one query per scenario.
            missing = sum(1 for k in keys if k not in store)
            require(
                False,
                f"store {store.path} is missing {missing} of "
                f"{len(keys)} scenario records — was every shard "
                "computed and merged?",
            )
        if sink is not None:
            sink.write(record)
        if results is not None:
            results.append(record if decode is None else decode(record))
    return results


def run_cached_batch(
    worker: Callable[[S], R],
    scenarios: Sequence[S],
    store: ResultStore,
    *,
    sink: ResultSink | None = None,
    collect: bool = True,
    decode: Decoder | None = None,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    executor: str = "process",
    on_result: Callable[[int], None] | None = None,
    group_by: Callable[[S], Hashable] | None = None,
    cancel: Callable[[], bool] | None = None,
    backend: str | None = None,
    batch_worker: Callable[..., list[R]] | None = None,
) -> CachedRun:
    """Evaluate ``scenarios``, serving and checkpointing via ``store``.

    Args:
        worker: Module-level callable ``scenario -> result``.
        scenarios: The batch; may be empty.
        store: Persistent result store; its code fingerprint scopes the
            keys (stale stores fail at open time, not here).
        sink: Optional final-output sink; written *from the store* in
            scenario order once evaluation finishes, so output bytes do
            not depend on which scenarios were cached.
        collect: ``False`` skips accumulating decoded results.
        decode: Optional record decoder (e.g.
            :func:`repro.engine.sweeps.bound_result_from_record`) for
            the returned list; without it records are returned as-is.
        max_workers: Engine pool width for the fresh scenarios.
        chunk_size: Engine chunk size (default: auto).
        executor: ``"process"`` or ``"thread"``.
        on_result: Hook called with the running count after each fresh
            record is checkpointed.
        cancel: Optional predicate polled before evaluation starts and
            after every fresh checkpoint; returning ``True`` raises
            :class:`JobCancelled` with all completed work committed.
        group_by: Optional shared-artifact grouping key, forwarded to
            :func:`repro.engine.run_batch` for the cache-miss subset.
            Store keys stay strictly per-scenario — resume and shard
            semantics are untouched — but the misses are partitioned
            group-wise, so a warm store never forces a context rebuild
            for a group whose remaining scenarios are all cached, and a
            half-warm group is still evaluated against one context.
        backend: Optional kernel backend name, forwarded to
            :func:`repro.engine.run_batch` for the cache-miss subset
            (see :meth:`repro.engine.BatchEngine.map`).  Store keys and
            records are backend-independent, so a store warmed by one
            backend serves every other bit-identical backend.
        batch_worker: Optional family batch entry point, forwarded with
            ``backend``.

    Returns:
        A :class:`CachedRun` with results and cache statistics.
    """
    keys = [scenario_key(s, store.fingerprint) for s in scenarios]
    pending: dict[str, int] = {}
    for index, key in enumerate(keys):
        if key not in pending and key not in store:
            pending[key] = index
    missing = sorted(pending.values())
    if missing:
        if cancel is not None and cancel():
            raise JobCancelled(
                "batch cancelled before evaluation started"
            )
        try:
            run_batch(
                worker,
                [scenarios[i] for i in missing],
                max_workers=max_workers,
                chunk_size=chunk_size,
                executor=executor,
                sink=_CheckpointSink(
                    store, [keys[i] for i in missing], on_result, cancel
                ),
                collect=False,
                group_by=group_by,
                backend=backend,
                batch_worker=batch_worker,
            )
        except WorkerError as exc:
            # run_batch saw only the uncached subset; re-pin the index
            # to the caller's scenario list so "scenario 60 failed"
            # still means scenario 60 after a resume skipped 0..59.
            raise WorkerError(
                missing[exc.index], exc.scenario_repr, exc.cause_repr
            ) from exc
        store.commit()
    results = emit_from_store(
        store, scenarios, sink=sink, decode=decode, collect=collect
    )
    return CachedRun(
        results=results,
        total=len(scenarios),
        cached=len(scenarios) - len(missing),
        computed=len(missing),
    )
