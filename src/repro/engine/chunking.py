"""Deterministic chunking and seed derivation for the batch engine.

All primitives are pure functions of their inputs so a sweep's
decomposition — and therefore its results — never depends on worker
count, executor kind or scheduling order:

* :func:`chunk_bounds` splits ``n`` scenarios into contiguous
  ``[start, stop)`` index ranges;
* :func:`grouped_chunk_plan` splits a scenario stream into index chunks
  that never span two shared-artifact groups (the
  :class:`repro.engine.context.ContextKey` partition), so each pool
  worker builds a group's context once and evaluates its whole slice —
  while the engine still emits results in original scenario order;
* :func:`derive_seed` maps ``(base_seed, scenario_index)`` to an
  independent 63-bit stream seed with a SplitMix64 finalizer, so every
  scenario owns its randomness no matter which worker executes it.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.utils.checks import require

_MASK64 = (1 << 64) - 1


def chunk_bounds(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(total)``.

    Args:
        total: Number of scenarios (>= 0).
        chunk_size: Maximum scenarios per chunk (> 0); a chunk size
            larger than ``total`` yields a single chunk.

    Returns:
        Chunks in index order; empty list when ``total == 0``.
    """
    require(total >= 0, f"total must be >= 0, got {total}")
    require(chunk_size > 0, f"chunk_size must be > 0, got {chunk_size}")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def default_chunk_size(total: int, workers: int) -> int:
    """Chunk size targeting ~4 chunks per worker (bounded below by 1).

    Small enough to stream results and balance load, large enough to
    amortise task-dispatch overhead.
    """
    require(workers > 0, f"workers must be > 0, got {workers}")
    if total <= 0:
        return 1
    return max(1, -(-total // (workers * 4)))


def grouped_chunk_plan(
    group_keys: Sequence[Hashable], chunk_size: int
) -> list[list[int]]:
    """Index chunks that respect shared-artifact group boundaries.

    Scenarios are partitioned by their (hashable) group key; indices
    inside a group keep ascending (stream) order, each group is cut
    into chunks of at most ``chunk_size`` — so no chunk ever mixes two
    groups, and a worker evaluating one chunk touches exactly one
    context.  Groups do *not* have to be contiguous in the stream (a
    q-major Figure 5 grid interleaves its three functions); the engine
    scatters results back into scenario order.

    Chunks are ordered by their smallest contained index: when groups
    interleave, the chunks covering the front of the stream are
    submitted (and typically finished) first, so the engine's ordered
    flush holds at most the in-flight chunks' results instead of
    buffering whole trailing groups — streaming stays bounded-memory
    even for fully interleaved grids.  Per-worker context builds are
    unaffected: the per-process memo serves every later chunk of an
    already-seen group.

    A pure function of ``(group_keys, chunk_size)``: the plan — and
    therefore the result stream — is identical for every worker count.

    Args:
        group_keys: One hashable key per scenario, in stream order.
        chunk_size: Maximum scenarios per chunk (> 0).

    Returns:
        Index chunks covering ``range(len(group_keys))`` exactly once.
    """
    require(chunk_size > 0, f"chunk_size must be > 0, got {chunk_size}")
    groups: dict[Hashable, list[int]] = {}
    for index, key in enumerate(group_keys):
        groups.setdefault(key, []).append(index)
    plan: list[list[int]] = []
    for indices in groups.values():
        for start in range(0, len(indices), chunk_size):
            plan.append(indices[start : start + chunk_size])
    plan.sort(key=lambda chunk: chunk[0])
    return plan


def derive_seed(base_seed: int, index: int) -> int:
    """Independent per-scenario seed via a SplitMix64 finalizer.

    The mapping is injective on ``index`` for a fixed ``base_seed`` and
    avalanches, so adjacent scenario indices get statistically unrelated
    streams (plain ``base_seed + index`` would correlate neighbouring
    Mersenne-Twister states).

    Args:
        base_seed: The sweep-level seed.
        index: Scenario index within the sweep (>= 0).

    Returns:
        A non-negative seed < 2**63.
    """
    require(index >= 0, f"index must be >= 0, got {index}")
    z = (base_seed + (index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & ((1 << 63) - 1)
