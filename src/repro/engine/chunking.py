"""Deterministic chunking and seed derivation for the batch engine.

Both primitives are pure functions of their inputs so a sweep's
decomposition — and therefore its results — never depends on worker
count, executor kind or scheduling order:

* :func:`chunk_bounds` splits ``n`` scenarios into contiguous
  ``[start, stop)`` index ranges;
* :func:`derive_seed` maps ``(base_seed, scenario_index)`` to an
  independent 63-bit stream seed with a SplitMix64 finalizer, so every
  scenario owns its randomness no matter which worker executes it.
"""

from __future__ import annotations

from repro.utils.checks import require

_MASK64 = (1 << 64) - 1


def chunk_bounds(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(total)``.

    Args:
        total: Number of scenarios (>= 0).
        chunk_size: Maximum scenarios per chunk (> 0); a chunk size
            larger than ``total`` yields a single chunk.

    Returns:
        Chunks in index order; empty list when ``total == 0``.
    """
    require(total >= 0, f"total must be >= 0, got {total}")
    require(chunk_size > 0, f"chunk_size must be > 0, got {chunk_size}")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def default_chunk_size(total: int, workers: int) -> int:
    """Chunk size targeting ~4 chunks per worker (bounded below by 1).

    Small enough to stream results and balance load, large enough to
    amortise task-dispatch overhead.
    """
    require(workers > 0, f"workers must be > 0, got {workers}")
    if total <= 0:
        return 1
    return max(1, -(-total // (workers * 4)))


def derive_seed(base_seed: int, index: int) -> int:
    """Independent per-scenario seed via a SplitMix64 finalizer.

    The mapping is injective on ``index`` for a fixed ``base_seed`` and
    avalanches, so adjacent scenario indices get statistically unrelated
    streams (plain ``base_seed + index`` would correlate neighbouring
    Mersenne-Twister states).

    Args:
        base_seed: The sweep-level seed.
        index: Scenario index within the sweep (>= 0).

    Returns:
        A non-negative seed < 2**63.
    """
    require(index >= 0, f"index must be >= 0, got {index}")
    z = (base_seed + (index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & ((1 << 63) - 1)
