"""The batch-analysis engine core.

:func:`run_batch` (and the class-shaped :class:`BatchEngine`) evaluates a
worker function over many scenarios with:

* **deterministic decomposition** — scenarios are split into contiguous
  index chunks (:func:`repro.engine.chunking.chunk_bounds`) and results
  are re-assembled in scenario order, so the output is a pure function
  of ``(worker, scenarios)`` regardless of worker count, executor kind
  or completion order;
* **a `concurrent.futures` worker pool** — ``ProcessPoolExecutor`` for
  CPU-bound analyses (the default) or ``ThreadPoolExecutor`` where
  fork/pickle overhead is not worth it; ``max_workers`` of ``None``/``1``
  runs inline with zero pool overhead;
* **streaming emission** — completed chunks are flushed to an optional
  :class:`~repro.engine.sinks.ResultSink` *in scenario order* as soon as
  their predecessors have been flushed; with ``collect=False`` results
  are *only* streamed (never accumulated), so sweeps of 10^5+ scenarios
  hold at most the bounded out-of-order chunk buffer in memory.

Workers must be module-level callables (picklable for the process pool)
taking one scenario and returning one result.  Scenarios should carry
their own seeds (see :func:`repro.engine.chunking.derive_seed`) so that
randomised analyses stay reproducible under any parallelism.
"""

from __future__ import annotations

import functools
import os
from collections.abc import Callable, Hashable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import TypeVar

from repro.engine.chunking import (
    chunk_bounds,
    default_chunk_size,
    grouped_chunk_plan,
)
from repro.engine.sinks import ResultSink, as_record
from repro.utils.checks import require

S = TypeVar("S")
R = TypeVar("R")

#: Supported executor kinds.
EXECUTORS = ("process", "thread")

#: Upper bound on chunks enqueued beyond the pool width, limiting both
#: the futures backlog and the out-of-order buffer the ordered flush may
#: have to hold.
_MAX_INFLIGHT_FACTOR = 4


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Tuning knobs for a :class:`BatchEngine`.

    Attributes:
        max_workers: Pool width.  ``None``, ``0`` or ``1`` evaluates
            inline in the calling process (the reference path every
            parallel configuration must reproduce bit-identically).
        chunk_size: Scenarios per chunk; ``None`` picks
            :func:`~repro.engine.chunking.default_chunk_size`.
        executor: ``"process"`` (default; true parallelism for the
            CPU-bound analyses) or ``"thread"``.
    """

    max_workers: int | None = None
    chunk_size: int | None = None
    executor: str = "process"

    def __post_init__(self) -> None:
        require(
            self.executor in EXECUTORS,
            f"executor must be one of {EXECUTORS}, got {self.executor!r}",
        )
        if self.max_workers is not None:
            require(
                self.max_workers >= 0,
                f"max_workers must be >= 0, got {self.max_workers}",
            )
        if self.chunk_size is not None:
            require(
                self.chunk_size > 0,
                f"chunk_size must be > 0, got {self.chunk_size}",
            )

    @property
    def parallel(self) -> bool:
        """Whether a worker pool (rather than the inline path) is used."""
        return self.max_workers is not None and self.max_workers > 1


def resolve_workers(requested: int | None = None) -> int:
    """Effective worker count: ``requested`` or the CPU count."""
    if requested is not None and requested > 0:
        return requested
    return os.cpu_count() or 1


class WorkerError(RuntimeError):
    """A worker raised while evaluating one scenario.

    In a 10^5-scenario sweep, "some exception somewhere in the pool" is
    useless — this wrapper pins the failure to its scenario index and
    repr.  It stores only the index and strings (plus the original
    exception as ``__cause__`` on the inline path), so it pickles
    cleanly back across a process-pool boundary, where the original
    traceback cannot survive.

    Attributes:
        index: Index of the failing scenario within the sweep.
        scenario_repr: ``repr`` of the failing scenario (truncated).
        cause_repr: ``repr`` of the original exception.
    """

    def __init__(
        self, index: int, scenario_repr: str, cause_repr: str
    ) -> None:
        super().__init__(
            f"worker failed on scenario {index} "
            f"({scenario_repr}): {cause_repr}"
        )
        self.index = index
        self.scenario_repr = scenario_repr
        self.cause_repr = cause_repr

    def __reduce__(self):
        return (
            type(self),
            (self.index, self.scenario_repr, self.cause_repr),
        )


def _worker_error(
    index: int, scenario: object, exc: BaseException
) -> WorkerError:
    scenario_repr = repr(scenario)
    if len(scenario_repr) > 200:
        scenario_repr = scenario_repr[:197] + "..."
    return WorkerError(index, scenario_repr, repr(exc))


def _run_chunk(
    worker: Callable[[S], R], scenarios: Sequence[S], start: int
) -> list[R]:
    """Evaluate one chunk sequentially (executed inside a pool worker)."""
    results: list[R] = []
    for offset, scenario in enumerate(scenarios):
        try:
            results.append(worker(scenario))
        except WorkerError:
            raise
        except Exception as exc:
            raise _worker_error(start + offset, scenario, exc) from exc
    return results


def _run_chunk_indexed(
    worker: Callable[[S], R],
    scenarios: Sequence[S],
    indices: Sequence[int],
) -> list[R]:
    """Evaluate one (possibly non-contiguous) index chunk sequentially.

    The grouped counterpart of :func:`_run_chunk`: scenario ``k`` of the
    chunk carries original stream index ``indices[k]``, which is what a
    :class:`WorkerError` must pin.
    """
    results: list[R] = []
    for offset, scenario in enumerate(scenarios):
        try:
            results.append(worker(scenario))
        except WorkerError:
            raise
        except Exception as exc:
            raise _worker_error(indices[offset], scenario, exc) from exc
    return results


def _run_chunk_batched(
    batch: Callable[[Sequence[S]], list[R]],
    scenarios: Sequence[S],
    indices: Sequence[int],
) -> list[R]:
    """Evaluate one index chunk through a family batch entry point.

    The whole chunk goes into ``batch`` as one call (one array operation
    for the struct-of-arrays kernels); a failure therefore cannot be
    pinned to a single scenario, so the :class:`WorkerError` carries the
    chunk's first stream index and scenario.
    """
    try:
        results = list(batch(scenarios))
    except WorkerError:
        raise
    except Exception as exc:
        raise _worker_error(indices[0], scenarios[0], exc) from exc
    if len(results) != len(scenarios):
        raise _worker_error(
            indices[0],
            scenarios[0],
            ValueError(
                f"batch worker returned {len(results)} results for "
                f"{len(scenarios)} scenarios"
            ),
        )
    return results


def _resolve_batch(
    backend: str | None,
    batch_worker: Callable[..., list[R]] | None,
) -> Callable[[Sequence[S]], list[R]] | None:
    """The chunk-batch callable, or ``None`` for the per-scenario path.

    Batching engages only when *both* a backend name and a family batch
    worker are supplied **and** the resolved backend declares batch
    support; backends without a batch kernel (``scalar``,
    ``vectorized``) silently keep the per-scenario path, which is the
    documented fallback.  An unknown or unavailable backend name fails
    loudly here (before any pool is spawned).  The returned callable is
    a partial over a module-level worker, hence picklable.
    """
    if backend is None or batch_worker is None:
        return None
    from repro.piecewise.backends import resolve_backend

    if not resolve_backend(backend).supports_batch:
        return None
    return functools.partial(batch_worker, backend=backend)


class BatchEngine:
    """Evaluates scenario batches according to an :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()

    def map(
        self,
        worker: Callable[[S], R],
        scenarios: Sequence[S],
        sink: ResultSink | None = None,
        collect: bool = True,
        group_by: Callable[[S], Hashable] | None = None,
        backend: str | None = None,
        batch_worker: Callable[..., list[R]] | None = None,
    ) -> list[R] | None:
        """Evaluate ``worker`` over ``scenarios``; results in input order.

        Args:
            worker: Module-level callable ``scenario -> result``
                (picklable when the process executor is used).
            scenarios: The batch; may be empty.
            sink: Optional streaming sink; receives
                :func:`~repro.engine.sinks.as_record` of every result in
                scenario order, as chunks complete.
            collect: When ``False`` (requires a ``sink``), results are
                *only* streamed and never accumulated — the constant-
                memory mode for 10^5+-scenario sweeps.
            group_by: Optional ``scenario -> hashable key`` naming the
                shared-artifact group (typically a family's
                ``context_key``).  On the pooled path, chunks then
                respect group boundaries
                (:func:`~repro.engine.chunking.grouped_chunk_plan`) so
                each worker process builds every context once; results
                are still emitted in scenario order and are bit-identical
                to the ungrouped decomposition.  The inline path keeps
                plain scenario order — the per-process context memo
                already amortises there — so grouping never changes the
                reference results.  Chunks are planned in stream-front
                order (see
                :func:`~repro.engine.chunking.grouped_chunk_plan`), so
                the ordered flush buffers at most the in-flight chunks
                even when groups interleave.
            backend: Optional kernel backend name (see
                :mod:`repro.piecewise.backends`).  When the named
                backend supports batch evaluation *and* ``batch_worker``
                is provided, each chunk is evaluated through one batch
                call instead of per-scenario ``worker`` calls; otherwise
                the per-scenario path runs unchanged.  Unknown or
                unavailable names raise ``ValueError`` up front.
            batch_worker: Optional module-level callable
                ``(scenarios, *, backend) -> list[result]`` — the
                family's batch entry point, required for ``backend`` to
                take effect.

        Returns:
            One result per scenario, ordered like ``scenarios``; ``None``
            when ``collect`` is ``False``.
        """
        if not collect:
            require(sink is not None, "collect=False requires a sink")
        batch = _resolve_batch(backend, batch_worker)
        if not self.config.parallel:
            if batch is not None:
                return self._map_inline_batched(
                    batch, scenarios, sink, collect, group_by
                )
            results: list[R] | None = [] if collect else None
            for index, scenario in enumerate(scenarios):
                try:
                    result = worker(scenario)
                except WorkerError:
                    raise
                except Exception as exc:
                    raise _worker_error(index, scenario, exc) from exc
                if sink is not None:
                    sink.write(as_record(result))
                if results is not None:
                    results.append(result)
            return results
        if group_by is not None:
            return self._map_pooled_grouped(
                worker, scenarios, sink, collect, group_by, batch
            )
        return self._map_pooled(worker, scenarios, sink, collect, batch)

    def _map_inline_batched(
        self,
        batch: Callable[[Sequence[S]], list[R]],
        scenarios: Sequence[S],
        sink: ResultSink | None,
        collect: bool,
        group_by: Callable[[S], Hashable] | None,
    ) -> list[R] | None:
        """Inline evaluation through a batch entry point, chunk by chunk.

        Unlike the per-scenario inline path, batching pays off only on
        whole chunks, so the stream is decomposed exactly like the
        pooled paths (group-respecting plan when ``group_by`` is set,
        contiguous chunks otherwise) and results are scattered back and
        flushed in scenario order.  Results are bit-identical to the
        per-scenario path whenever the backend declares bit-identical
        exactness — the parity tests assert this.
        """
        chunk_size = self.config.chunk_size or default_chunk_size(
            len(scenarios), 1
        )
        if group_by is not None:
            keys = [group_by(scenario) for scenario in scenarios]
            plan = grouped_chunk_plan(keys, chunk_size)
        else:
            plan = [
                list(range(start, stop))
                for start, stop in chunk_bounds(len(scenarios), chunk_size)
            ]
        buffer: dict[int, R] = {}
        ordered: list[R] | None = [] if collect else None
        next_index = 0
        for indices in plan:
            chunk_results = _run_chunk_batched(
                batch, [scenarios[i] for i in indices], indices
            )
            for index, result in zip(indices, chunk_results):
                buffer[index] = result
            while next_index in buffer:
                result = buffer.pop(next_index)
                if sink is not None:
                    sink.write(as_record(result))
                if ordered is not None:
                    ordered.append(result)
                next_index += 1
        return ordered

    def _map_pooled(
        self,
        worker: Callable[[S], R],
        scenarios: Sequence[S],
        sink: ResultSink | None,
        collect: bool,
        batch: Callable[[Sequence[S]], list[R]] | None = None,
    ) -> list[R] | None:
        workers = resolve_workers(self.config.max_workers)
        chunk_size = self.config.chunk_size or default_chunk_size(
            len(scenarios), workers
        )
        chunks = chunk_bounds(len(scenarios), chunk_size)
        if not chunks:
            return [] if collect else None
        executor_cls: type[Executor] = (
            ProcessPoolExecutor
            if self.config.executor == "process"
            else ThreadPoolExecutor
        )
        done_chunks: dict[int, list[R]] = {}
        ordered: list[R] | None = [] if collect else None
        next_chunk = 0  # next chunk index to flush
        max_inflight = workers * _MAX_INFLIGHT_FACTOR
        with executor_cls(max_workers=workers) as pool:
            pending: dict[Future[list[R]], int] = {}
            submit_cursor = 0
            while submit_cursor < len(chunks) or pending:
                # Gate on pending + done-but-unflushed so a slow early
                # chunk cannot grow the out-of-order buffer unboundedly.
                while (
                    submit_cursor < len(chunks)
                    and len(pending) + len(done_chunks) < max_inflight
                ):
                    start, stop = chunks[submit_cursor]
                    if batch is not None:
                        future = pool.submit(
                            _run_chunk_batched,
                            batch,
                            list(scenarios[start:stop]),
                            range(start, stop),
                        )
                    else:
                        future = pool.submit(
                            _run_chunk,
                            worker,
                            list(scenarios[start:stop]),
                            start,
                        )
                    pending[future] = submit_cursor
                    submit_cursor += 1
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    done_chunks[pending.pop(future)] = future.result()
                while next_chunk in done_chunks:
                    chunk_results = done_chunks.pop(next_chunk)
                    if sink is not None:
                        for result in chunk_results:
                            sink.write(as_record(result))
                    if ordered is not None:
                        ordered.extend(chunk_results)
                    next_chunk += 1
        return ordered

    def _map_pooled_grouped(
        self,
        worker: Callable[[S], R],
        scenarios: Sequence[S],
        sink: ResultSink | None,
        collect: bool,
        group_by: Callable[[S], Hashable],
        batch: Callable[[Sequence[S]], list[R]] | None = None,
    ) -> list[R] | None:
        """Pooled evaluation over a group-respecting chunk plan.

        Chunks are single-group slices (possibly non-contiguous in the
        stream), so results are scattered back index by index and
        flushed in scenario order.  Submission is gated on the futures
        backlog; because the plan is ordered by smallest contained
        index, the chunk holding the next index to flush is always the
        oldest unfinished one, so the out-of-order buffer never exceeds
        the in-flight window of results.
        """
        workers = resolve_workers(self.config.max_workers)
        chunk_size = self.config.chunk_size or default_chunk_size(
            len(scenarios), workers
        )
        keys = [group_by(scenario) for scenario in scenarios]
        plan = grouped_chunk_plan(keys, chunk_size)
        if not plan:
            return [] if collect else None
        executor_cls: type[Executor] = (
            ProcessPoolExecutor
            if self.config.executor == "process"
            else ThreadPoolExecutor
        )
        buffer: dict[int, R] = {}  # completed, not yet flushed, by index
        ordered: list[R] | None = [] if collect else None
        next_index = 0  # next scenario index to flush
        max_inflight = workers * _MAX_INFLIGHT_FACTOR
        with executor_cls(max_workers=workers) as pool:
            pending: dict[Future[list[R]], int] = {}
            submit_cursor = 0
            while submit_cursor < len(plan) or pending:
                while (
                    submit_cursor < len(plan)
                    and len(pending) < max_inflight
                ):
                    indices = plan[submit_cursor]
                    if batch is not None:
                        future = pool.submit(
                            _run_chunk_batched,
                            batch,
                            [scenarios[i] for i in indices],
                            indices,
                        )
                    else:
                        future = pool.submit(
                            _run_chunk_indexed,
                            worker,
                            [scenarios[i] for i in indices],
                            indices,
                        )
                    pending[future] = submit_cursor
                    submit_cursor += 1
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = plan[pending.pop(future)]
                    for index, result in zip(chunk, future.result()):
                        buffer[index] = result
                while next_index in buffer:
                    result = buffer.pop(next_index)
                    if sink is not None:
                        sink.write(as_record(result))
                    if ordered is not None:
                        ordered.append(result)
                    next_index += 1
        return ordered


def run_batch(
    worker: Callable[[S], R],
    scenarios: Sequence[S],
    *,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    executor: str = "process",
    sink: ResultSink | None = None,
    collect: bool = True,
    group_by: Callable[[S], Hashable] | None = None,
    backend: str | None = None,
    batch_worker: Callable[..., list[R]] | None = None,
) -> list[R] | None:
    """One-call batch evaluation (the functional face of the engine).

    Args:
        worker: Module-level callable ``scenario -> result``.
        scenarios: The batch; may be empty.
        max_workers: ``None``/``0``/``1`` for the inline reference path,
            ``N > 1`` for a pool of ``N`` workers.
        chunk_size: Scenarios per chunk (default: auto).
        executor: ``"process"`` or ``"thread"``.
        sink: Optional streaming sink (records in scenario order).
        collect: ``False`` (with a ``sink``) streams without
            accumulating — constant memory for arbitrarily large sweeps.
        group_by: Optional shared-artifact grouping key (a family's
            ``context_key``); pooled chunks then respect group
            boundaries so each worker builds every
            :class:`repro.engine.context.AnalysisContext` once.  Purely
            a locality knob: results stay bit-identical and in scenario
            order.
        backend: Optional kernel backend name; with a ``batch_worker``
            and a batch-capable backend, chunks are evaluated as single
            batch calls (see :meth:`BatchEngine.map`).
        batch_worker: Optional family batch entry point
            ``(scenarios, *, backend) -> list[result]``.

    Returns:
        One result per scenario, in scenario order — identical for every
        ``(max_workers, chunk_size, executor, group_by)`` configuration —
        or ``None`` when ``collect`` is ``False``.
    """
    config = EngineConfig(
        max_workers=max_workers, chunk_size=chunk_size, executor=executor
    )
    return BatchEngine(config).map(
        worker,
        scenarios,
        sink=sink,
        collect=collect,
        group_by=group_by,
        backend=backend,
        batch_worker=batch_worker,
    )
