"""Batch-analysis engine (substrate S12): many scenarios, one call.

The experiment layer's sweeps — Figure 5's Q grid, the acceptance
study's utilization × seed matrix, and anything larger — are expressed
as flat scenario lists and evaluated by :func:`run_batch`:
deterministically chunked, optionally fanned out over a
``concurrent.futures`` worker pool, and streamed to JSONL/CSV sinks —
with ``collect=False`` nothing is accumulated, so 10^5+-scenario sweeps
run in constant memory.  The inline path
(``max_workers=None``) is the reference: every parallel configuration
reproduces it bit-identically, because chunking is a pure function of
the input and every randomised scenario carries its own derived seed.

With a :class:`repro.store.ResultStore`, :func:`run_cached_batch`
makes sweeps *incremental*: already-computed scenarios are served from
the content-addressed store, fresh ones are checkpointed as they
stream, and final sinks are emitted from the store in scenario order —
so interrupted-and-resumed or sharded-and-merged sweeps produce
byte-identical output.  A failing worker surfaces as
:class:`WorkerError`, pinning the scenario index even across the
process-pool boundary.

Scenario shapes are *families* (:mod:`repro.engine.registry`): a
frozen scenario dataclass, a module-level worker and a record decoder,
registered under a stable name — ``bound`` and ``study`` in
:mod:`repro.engine.sweeps`, ``sim`` and ``edf-study`` in
:mod:`repro.engine.families`.  The registry is what lets declarative
campaign specs (:mod:`repro.campaign`) reach any workload by name.

Families evaluate against *shared-artifact contexts*
(:mod:`repro.engine.context`): expensive per-task-set / per-function
state — generated task sets, safe-Q vectors, delay maxima, segment
indices — is built once per :class:`ContextKey` through a per-process
memo, and ``run_batch(..., group_by=family.context_key)`` shapes pooled
chunks so each worker builds every context exactly once while output
order and results stay bit-identical to the ungrouped path.

Layering: ``engine`` sits above ``core``/``sched``/``sim``/``tasks``
(whose analyses it invokes through the family workers) and below
:mod:`repro.experiments` and :mod:`repro.campaign`, whose public
generators route through it.  See ``docs/architecture.md``.
"""

from repro.engine.cached import (
    CachedRun,
    JobCancelled,
    emit_from_store,
    run_cached_batch,
)
from repro.engine.chunking import (
    chunk_bounds,
    default_chunk_size,
    derive_seed,
    grouped_chunk_plan,
)
from repro.engine.context import (
    AnalysisContext,
    ContextKey,
    benchmark_context_key,
    build_context,
    clear_context_cache,
    get_context,
    taskset_context_key,
)
from repro.engine.engine import (
    EXECUTORS,
    BatchEngine,
    EngineConfig,
    WorkerError,
    resolve_workers,
    run_batch,
)
from repro.engine.families import (
    EdfStudyResult,
    EdfStudyScenario,
    SimResult,
    SimScenario,
    edf_study_result_from_record,
    evaluate_edf_study_scenario,
    evaluate_sim_scenario,
    sim_result_from_record,
)
from repro.engine.registry import (
    AxisSpec,
    ScenarioFamily,
    family_names,
    get_family,
    register_family,
)
from repro.engine.sinks import (
    CsvSink,
    JsonlSink,
    MemorySink,
    ResultSink,
    as_record,
    record_line,
)
from repro.engine.sweeps import (
    BoundResult,
    BoundScenario,
    StudyResult,
    StudyScenario,
    benchmark_function,
    bound_result_from_record,
    evaluate_bound_batch,
    evaluate_bound_scenario,
    evaluate_study_batch,
    evaluate_study_scenario,
    prepared_task_set,
    q_sweep_scenarios,
    study_result_from_record,
)

__all__ = [
    "chunk_bounds",
    "default_chunk_size",
    "derive_seed",
    "grouped_chunk_plan",
    "AnalysisContext",
    "ContextKey",
    "benchmark_context_key",
    "build_context",
    "clear_context_cache",
    "get_context",
    "taskset_context_key",
    "EngineConfig",
    "BatchEngine",
    "run_batch",
    "resolve_workers",
    "EXECUTORS",
    "WorkerError",
    "CachedRun",
    "JobCancelled",
    "run_cached_batch",
    "emit_from_store",
    "ResultSink",
    "MemorySink",
    "JsonlSink",
    "CsvSink",
    "as_record",
    "record_line",
    "BoundScenario",
    "BoundResult",
    "StudyScenario",
    "StudyResult",
    "benchmark_function",
    "bound_result_from_record",
    "evaluate_bound_batch",
    "evaluate_bound_scenario",
    "evaluate_study_batch",
    "evaluate_study_scenario",
    "prepared_task_set",
    "q_sweep_scenarios",
    "study_result_from_record",
    "SimScenario",
    "SimResult",
    "evaluate_sim_scenario",
    "sim_result_from_record",
    "EdfStudyScenario",
    "EdfStudyResult",
    "evaluate_edf_study_scenario",
    "edf_study_result_from_record",
    "AxisSpec",
    "ScenarioFamily",
    "register_family",
    "get_family",
    "family_names",
]
