"""The scenario-family registry: one name per sweepable workload shape.

A *scenario family* bundles everything the engine and the campaign
compiler need to know about one kind of scenario:

* the frozen scenario dataclass (the unit of work and the store key);
* the module-level worker evaluating one scenario (picklable, so it
  fans out over process pools);
* the record decoder rebuilding a typed result from a sink/store
  record (what makes the family servable from a
  :class:`repro.store.ResultStore`);
* its *shared-artifact declaration* — a ``context_key`` function mapping
  a scenario to the :class:`repro.engine.context.ContextKey` it shares
  with its grid neighbours, plus the ``artifacts`` the family consumes
  from the built :class:`~repro.engine.context.AnalysisContext`.  The
  engine groups scenario streams by this key
  (:func:`repro.engine.run_batch` with ``group_by``) so each worker
  builds every context once and evaluates its whole slice against it.

The built-in families — ``bound`` and ``study`` from
:mod:`repro.engine.sweeps`, ``sim`` and ``edf-study`` from
:mod:`repro.engine.families` — are registered at import time.  Adding a
new family is one dataclass plus one worker function plus a
:func:`register_family` call; the campaign subsystem
(:mod:`repro.campaign`) then reaches it by name from declarative specs
with no further wiring.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import MISSING, dataclass, fields
from typing import Any, get_args, get_origin, get_type_hints

from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class AxisSpec:
    """One sweepable field of a scenario family, self-described.

    Derived from the family's frozen scenario dataclass (name, type,
    default) plus the family's registered help strings, so declarative
    frontends — the campaign compiler, the CLI, generated docs — can
    present a family's full parameter surface without importing its
    module.

    Attributes:
        name: Scenario dataclass field name (what campaign ``axes`` and
            ``defaults`` refer to).
        type_name: Human/JSON-facing type label (``"float"``, ``"int"``,
            ``"str"``, ``"bool"``, ``"list[str]"``, …).
        required: Whether the field has no default (every campaign must
            cover it with an axis or a default).
        default: The field's default value (``None`` when required).
        help: One-line description registered by the family.
    """

    name: str
    type_name: str
    required: bool
    default: Any
    help: str


def _type_label(hint: Any) -> str:
    """Render a scenario field's type hint as a stable, JSON-ish label."""
    if get_origin(hint) is tuple:
        args = get_args(hint)
        if args and args[-1] is Ellipsis:
            return f"list[{_type_label(args[0])}]"
        return "list"
    return getattr(hint, "__name__", str(hint))


@dataclass(frozen=True, slots=True)
class ScenarioFamily:
    """Everything the engine knows about one scenario shape.

    Attributes:
        name: Registry key (kebab-case, stable across releases — it is
            referenced by campaign specs and store manifests).
        scenario_type: The frozen scenario dataclass.
        worker: Module-level callable ``scenario -> result``.
        decoder: Callable rebuilding the typed result from its
            sink/store record (inverse of
            :func:`repro.engine.sinks.as_record` after the strict-JSON
            round trip).
        summary: One-line description for ``--help``-style listings.
        context_key: Optional callable ``scenario ->``
            :class:`repro.engine.context.ContextKey` naming the shared
            artifacts the scenario evaluates against; ``None`` for
            families without shared state.  Passed as ``group_by`` to
            the engine so grid slices sharing a key are evaluated
            together.
        artifacts: The artifact names (see :mod:`repro.engine.context`)
            the family's worker consumes from the built context.
        field_help: ``(field name, one-line help)`` pairs documenting
            the scenario dataclass's fields; surfaced through
            :meth:`axes` to the CLI, docs generator and campaign
            error messages.
        batch_worker: Optional module-level batch entry point
            ``(scenarios, *, backend) -> list[result]`` evaluating a
            whole chunk through a kernel backend's struct-of-arrays
            path (see :mod:`repro.piecewise.backends`).  ``None`` means
            the family always evaluates per scenario — a ``--backend``
            request then falls back silently, which is the documented
            contract.
    """

    name: str
    scenario_type: type
    worker: Callable[[Any], Any]
    decoder: Callable[[Mapping[str, Any]], Any]
    summary: str
    context_key: Callable[[Any], Any] | None = None
    artifacts: tuple[str, ...] = ()
    field_help: tuple[tuple[str, str], ...] = ()
    batch_worker: Callable[..., list[Any]] | None = None

    def axes(self) -> tuple[AxisSpec, ...]:
        """The family's sweepable axes, in scenario-field order.

        One :class:`AxisSpec` per scenario dataclass field — name, type
        label, required/default, and the registered help string — so
        frontends can render a family's whole parameter surface (CLI
        listings, the generated ``docs/api.md`` tables) from the
        registry alone.
        """
        hints = get_type_hints(self.scenario_type)
        help_by_name = dict(self.field_help)
        specs = []
        for field in fields(self.scenario_type):
            required = (
                field.default is MISSING
                and field.default_factory is MISSING
            )
            specs.append(
                AxisSpec(
                    name=field.name,
                    type_name=_type_label(hints[field.name]),
                    required=required,
                    default=None if required else (
                        field.default
                        if field.default is not MISSING
                        else field.default_factory()
                    ),
                    help=help_by_name.get(field.name, ""),
                )
            )
        return tuple(specs)


_FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily, replace: bool = False) -> None:
    """Register a scenario family under its name.

    Args:
        family: The family to register.
        replace: Allow overwriting an existing registration (tests);
            by default a duplicate name fails loudly.
    """
    require(
        bool(family.name), "scenario family needs a non-empty name"
    )
    require(
        replace or family.name not in _FAMILIES,
        f"scenario family {family.name!r} is already registered",
    )
    _FAMILIES[family.name] = family


def get_family(name: str) -> ScenarioFamily:
    """The registered family called ``name``.

    Raises:
        ValueError: for unknown names, listing the known ones.
    """
    require(
        name in _FAMILIES,
        f"unknown scenario family {name!r}; registered families: "
        f"{', '.join(family_names())}",
    )
    return _FAMILIES[name]


def family_names() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def _register_builtins() -> None:
    """Register the four built-in families (idempotent per import)."""
    from repro.engine import families, sweeps

    register_family(
        ScenarioFamily(
            name="bound",
            scenario_type=sweeps.BoundScenario,
            worker=sweeps.evaluate_bound_scenario,
            decoder=sweeps.bound_result_from_record,
            summary="Algorithm 1 vs Eq. 4 delay bounds over (function, Q) "
            "grids (the Figure 5 shape)",
            context_key=sweeps.bound_context_key,
            artifacts=sweeps.BOUND_ARTIFACTS,
            batch_worker=sweeps.evaluate_bound_batch,
            field_help=(
                ("function", "benchmark delay-function name "
                 "(gaussian1, gaussian2, bimodal)"),
                ("q", "floating-NPR length to analyse"),
                ("interpretation", "benchmark parameter interpretation"),
                ("knots", "piecewise resolution of the benchmark function"),
            ),
        )
    )
    register_family(
        ScenarioFamily(
            name="study",
            scenario_type=sweeps.StudyScenario,
            worker=sweeps.evaluate_study_scenario,
            decoder=sweeps.study_result_from_record,
            summary="fixed-priority delay-aware acceptance studies on "
            "generated task sets (the EXT-D shape)",
            context_key=sweeps.study_context_key,
            artifacts=sweeps.STUDY_ARTIFACTS,
            batch_worker=sweeps.evaluate_study_batch,
            field_help=(
                ("utilization", "target total utilization of the "
                 "generated set"),
                ("seed", "task-set generator seed (scenario-owned)"),
                ("n_tasks", "tasks per generated set"),
                ("q_fraction", "fraction of the maximal safe NPR length "
                 "to assign"),
                ("delay_height", "max f_i as a fraction of each task's "
                 "WCET"),
                ("methods", "delay-aware test methods to run"),
            ),
        )
    )
    register_family(
        ScenarioFamily(
            name="sim",
            scenario_type=families.SimScenario,
            worker=families.evaluate_sim_scenario,
            decoder=families.sim_result_from_record,
            summary="simulator runs comparing observed preemption delay "
            "against Algorithm 1's bound (Theorem 1 at sweep scale)",
            context_key=families.sim_context_key,
            artifacts=families.SIM_ARTIFACTS,
            field_help=(
                ("utilization", "target total utilization of the "
                 "generated set"),
                ("seed", "scenario-owned seed (task set, offsets, "
                 "release jitter)"),
                ("n_tasks", "tasks per generated set"),
                ("q_fraction", "fraction of the maximal safe NPR length "
                 "to assign"),
                ("delay_height", "max f_i as a fraction of each task's "
                 "WCET"),
                ("policy", "scheduling policy (fp or edf)"),
                ("horizon_factor", "simulated horizon as a multiple of "
                 "the largest period"),
                ("sporadic", "randomize inter-arrival times"),
            ),
        )
    )
    register_family(
        ScenarioFamily(
            name="edf-study",
            scenario_type=families.EdfStudyScenario,
            worker=families.evaluate_edf_study_scenario,
            decoder=families.edf_study_result_from_record,
            summary="EDF delay-aware acceptance studies with "
            "Bertogna-Baruah NPR lengths",
            context_key=families.edf_study_context_key,
            artifacts=families.EDF_STUDY_ARTIFACTS,
            field_help=(
                ("utilization", "target total utilization of the "
                 "generated set"),
                ("seed", "task-set generator seed (scenario-owned)"),
                ("n_tasks", "tasks per generated set"),
                ("q_fraction", "fraction of the maximal safe NPR length "
                 "to assign"),
                ("delay_height", "max f_i as a fraction of each task's "
                 "WCET"),
                ("methods", "EDF delay-aware test methods to run"),
            ),
        )
    )


_register_builtins()
