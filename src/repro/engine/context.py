"""Shared-artifact analysis contexts: compute per-task-set state once.

Algorithm 1 and the Eq. 4 recurrence are cheap per ``(f, Q)`` point, but
a sweep grid evaluates *many* points against the *same* expensive shared
inputs: the generated task set, its per-task delay functions, the
Lehoczky blocking tolerances and safe-Q vectors (:mod:`repro.npr`), the
global delay maxima the event-accounting RTA methods read O(n²) times,
and the flattened :class:`~repro.piecewise.vectorized.SegmentIndex`
views.  Re-deriving those per scenario is the dominant waste of a
fig5-shaped grid (hundreds of Q / height points per task set).

This module makes the shared state explicit:

* :class:`ContextKey` — a frozen, hashable identity derived from exactly
  the scenario fields that determine the artifacts (seed, n_tasks,
  utilization, delay shape — *not* the swept ``q``/``q_fraction``);
* :class:`AnalysisContext` — a frozen, picklable bundle of the artifacts
  themselves, built once per key;
* :func:`get_context` — a per-process LRU memo, so engine workers
  evaluating a grouped slice (see
  :func:`repro.engine.chunking.grouped_chunk_plan`) build each context
  exactly once;
* artifact names (:data:`TASK_SET`, :data:`FP_CURVES`, …) that scenario
  families *declare* in the registry
  (:class:`repro.engine.registry.ScenarioFamily`), so the builder only
  computes what a family actually consumes.

Bit-identity is the design constraint: every artifact is produced by the
same public functions the single-shot path calls
(:func:`repro.tasks.generate_task_set`,
:func:`repro.npr.fp_max_npr_lengths`, …), so context-served evaluations
reproduce the context-free ones float for float.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.delay_function import PreemptionDelayFunction
from repro.npr.assignment import apply_npr_lengths
from repro.npr.qmax_edf import edf_max_npr_lengths
from repro.npr.qmax_fp import fp_blocking_tolerances, fp_max_npr_lengths
from repro.piecewise.vectorized import SegmentIndex, segment_index
from repro.tasks.generation import gaussian_delay_factory, generate_task_set
from repro.tasks.task import TaskSet
from repro.utils.caching import SwappableLRU
from repro.utils.checks import require

# ----------------------------------------------------------------------
# Artifact vocabulary
# ----------------------------------------------------------------------

#: The generated, priority-ordered base task set (no NPR lengths yet).
TASK_SET = "task-set"
#: Per-task global maxima ``max f_i`` (what Eq. 4 and the Busquets /
#: Petters event accounting read, repeatedly).
DELAY_MAXIMA = "delay-maxima"
#: Lehoczky blocking tolerances ``beta_i`` plus the fixed-priority
#: safe-Q vector derived from them.
FP_CURVES = "fp-curves"
#: The EDF (Bertogna & Baruah slack) safe-Q vector.
EDF_CURVES = "edf-curves"
#: Flattened :class:`SegmentIndex` per task delay function.
SEGMENT_INDICES = "segment-indices"
#: One Figure 4 benchmark delay function (+ its max and index).
BENCHMARK_FUNCTION = "benchmark-function"

#: Artifacts a task-set-shaped context can carry.
TASKSET_ARTIFACTS = (
    TASK_SET,
    DELAY_MAXIMA,
    FP_CURVES,
    EDF_CURVES,
    SEGMENT_INDICES,
)
#: Artifacts a benchmark-function context can carry.
BENCHMARK_ARTIFACTS = (BENCHMARK_FUNCTION,)

#: Context kinds (the dispatch tag of :func:`build_context`).
TASKSET_KIND = "taskset"
BENCHMARK_KIND = "benchmark"

#: Distinct contexts kept per process.  Grids interleave only a handful
#: of groups at a time (a q-major fig5 grid cycles through its three
#: functions), so a small memo already guarantees one build per worker.
#: ``REPRO_CACHE_SIZE`` overrides this default (see
#: :mod:`repro.utils.caching`), sizing it together with the segment-index
#: and batched-grid memos.
CONTEXT_CACHE_SIZE = 32


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ContextKey:
    """Identity of one shared-artifact context.

    Attributes:
        kind: :data:`TASKSET_KIND` or :data:`BENCHMARK_KIND`.
        params: The determining fields as sorted ``(name, value)``
            pairs — hashable, picklable, and printable for diagnostics.
    """

    kind: str
    params: tuple[tuple[str, Any], ...]

    def __getitem__(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)


def taskset_context_key(
    n_tasks: int,
    utilization: float,
    seed: int,
    delay_height: float,
) -> ContextKey:
    """Key of the task-set context those fields determine.

    The scheduling policy is deliberately *not* part of the key: the
    context carries the safe-Q vectors for both policies, so fp and EDF
    scenarios over the same generated set share one context.
    """
    return ContextKey(
        kind=TASKSET_KIND,
        params=(
            ("delay_height", delay_height),
            ("n_tasks", n_tasks),
            ("seed", seed),
            ("utilization", utilization),
        ),
    )


def benchmark_context_key(
    function: str, interpretation: str, knots: int
) -> ContextKey:
    """Key of the Figure 4 benchmark-function context."""
    return ContextKey(
        kind=BENCHMARK_KIND,
        params=(
            ("function", function),
            ("interpretation", interpretation),
            ("knots", knots),
        ),
    )


# ----------------------------------------------------------------------
# The context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisContext:
    """Every artifact shared by the scenarios of one :class:`ContextKey`.

    Frozen and picklable; fields are ``None`` unless the corresponding
    artifact was requested at build time.  Mappings are plain dicts by
    construction — treat them as read-only.

    Attributes:
        key: The identity this context was built for.
        artifacts: The artifact names actually built.
        task_set: Generated, rate-monotonic-prioritised base set
            (:data:`TASK_SET`); NPR lengths are applied per scenario via
            :meth:`prepared_task_set`.
        delay_maxima: ``{task name: max f_i}`` (:data:`DELAY_MAXIMA`).
        beta_fp: Lehoczky blocking tolerances (:data:`FP_CURVES`).
        safe_q_fp: Maximal safe fixed-priority NPR lengths; ``None``
            (with :data:`FP_CURVES` built) when some tolerance is
            negative — the set admits no assignment.
        safe_q_edf: Maximal safe EDF NPR lengths (:data:`EDF_CURVES`);
            ``None`` when the set has negative slack.
        segment_indices: Flattened per-task function views
            (:data:`SEGMENT_INDICES`).
        function: The benchmark delay function
            (:data:`BENCHMARK_FUNCTION`).
        function_max: Its precomputed global maximum.
        function_index: Its precomputed :class:`SegmentIndex`.
    """

    key: ContextKey
    artifacts: tuple[str, ...]
    task_set: TaskSet | None = None
    delay_maxima: dict[str, float] | None = None
    beta_fp: dict[str, float] | None = None
    safe_q_fp: dict[str, float] | None = None
    safe_q_edf: dict[str, float] | None = None
    segment_indices: dict[str, SegmentIndex] | None = field(
        default=None, repr=False
    )
    function: PreemptionDelayFunction | None = None
    function_max: float | None = None
    function_index: SegmentIndex | None = field(default=None, repr=False)

    def prepared_task_set(
        self, policy: str, q_fraction: float
    ) -> TaskSet | None:
        """The base set with ``fraction``-scaled NPR lengths attached.

        Bit-identical to
        :func:`repro.engine.sweeps.prepared_task_set` on the same
        fields: the safe-Q vector was computed by the same
        ``*_max_npr_lengths`` call, and the scaling is the same
        :func:`repro.npr.assignment.apply_npr_lengths` arithmetic.

        Returns ``None`` when the set admits no NPR assignment (the
        per-set infeasibility the sweep counts as a rejection).

        Raises:
            ValueError: for invalid *parameters* (unknown policy,
                out-of-range fraction) — these must fail loudly.
        """
        require(policy in ("edf", "fp"), f"unknown policy {policy!r}")
        require(
            0.0 < q_fraction <= 1.0,
            f"q_fraction must lie in (0, 1], got {q_fraction}",
        )
        # A missing artifact is a family mis-declaration, never a
        # silent "this set is infeasible".
        needed = FP_CURVES if policy == "fp" else EDF_CURVES
        require(
            TASK_SET in self.artifacts and needed in self.artifacts,
            f"context {self.key.kind!r} was built without "
            f"{TASK_SET!r}/{needed!r}; declare them in the family's "
            "artifacts",
        )
        lengths = self.safe_q_fp if policy == "fp" else self.safe_q_edf
        if lengths is None:
            return None
        try:
            return apply_npr_lengths(self.task_set, lengths, q_fraction)
        except ValueError:
            # Some maximal length is 0: no positive NPR at any fraction.
            return None


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _build_taskset_context(
    key: ContextKey, artifacts: tuple[str, ...]
) -> AnalysisContext:
    factory = gaussian_delay_factory(relative_height=key["delay_height"])
    base = generate_task_set(
        key["n_tasks"],
        key["utilization"],
        seed=key["seed"],
        delay_function_factory=factory,
    ).rate_monotonic()

    delay_maxima = None
    if DELAY_MAXIMA in artifacts:
        delay_maxima = {
            task.name: task.delay_function.max_value()
            for task in base
            if task.delay_function is not None
        }

    beta_fp = safe_q_fp = None
    if FP_CURVES in artifacts:
        beta_fp = fp_blocking_tolerances(base)
        if all(beta >= 0 for beta in beta_fp.values()):
            safe_q_fp = fp_max_npr_lengths(base, tolerances=beta_fp)

    safe_q_edf = None
    if EDF_CURVES in artifacts:
        try:
            safe_q_edf = edf_max_npr_lengths(base)
        except ValueError:
            safe_q_edf = None  # negative slack: no assignment exists

    segment_indices = None
    if SEGMENT_INDICES in artifacts:
        segment_indices = {
            task.name: segment_index(task.delay_function.function)
            for task in base
            if task.delay_function is not None
        }

    return AnalysisContext(
        key=key,
        artifacts=artifacts,
        task_set=base if TASK_SET in artifacts else None,
        delay_maxima=delay_maxima,
        beta_fp=beta_fp,
        safe_q_fp=safe_q_fp,
        safe_q_edf=safe_q_edf,
        segment_indices=segment_indices,
    )


def _build_benchmark_context(
    key: ContextKey, artifacts: tuple[str, ...]
) -> AnalysisContext:
    # Late import: the builder for Figure 4 functions lives above this
    # layer (repro.engine.sweeps / repro.experiments).
    from repro.engine.sweeps import benchmark_function

    f = benchmark_function(
        key["function"], key["interpretation"], key["knots"]
    )
    return AnalysisContext(
        key=key,
        artifacts=artifacts,
        function=f,
        function_max=f.max_value(),
        function_index=segment_index(f.function),
    )


def build_context(
    key: ContextKey, artifacts: tuple[str, ...]
) -> AnalysisContext:
    """Build the context of ``key``, computing only ``artifacts``.

    Args:
        key: The context identity.
        artifacts: Artifact names (a family's registry declaration);
            must belong to the key's kind.

    Raises:
        ValueError: for unknown kinds or artifacts of the wrong kind.
    """
    valid = (
        TASKSET_ARTIFACTS if key.kind == TASKSET_KIND else BENCHMARK_ARTIFACTS
    )
    unknown = [name for name in artifacts if name not in valid]
    require(
        not unknown,
        f"unknown artifact(s) {', '.join(unknown)} for context kind "
        f"{key.kind!r}; valid: {', '.join(valid)}",
    )
    if key.kind == TASKSET_KIND:
        return _build_taskset_context(key, artifacts)
    require(
        key.kind == BENCHMARK_KIND,
        f"unknown context kind {key.kind!r}",
    )
    return _build_benchmark_context(key, artifacts)


def _get_context(
    key: ContextKey, artifacts: tuple[str, ...]
) -> AnalysisContext:
    """Per-process memoised :func:`build_context`.

    Workers call this per scenario; with group-respecting chunks
    (:func:`repro.engine.chunking.grouped_chunk_plan`) each worker
    builds each context exactly once and serves its whole slice from
    the memo.  Exposed as :data:`get_context`, a
    :class:`~repro.utils.caching.SwappableLRU` so the capacity follows
    ``REPRO_CACHE_SIZE`` and can be resized at runtime.
    """
    return build_context(key, artifacts)


get_context = SwappableLRU(_get_context, CONTEXT_CACHE_SIZE)


def clear_context_cache() -> None:
    """Drop all memoised contexts (tests, benchmarks, long sweeps)."""
    get_context.cache_clear()
