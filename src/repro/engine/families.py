"""The post-PR-2 scenario families: simulation validation and EDF studies.

Two further workload shapes join :class:`repro.engine.sweeps.BoundScenario`
and :class:`~repro.engine.sweeps.StudyScenario` in the family registry
(:mod:`repro.engine.registry`):

* :class:`SimScenario` — one *bound-validation* run: generate a task
  set, assign floating-NPR lengths, drive the discrete-event simulator
  (:mod:`repro.sim.simulator`) under the adversarial delay model, and
  compare every job's observed cumulative preemption delay against
  Algorithm 1's static bound.  A sweep of these is Theorem 1 checked at
  campaign scale rather than on a handful of hand-built patterns.
* :class:`EdfStudyScenario` — one task set of an *EDF* acceptance
  study: NPR lengths from the Bertogna-Baruah slack criterion
  (:mod:`repro.npr.qmax_edf`), verdicts from the delay-aware EDF test
  family (:mod:`repro.sched.edf_delay_aware`) — the EDF counterpart of
  the fixed-priority ``study`` family.

Like every family, workers are module-level (picklable), results are
frozen dataclasses, scenarios carry their own seeds (results never
depend on which pool worker evaluates them), and each result has a
``*_from_record`` decoder so the family is fully servable from a
:class:`repro.store.ResultStore`.  Both workers resolve their generated
task set (and its safe-Q curves) through the shared-artifact
:class:`~repro.engine.context.AnalysisContext`, so a grid sweeping
``q_fraction`` or ``policy`` over the same seeds generates and analyses
each set once per process.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.engine.chunking import derive_seed
from repro.engine.context import (
    DELAY_MAXIMA,
    EDF_CURVES,
    FP_CURVES,
    TASK_SET,
    ContextKey,
    get_context,
    taskset_context_key,
)
from repro.engine.sweeps import _record_float
from repro.sched.edf_delay_aware import EDF_METHODS, edf_delay_aware_verdicts
from repro.sim.release import periodic_releases, sporadic_releases
from repro.sim.simulator import FloatingNPRSimulator, worst_case_delay_model
from repro.sim.validation import validate_simulation
from repro.utils.checks import require

# ----------------------------------------------------------------------
# Bound validation through the simulator (Theorem 1 at sweep scale)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SimScenario:
    """One simulator run validating Algorithm 1's bound.

    Attributes:
        utilization: Target total utilization of the generated set.
        seed: Scenario-owned seed (task set, offsets, release jitter).
        n_tasks: Tasks per generated set.
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        policy: Scheduling policy (``"fp"`` or ``"edf"``); also selects
            the NPR length criterion.
        horizon_factor: Simulated horizon as a multiple of the largest
            generated period.
        sporadic: Randomize inter-arrival times (``False`` = periodic
            with seeded initial offsets).
    """

    utilization: float
    seed: int
    n_tasks: int = 4
    q_fraction: float = 0.5
    delay_height: float = 0.05
    policy: str = "fp"
    horizon_factor: float = 3.0
    sporadic: bool = False


@dataclass(frozen=True, slots=True)
class SimResult:
    """Observed-versus-analytical outcome of one :class:`SimScenario`.

    Attributes:
        utilization: Scenario utilization (grouping key).
        seed: Scenario seed.
        admitted: Whether the generated set admitted an NPR assignment;
            ``False`` means nothing was simulated.
        checked_jobs: Jobs whose observed delay was compared against a
            finite static bound.
        preemptions: Preemptions observed across the whole run.
        max_tightness: Largest observed ``measured / bound`` ratio
            (1.0 = some job reached its bound exactly).
        bound_respected: ``True`` iff no job exceeded its bound —
            Theorem 1's claim, checked operationally.
    """

    utilization: float
    seed: int
    admitted: bool
    checked_jobs: int
    preemptions: int
    max_tightness: float
    bound_respected: bool


#: Context artifacts the ``sim`` family consumes.  Both safe-Q vectors
#: are declared because the scenario's ``policy`` field (not the key)
#: selects the NPR length criterion at evaluation time.
SIM_ARTIFACTS = (TASK_SET, FP_CURVES, EDF_CURVES)


def sim_context_key(scenario: SimScenario) -> ContextKey:
    """The shared-artifact key of one sim scenario: its task set."""
    return taskset_context_key(
        scenario.n_tasks,
        scenario.utilization,
        scenario.seed,
        scenario.delay_height,
    )


def evaluate_sim_scenario(scenario: SimScenario) -> SimResult:
    """Engine worker: simulate one generated task set and validate the
    observed preemption delays against Algorithm 1's bounds."""
    context = get_context(sim_context_key(scenario), SIM_ARTIFACTS)
    task_set = context.prepared_task_set(
        scenario.policy, scenario.q_fraction
    )
    if task_set is None:
        return SimResult(
            utilization=scenario.utilization,
            seed=scenario.seed,
            admitted=False,
            checked_jobs=0,
            preemptions=0,
            max_tightness=0.0,
            bound_respected=True,
        )
    horizon = scenario.horizon_factor * max(t.period for t in task_set)
    # Release randomness comes from a derived stream so it never
    # correlates with the generator draws made under the raw scenario
    # seed (the k-th jitter draw must not equal the k-th task draw).
    release_seed = derive_seed(scenario.seed, 1)
    if scenario.sporadic:
        releases = sporadic_releases(task_set, horizon, seed=release_seed)
    else:
        rng = random.Random(release_seed)
        offsets = {t.name: rng.uniform(0.0, t.period) for t in task_set}
        releases = periodic_releases(task_set, horizon, offsets=offsets)
    simulator = FloatingNPRSimulator(
        task_set,
        policy=scenario.policy,
        delay_model=worst_case_delay_model,
    )
    run = simulator.run(releases, horizon)
    report = validate_simulation(task_set, run)
    return SimResult(
        utilization=scenario.utilization,
        seed=scenario.seed,
        admitted=True,
        checked_jobs=report.checked_jobs,
        preemptions=run.preemption_count(),
        max_tightness=report.max_tightness,
        bound_respected=report.passed,
    )


def sim_result_from_record(record: Mapping[str, object]) -> SimResult:
    """Rebuild a :class:`SimResult` from its sink/store record."""
    return SimResult(
        utilization=_record_float(record["utilization"]),
        seed=int(record["seed"]),  # type: ignore[arg-type]
        admitted=bool(record["admitted"]),
        checked_jobs=int(record["checked_jobs"]),  # type: ignore[arg-type]
        preemptions=int(record["preemptions"]),  # type: ignore[arg-type]
        max_tightness=_record_float(record["max_tightness"]),
        bound_respected=bool(record["bound_respected"]),
    )


# ----------------------------------------------------------------------
# EDF acceptance studies (Bertogna-Baruah NPR lengths)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EdfStudyScenario:
    """One generated task set of an EDF acceptance study.

    Attributes:
        utilization: Target total utilization.
        seed: Scenario-owned generator seed.
        n_tasks: Tasks per generated set.
        q_fraction: Fraction of the maximal safe NPR length to assign.
        delay_height: ``max f_i`` as a fraction of each task's WCET.
        methods: EDF delay-aware test methods to run
            (see :data:`repro.sched.EDF_METHODS`).
    """

    utilization: float
    seed: int
    n_tasks: int = 5
    q_fraction: float = 0.5
    delay_height: float = 0.05
    methods: tuple[str, ...] = EDF_METHODS


@dataclass(frozen=True, slots=True)
class EdfStudyResult:
    """Accept/reject outcome of one :class:`EdfStudyScenario`.

    Attributes:
        utilization: Scenario utilization (grouping key).
        seed: Scenario seed.
        admitted: Whether the set admitted an EDF NPR assignment at
            all; ``False`` counts as a rejection for every method.
        accepted: Per-method verdicts, aligned with
            ``scenario.methods``.
    """

    utilization: float
    seed: int
    admitted: bool
    accepted: tuple[bool, ...]


#: Context artifacts the ``edf-study`` family consumes.
EDF_STUDY_ARTIFACTS = (TASK_SET, DELAY_MAXIMA, EDF_CURVES)


def edf_study_context_key(scenario: EdfStudyScenario) -> ContextKey:
    """The shared-artifact key of one EDF study scenario."""
    return taskset_context_key(
        scenario.n_tasks,
        scenario.utilization,
        scenario.seed,
        scenario.delay_height,
    )


def evaluate_edf_study_scenario(
    scenario: EdfStudyScenario,
) -> EdfStudyResult:
    """Engine worker: run every EDF test against one task set.

    The generated set, its Bertogna-Baruah safe-Q vector and the delay
    maxima come from the shared context; per scenario only the
    ``q_fraction`` scaling and the Q-dependent bounds remain.
    """
    context = get_context(
        edf_study_context_key(scenario), EDF_STUDY_ARTIFACTS
    )
    task_set = context.prepared_task_set("edf", scenario.q_fraction)
    if task_set is None:
        return EdfStudyResult(
            utilization=scenario.utilization,
            seed=scenario.seed,
            admitted=False,
            accepted=tuple(False for _ in scenario.methods),
        )
    return EdfStudyResult(
        utilization=scenario.utilization,
        seed=scenario.seed,
        admitted=True,
        accepted=edf_delay_aware_verdicts(
            task_set, scenario.methods, delay_maxima=context.delay_maxima
        ),
    )


def edf_study_result_from_record(
    record: Mapping[str, object],
) -> EdfStudyResult:
    """Rebuild an :class:`EdfStudyResult` from its sink/store record."""
    accepted = record["accepted"]
    require(
        isinstance(accepted, (list, tuple)),
        f"expected an accepted list, got {accepted!r}",
    )
    return EdfStudyResult(
        utilization=_record_float(record["utilization"]),
        seed=int(record["seed"]),  # type: ignore[arg-type]
        admitted=bool(record["admitted"]),
        accepted=tuple(bool(v) for v in accepted),
    )
