"""From execution windows to the preemption-delay function ``f_i``
(paper, Section IV, final formula: ``f_i(t) = max_{b in BB(t)} CRPD_b``).

``BB(t)`` is the set of basic blocks that may be executing at offset
``t``; the delay function is the upper envelope of the per-block CRPD
plateaus over their execution windows.  The construction below is an
exact sweep over window endpoints, yielding a piecewise-constant
:class:`~repro.core.PreemptionDelayFunction` with no sampling error.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.intervals import ExecutionWindow, path_extremes, windows_with_loops
from repro.core.delay_function import PreemptionDelayFunction
from repro.piecewise import step
from repro.utils.checks import require


def blocks_active_at(
    windows: Mapping[str, ExecutionWindow], t: float
) -> set[str]:
    """The paper's ``BB(t)``: blocks whose window contains offset ``t``."""
    return {name for name, w in windows.items() if w.active_at(t)}


def delay_envelope(
    windows: Mapping[str, ExecutionWindow],
    crpd: Mapping[str, float],
    horizon: float,
) -> PreemptionDelayFunction:
    """Exact upper envelope ``f(t) = max_{b in BB(t)} crpd[b]`` on ``[0, horizon]``.

    Args:
        windows: Execution window per block name.
        crpd: CRPD bound per block name (missing names default to 0).
        horizon: Right end of the progression axis (the task's WCET).

    Returns:
        A piecewise-constant preemption-delay function; offsets where no
        block is active (possible beyond short paths) get value 0.
    """
    require(horizon > 0, f"horizon must be positive, got {horizon}")
    events: list[tuple[float, float, int]] = []  # (time, value, +1/-1)
    for name, window in windows.items():
        value = float(crpd.get(name, 0.0))
        if value <= 0.0:
            continue
        lo, hi = window.window
        lo = max(lo, 0.0)
        hi = min(hi, horizon)
        if hi <= lo:
            continue
        events.append((lo, value, +1))
        events.append((hi, value, -1))
    if not events:
        return PreemptionDelayFunction.from_constant(0.0, horizon)

    # Sweep: between consecutive event abscissae the active multiset is
    # constant; track it with a counting heap (lazy deletion).
    times = sorted({t for t, _, _ in events} | {0.0, horizon})
    starts: dict[float, list[float]] = {}
    ends: dict[float, list[float]] = {}
    for t, v, kind in events:
        (starts if kind > 0 else ends).setdefault(t, []).append(v)

    active: dict[float, int] = {}
    heap: list[float] = []

    def current_max() -> float:
        while heap and active.get(-heap[0], 0) == 0:
            heapq.heappop(heap)
        return -heap[0] if heap else 0.0

    bounds: list[float] = []
    values: list[float] = []
    previous = times[0]  # always 0.0: the grid includes the origin
    for t in times:
        if t > previous:
            bounds.append(previous)
            values.append(current_max())
            previous = t
        for v in starts.get(t, []):
            active[v] = active.get(v, 0) + 1
            heapq.heappush(heap, -v)
        for v in ends.get(t, []):
            active[v] = active.get(v, 0) - 1
    bounds.append(previous)
    if bounds[-1] < horizon:
        values.append(current_max())
        bounds.append(horizon)

    # Merge equal adjacent plateaus for a compact representation.
    merged_bounds = [bounds[0]]
    merged_values: list[float] = []
    for i, v in enumerate(values):
        if merged_values and merged_values[-1] == v:
            merged_bounds[-1] = bounds[i + 1]
        else:
            merged_values.append(v)
            merged_bounds.append(bounds[i + 1])
    return PreemptionDelayFunction(step(merged_bounds, merged_values))


def delay_function_from_cfg(
    cfg: ControlFlowGraph,
    iteration_bounds: Mapping[str, tuple[int, int]] | None = None,
) -> PreemptionDelayFunction:
    """End-to-end Section IV pipeline: CFG (+ loop bounds) -> ``f_i``.

    Uses each block's own ``crpd`` attribute; the progression axis runs to
    the task's WCET (worst path through the collapsed DAG).
    """
    windows, collapsed = windows_with_loops(cfg, iteration_bounds)
    _, wcet = path_extremes(collapsed.cfg)
    crpd = {name: cfg.block(name).crpd for name in cfg.blocks}
    return delay_envelope(windows, crpd, horizon=wcet)
