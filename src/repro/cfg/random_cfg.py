"""Seeded random structured CFG generation.

Generates reducible CFGs by recursive composition of three constructs —
sequence, branch (diamond) and natural loop — mirroring how structured
code compiles.  Used by property tests (interval-analysis invariants hold
on arbitrary structured CFGs) and by the CFG-pipeline experiment
(EXT-E; see ``docs/paper_mapping.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.utils.checks import require


@dataclass
class _Builder:
    """Accumulates blocks and edges while the generator recurses."""

    rng: random.Random
    max_exec: float
    max_crpd: float
    blocks: list[BasicBlock] = field(default_factory=list)
    edges: list[tuple[str, str]] = field(default_factory=list)
    iteration_bounds: dict[str, tuple[int, int]] = field(default_factory=dict)
    counter: int = 0

    def new_block(self) -> str:
        name = f"n{self.counter}"
        self.counter += 1
        emin = self.rng.uniform(0.0, self.max_exec)
        emax = emin + self.rng.uniform(0.0, self.max_exec)
        crpd = self.rng.uniform(0.0, self.max_crpd)
        self.blocks.append(BasicBlock(name, emin, emax, crpd))
        return name

    def edge(self, src: str, dst: str) -> None:
        self.edges.append((src, dst))


@dataclass(frozen=True, slots=True)
class GeneratedCfg:
    """A generated CFG together with its loop iteration bounds."""

    cfg: ControlFlowGraph
    iteration_bounds: dict[str, tuple[int, int]]


def random_cfg(
    seed: int,
    depth: int = 3,
    branch_probability: float = 0.5,
    loop_probability: float = 0.25,
    max_exec: float = 20.0,
    max_crpd: float = 8.0,
    max_loop_iterations: int = 4,
) -> GeneratedCfg:
    """Generate a random reducible CFG.

    Args:
        seed: RNG seed (same seed -> same CFG).
        depth: Recursion depth of the structural generator; the number of
            blocks grows roughly exponentially with it.
        branch_probability: Probability of a diamond at each step.
        loop_probability: Probability of wrapping a region in a loop.
        max_exec: Upper bound for the random execution times.
        max_crpd: Upper bound for the random CRPD values.
        max_loop_iterations: Upper bound for random loop bounds.

    Returns:
        The generated CFG and the iteration bounds of its loops.
    """
    require(depth >= 0, f"depth must be >= 0, got {depth}")
    require(
        0.0 <= branch_probability <= 1.0 and 0.0 <= loop_probability <= 1.0,
        "probabilities must lie in [0, 1]",
    )
    builder = _Builder(
        rng=random.Random(seed), max_exec=max_exec, max_crpd=max_crpd
    )

    def region(level: int) -> tuple[str, str]:
        """Generate a single-entry/single-exit region; returns (entry, exit)."""
        rng = builder.rng
        if level <= 0:
            name = builder.new_block()
            return name, name
        roll = rng.random()
        if roll < branch_probability:
            # Diamond: head -> {left, right} -> join.
            head = builder.new_block()
            join = builder.new_block()
            for _ in range(rng.choice([2, 2, 3])):
                arm_in, arm_out = region(level - 1)
                builder.edge(head, arm_in)
                builder.edge(arm_out, join)
            return head, join
        # Sequence of two sub-regions.
        first_in, first_out = region(level - 1)
        second_in, second_out = region(level - 1)
        builder.edge(first_out, second_in)
        entry, exit_ = first_in, second_out
        if rng.random() < loop_probability:
            # Wrap the sequence in a natural loop: exit jumps back to the
            # entry (which becomes the header), then flows to an afterward
            # block.  The header must not be the global entry, so add a
            # pre-header.
            pre = builder.new_block()
            after = builder.new_block()
            builder.edge(pre, entry)
            builder.edge(exit_, entry)  # back edge
            builder.edge(exit_, after)
            lo = rng.randint(0, max_loop_iterations)
            hi = rng.randint(max(lo, 1), max_loop_iterations)
            builder.iteration_bounds[entry] = (lo, hi)
            entry, exit_ = pre, after
        return entry, exit_

    entry, _ = region(depth)
    cfg = ControlFlowGraph(builder.blocks, builder.edges, entry)
    return GeneratedCfg(cfg=cfg, iteration_bounds=builder.iteration_bounds)
