"""Graphviz DOT export for control-flow graphs (debugging aid)."""

from __future__ import annotations

from collections.abc import Mapping

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.intervals import ExecutionWindow


def to_dot(
    cfg: ControlFlowGraph,
    windows: Mapping[str, ExecutionWindow] | None = None,
    title: str = "cfg",
) -> str:
    """Render the CFG as a DOT digraph string.

    Args:
        cfg: The graph to render.
        windows: Optional per-block execution windows to include in labels
            (as in the paper's Figure 1 right-hand side).
        title: Graph name.
    """
    lines = [f"digraph {title} {{", "  node [shape=box];"]
    for name in sorted(cfg.blocks):
        block = cfg.block(name)
        label = f"{name}\\n[{block.emin:g},{block.emax:g}]"
        if block.crpd:
            label += f"\\ncrpd={block.crpd:g}"
        if windows and name in windows:
            w = windows[name]
            label += f"\\ns=[{w.smin:g},{w.smax:g}]"
        shape = ' style=bold' if name == cfg.entry else ""
        lines.append(f'  "{name}" [label="{label}"{shape}];')
    for src, dst in cfg.edges():
        lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)
