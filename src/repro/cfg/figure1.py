r"""The paper's Figure 1 example CFG, reconstructed.

Figure 1 shows an 11-block loop-free CFG with per-block execution-time
intervals (left) and the start offsets computed by Eqs. 1–3 (right).  The
source text of the paper garbles the block-to-interval association, so
this module encodes a reconstruction that reproduces the recoverable
offset values: ``[0,0]``, ``[15,25]`` (twice), ``[30,65]``,
``[50,95]`` (twice), ``[55,100]`` (twice, plus one more), ``[65,125]``
and ``[65,175]`` (printed as "[60,175]"/"[65,180]" in the OCR of the
original figure).  The paper-artifact index in ``docs/paper_mapping.md``
records where this reconstruction is tested.

Shape: a double-diamond followed by a fork whose arms re-join at the
final block::

        0
       / \
      1   2
       \ /
        3
       / \
      4   9
     / \   \
    5   6   10
     \ /    |
      7     |
       \   /
        8
"""

from __future__ import annotations

from repro.cfg.graph import BasicBlock, ControlFlowGraph

#: Execution-time interval ``[emin, emax]`` of every block.
FIGURE1_EXECUTION_TIMES: dict[str, tuple[float, float]] = {
    "b0": (15, 25),
    "b1": (15, 35),
    "b2": (20, 40),
    "b3": (20, 30),
    "b4": (5, 5),
    "b5": (10, 10),
    "b6": (15, 25),
    "b7": (40, 50),
    "b8": (10, 20),
    "b9": (5, 5),
    "b10": (10, 20),
}

#: Directed edges of the reconstructed CFG.
FIGURE1_EDGES: list[tuple[str, str]] = [
    ("b0", "b1"),
    ("b0", "b2"),
    ("b1", "b3"),
    ("b2", "b3"),
    ("b3", "b4"),
    ("b3", "b9"),
    ("b4", "b5"),
    ("b4", "b6"),
    ("b5", "b7"),
    ("b6", "b7"),
    ("b9", "b10"),
    ("b7", "b8"),
    ("b10", "b8"),
]

#: Expected ``(smin, smax)`` start offsets per Eqs. 1–3.
FIGURE1_EXPECTED_OFFSETS: dict[str, tuple[float, float]] = {
    "b0": (0, 0),
    "b1": (15, 25),
    "b2": (15, 25),
    "b3": (30, 65),
    "b4": (50, 95),
    "b9": (50, 95),
    "b5": (55, 100),
    "b6": (55, 100),
    "b10": (55, 100),
    "b7": (65, 125),
    "b8": (65, 175),
}


def figure1_cfg(crpd: dict[str, float] | None = None) -> ControlFlowGraph:
    """Build the reconstructed Figure 1 CFG.

    Args:
        crpd: Optional per-block CRPD bounds (defaults to 0 everywhere,
            matching the figure, which only discusses intervals).
    """
    crpd = crpd or {}
    blocks = [
        BasicBlock(name, emin, emax, crpd.get(name, 0.0))
        for name, (emin, emax) in FIGURE1_EXECUTION_TIMES.items()
    ]
    return ControlFlowGraph(blocks, FIGURE1_EDGES, entry="b0")
