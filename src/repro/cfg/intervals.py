"""Execution-interval analysis (paper, Section IV, Eqs. 1–3, Figure 1).

For loop-free code, every basic block ``b`` gets its earliest and latest
start offsets by a topological traversal of the CFG::

    smin_entry = smax_entry = 0                                   (Eq. 1)
    smin_b = min over pred x of (smin_x + emin_x)                  (Eq. 2)
    smax_b = max over pred x of (smax_x + emax_x)                  (Eq. 3)

The time interval within which ``b`` may execute is then
``[smin_b, smax_b + emax_b]``.  (The paper prints this as
``[smin_b, emax_b]`` — its running text uses ``emax_b`` for the latest
*end* offset; we keep the two notions explicit.)

Loops are handled by first collapsing them to synthetic nodes
(:mod:`repro.cfg.loops`); blocks swallowed by a loop inherit the whole
loop node's window, which is sound (a member block may execute at any
iteration of the loop).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import CollapseResult, collapse_loops
from repro.cfg.traversal import topological_order
from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class ExecutionWindow:
    """When a basic block may execute, relative to task start.

    Attributes:
        smin: Earliest start offset.
        smax: Latest start offset.
        emin: Minimum execution time of the block.
        emax: Maximum execution time of the block.
    """

    smin: float
    smax: float
    emin: float
    emax: float

    @property
    def earliest_end(self) -> float:
        """Earliest completion offset (``smin + emin``)."""
        return self.smin + self.emin

    @property
    def latest_end(self) -> float:
        """Latest completion offset (``smax + emax``)."""
        return self.smax + self.emax

    @property
    def window(self) -> tuple[float, float]:
        """The interval ``[smin, smax + emax]`` in which the block may be
        executing (the paper's ``[smin_b, emax_b]``)."""
        return self.smin, self.latest_end

    def active_at(self, t: float) -> bool:
        """Whether the block may be executing at offset ``t``."""
        lo, hi = self.window
        return lo <= t <= hi


def start_offsets(cfg: ControlFlowGraph) -> dict[str, tuple[float, float]]:
    """Earliest/latest start offsets of every block of a loop-free CFG.

    Returns:
        Mapping block name -> ``(smin, smax)`` per Eqs. 1–3.

    Raises:
        NotADagError: if the CFG still contains loops.
    """
    order = topological_order(cfg)
    smin: dict[str, float] = {}
    smax: dict[str, float] = {}
    for name in order:
        preds = cfg.predecessors(name)
        if not preds:
            require(
                name == cfg.entry,
                f"block {name!r} has no predecessors but is not the entry",
            )
            smin[name] = 0.0
            smax[name] = 0.0
        else:
            smin[name] = min(smin[p] + cfg.block(p).emin for p in preds)
            smax[name] = max(smax[p] + cfg.block(p).emax for p in preds)
    return {name: (smin[name], smax[name]) for name in cfg.blocks}


def execution_windows(cfg: ControlFlowGraph) -> dict[str, ExecutionWindow]:
    """Execution window of every block of a loop-free CFG."""
    offsets = start_offsets(cfg)
    return {
        name: ExecutionWindow(
            smin=offsets[name][0],
            smax=offsets[name][1],
            emin=cfg.block(name).emin,
            emax=cfg.block(name).emax,
        )
        for name in cfg.blocks
    }


def path_extremes(cfg: ControlFlowGraph) -> tuple[float, float]:
    """Best-case and worst-case end-to-end path times of a loop-free CFG.

    Returns:
        ``(bcet, wcet)`` over all paths from the entry to any exit block.
    """
    windows = execution_windows(cfg)
    exits = cfg.exit_blocks()
    require(bool(exits), "CFG has no exit block")
    return (
        min(windows[e].earliest_end for e in exits),
        max(windows[e].latest_end for e in exits),
    )


def windows_with_loops(
    cfg: ControlFlowGraph,
    iteration_bounds: Mapping[str, tuple[int, int]] | None = None,
) -> tuple[dict[str, ExecutionWindow], CollapseResult]:
    """Execution windows for a CFG that may contain natural loops.

    Loops are collapsed first; each original block swallowed by a loop is
    assigned the *whole* loop node's window (sound: the block may execute
    in any iteration).

    Args:
        cfg: The control-flow graph.
        iteration_bounds: Per-header iteration bounds; may be ``None`` for
            loop-free CFGs.

    Returns:
        ``(windows, collapse_result)`` where ``windows`` maps every
        *original* block name to its window.
    """
    result = collapse_loops(cfg, iteration_bounds or {})
    dag_windows = execution_windows(result.cfg)
    windows: dict[str, ExecutionWindow] = {}
    for name in cfg.blocks:
        container = result.membership.get(name)
        if container is None:
            windows[name] = dag_windows[name]
        else:
            loop_window = dag_windows[container]
            block = cfg.block(name)
            windows[name] = ExecutionWindow(
                smin=loop_window.smin,
                smax=loop_window.smax + loop_window.emax - block.emax,
                emin=block.emin,
                emax=block.emax,
            )
    return windows, result
