"""Traversal orders over control-flow graphs."""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph
from repro.utils.checks import require


class NotADagError(ValueError):
    """Raised when an operation requiring an acyclic CFG meets a cycle."""


def topological_order(cfg: ControlFlowGraph) -> list[str]:
    """Kahn topological order of an acyclic CFG.

    Returns:
        Block names such that every edge goes from an earlier to a later
        position.  Ties are broken by block name for determinism.

    Raises:
        NotADagError: if the CFG contains a cycle (collapse loops first,
            see :mod:`repro.cfg.loops`).
    """
    in_degree = {name: len(cfg.predecessors(name)) for name in cfg.blocks}
    ready = sorted(name for name, deg in in_degree.items() if deg == 0)
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        inserted = []
        for nxt in cfg.successors(node):
            in_degree[nxt] -= 1
            if in_degree[nxt] == 0:
                inserted.append(nxt)
        if inserted:
            ready.extend(inserted)
            ready.sort()
    if len(order) != len(cfg.blocks):
        remaining = sorted(set(cfg.blocks) - set(order))
        raise NotADagError(f"CFG has a cycle through {remaining}")
    return order


def is_dag(cfg: ControlFlowGraph) -> bool:
    """Whether the CFG is acyclic."""
    try:
        topological_order(cfg)
    except NotADagError:
        return False
    return True


def reverse_postorder(cfg: ControlFlowGraph) -> list[str]:
    """Reverse postorder of a DFS from the entry (defined for any CFG).

    This is the canonical iteration order for forward dataflow analyses
    (dominators, reaching cache blocks): predecessors tend to appear
    before successors, which speeds up convergence.
    """
    visited: set[str] = set()
    postorder: list[str] = []

    def visit(root: str) -> None:
        # Iterative DFS with an explicit stack of (node, successor-iterator).
        stack = [(root, iter(sorted(cfg.successors(root))))]
        visited.add(root)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(sorted(cfg.successors(nxt)))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    visit(cfg.entry)
    require(
        len(postorder) == len(cfg.blocks),
        "reverse_postorder requires all blocks reachable from the entry",
    )
    return list(reversed(postorder))
