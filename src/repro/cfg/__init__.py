"""Control-flow-graph substrate (S5): Section IV of the paper.

Basic blocks, execution-interval analysis (Eqs. 1–3), natural-loop
collapsing, acyclic call graphs, the ``BB(t)`` envelope that turns
per-block CRPD bounds into the task-level preemption-delay function
``f_i``, plus the reconstructed Figure 1 example and a random structured
CFG generator for property tests.
"""

from repro.cfg.callgraph import (
    CallGraph,
    CyclicCallGraphError,
    Function,
    ProgramAnalysis,
)
from repro.cfg.delay_profile import (
    blocks_active_at,
    delay_envelope,
    delay_function_from_cfg,
)
from repro.cfg.dominators import dominates, dominators, immediate_dominators
from repro.cfg.dot import to_dot
from repro.cfg.figure1 import (
    FIGURE1_EDGES,
    FIGURE1_EXECUTION_TIMES,
    FIGURE1_EXPECTED_OFFSETS,
    figure1_cfg,
)
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.cfg.intervals import (
    ExecutionWindow,
    execution_windows,
    path_extremes,
    start_offsets,
    windows_with_loops,
)
from repro.cfg.loops import (
    CollapseResult,
    IrreducibleLoopError,
    LoopSummary,
    NaturalLoop,
    back_edges,
    collapse_loops,
    natural_loops,
)
from repro.cfg.random_cfg import GeneratedCfg, random_cfg
from repro.cfg.traversal import (
    NotADagError,
    is_dag,
    reverse_postorder,
    topological_order,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "NotADagError",
    "topological_order",
    "reverse_postorder",
    "is_dag",
    "immediate_dominators",
    "dominators",
    "dominates",
    "NaturalLoop",
    "LoopSummary",
    "CollapseResult",
    "IrreducibleLoopError",
    "back_edges",
    "natural_loops",
    "collapse_loops",
    "ExecutionWindow",
    "start_offsets",
    "execution_windows",
    "path_extremes",
    "windows_with_loops",
    "blocks_active_at",
    "delay_envelope",
    "delay_function_from_cfg",
    "Function",
    "CallGraph",
    "CyclicCallGraphError",
    "ProgramAnalysis",
    "figure1_cfg",
    "FIGURE1_EXECUTION_TIMES",
    "FIGURE1_EDGES",
    "FIGURE1_EXPECTED_OFFSETS",
    "to_dot",
    "GeneratedCfg",
    "random_cfg",
]
