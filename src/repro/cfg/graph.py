"""Control-flow graph model (paper, Section IV, Figure 1).

A task's code is a set of *basic blocks* — maximal straight-line
instruction sequences — connected by directed edges representing jumps.
Each block carries its execution-time interval ``[emin, emax]`` (produced
by a WCET tool; here either hand-written, generated, or derived from the
cache substrate) and an upper bound ``crpd`` on the cache-related
preemption delay paid if the task is preempted while that block may be
executing.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace

from repro.utils.checks import require


@dataclass(frozen=True, slots=True)
class BasicBlock:
    """One basic block of a task's control-flow graph.

    Attributes:
        name: Unique identifier within the CFG.
        emin: Best-case execution time of the block (>= 0).
        emax: Worst-case execution time of the block (>= emin).
        crpd: Upper bound on the preemption delay incurred by a preemption
            occurring while this block executes (``CRPD_b`` in the paper).
    """

    name: str
    emin: float
    emax: float
    crpd: float = 0.0

    def __post_init__(self) -> None:
        require(bool(self.name), "basic block needs a non-empty name")
        require(self.emin >= 0, f"block {self.name}: emin must be >= 0, got {self.emin}")
        require(
            self.emax >= self.emin,
            f"block {self.name}: emax ({self.emax}) must be >= emin ({self.emin})",
        )
        require(self.crpd >= 0, f"block {self.name}: crpd must be >= 0, got {self.crpd}")

    def with_crpd(self, crpd: float) -> "BasicBlock":
        """A copy of this block with a different CRPD bound."""
        return replace(self, crpd=crpd)


class ControlFlowGraph:
    """An immutable CFG: named basic blocks plus directed edges.

    Args:
        blocks: The basic blocks (names must be unique).
        edges: Directed edges as ``(source, target)`` name pairs.
        entry: Name of the unique entry block.

    Raises:
        ValueError: on duplicate block names, dangling edge endpoints,
            an unknown entry, or blocks unreachable from the entry.
    """

    __slots__ = ("_blocks", "_succ", "_pred", "_entry")

    def __init__(
        self,
        blocks: Iterable[BasicBlock],
        edges: Iterable[tuple[str, str]],
        entry: str,
    ):
        block_map: dict[str, BasicBlock] = {}
        for block in blocks:
            require(block.name not in block_map, f"duplicate block name {block.name!r}")
            block_map[block.name] = block
        require(entry in block_map, f"entry block {entry!r} not among blocks")

        succ: dict[str, list[str]] = {name: [] for name in block_map}
        pred: dict[str, list[str]] = {name: [] for name in block_map}
        seen_edges: set[tuple[str, str]] = set()
        for src, dst in edges:
            require(src in block_map, f"edge source {src!r} is not a block")
            require(dst in block_map, f"edge target {dst!r} is not a block")
            require((src, dst) not in seen_edges, f"duplicate edge {src!r}->{dst!r}")
            seen_edges.add((src, dst))
            succ[src].append(dst)
            pred[dst].append(src)

        self._blocks = block_map
        self._succ = {k: tuple(v) for k, v in succ.items()}
        self._pred = {k: tuple(v) for k, v in pred.items()}
        self._entry = entry

        unreachable = set(block_map) - self.reachable_from_entry()
        require(
            not unreachable,
            f"blocks unreachable from entry: {sorted(unreachable)}",
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entry(self) -> str:
        """Name of the entry block."""
        return self._entry

    @property
    def blocks(self) -> Mapping[str, BasicBlock]:
        """Mapping from block name to block."""
        return self._blocks

    def block(self, name: str) -> BasicBlock:
        """The block called ``name``."""
        require(name in self._blocks, f"no block named {name!r}")
        return self._blocks[name]

    def successors(self, name: str) -> tuple[str, ...]:
        """Direct successors of ``name``."""
        require(name in self._succ, f"no block named {name!r}")
        return self._succ[name]

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Direct predecessors of ``name`` (paper's ``pred(b)``)."""
        require(name in self._pred, f"no block named {name!r}")
        return self._pred[name]

    def edges(self) -> list[tuple[str, str]]:
        """All edges as (source, target) pairs, sorted for determinism."""
        return sorted(
            (src, dst) for src, dsts in self._succ.items() for dst in dsts
        )

    def exit_blocks(self) -> tuple[str, ...]:
        """Blocks with no successors, sorted."""
        return tuple(sorted(n for n, s in self._succ.items() if not s))

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph({len(self._blocks)} blocks, "
            f"{sum(len(s) for s in self._succ.values())} edges, "
            f"entry={self._entry!r})"
        )

    # ------------------------------------------------------------------
    # Basic graph queries
    # ------------------------------------------------------------------
    def reachable_from_entry(self) -> set[str]:
        """Names of all blocks reachable from the entry block."""
        seen = {self._entry}
        stack = [self._entry]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def with_blocks(self, replacements: Mapping[str, BasicBlock]) -> "ControlFlowGraph":
        """A copy of the CFG with some blocks replaced (same names/edges)."""
        for name in replacements:
            require(name in self._blocks, f"no block named {name!r}")
            require(
                replacements[name].name == name,
                f"replacement for {name!r} must keep the name",
            )
        blocks = [replacements.get(n, b) for n, b in self._blocks.items()]
        return ControlFlowGraph(blocks, self.edges(), self._entry)
