"""Acyclic call-graph analysis (paper, Section IV, last paragraph).

Tasks containing function calls are analysed bottom-up: leaves of the
call graph first, then callers, with each call site's block widened by
the callee's best/worst path times.  The execution windows of a callee's
blocks at a given call site are the call block's window shifted by the
callee-local offsets; the task-level window of a callee block is the
union over all its call sites, which we over-approximate by the convex
hull (sound for the ``BB(t)`` envelope: a larger window can only raise
``f_i``).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.cfg.delay_profile import delay_envelope
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.cfg.intervals import (
    ExecutionWindow,
    path_extremes,
    windows_with_loops,
)
from repro.core.delay_function import PreemptionDelayFunction
from repro.utils.checks import require


class CyclicCallGraphError(ValueError):
    """Raised when the call graph contains recursion (unsupported, as in
    the paper: "provided that their call graph is acyclic")."""


@dataclass(frozen=True, slots=True)
class Function:
    """One function: a CFG plus its call sites.

    Attributes:
        name: Function name.
        cfg: The function's control-flow graph.
        calls: Mapping from block name (in ``cfg``) to callee function
            name; the block's own ``[emin, emax]`` covers only the
            non-call work of the block.
        iteration_bounds: Loop bounds for ``cfg``'s natural loops.
    """

    name: str
    cfg: ControlFlowGraph
    calls: Mapping[str, str] = None  # type: ignore[assignment]
    iteration_bounds: Mapping[str, tuple[int, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "calls", dict(self.calls or {}))
        object.__setattr__(
            self, "iteration_bounds", dict(self.iteration_bounds or {})
        )
        for block_name in self.calls:
            require(
                block_name in self.cfg.blocks,
                f"{self.name}: call site {block_name!r} is not a block",
            )


@dataclass(frozen=True, slots=True)
class ProgramAnalysis:
    """Result of the whole-program bottom-up analysis.

    Attributes:
        bcet: Best-case end-to-end execution time of the root function.
        wcet: Worst-case end-to-end execution time of the root function.
        windows: Execution window of every block, keyed
            ``"function.block"``, relative to root-task start.
        delay_function: The task-level ``f_i`` on ``[0, wcet]``.
    """

    bcet: float
    wcet: float
    windows: Mapping[str, ExecutionWindow]
    delay_function: PreemptionDelayFunction


class CallGraph:
    """A program: functions wired by call sites, with a root function."""

    def __init__(self, functions: list[Function], root: str):
        names = [f.name for f in functions]
        require(len(set(names)) == len(names), "duplicate function names")
        self._functions = {f.name: f for f in functions}
        require(root in self._functions, f"root function {root!r} not defined")
        self._root = root
        for f in functions:
            for callee in f.calls.values():
                require(
                    callee in self._functions,
                    f"{f.name} calls undefined function {callee!r}",
                )
        self._order = self._bottom_up_order()

    @property
    def root(self) -> str:
        """Name of the root (task entry) function."""
        return self._root

    def function(self, name: str) -> Function:
        """The function called ``name``."""
        require(name in self._functions, f"no function named {name!r}")
        return self._functions[name]

    def _bottom_up_order(self) -> list[str]:
        """Callees before callers; raises on recursion."""
        state: dict[str, int] = {}  # 0 = visiting, 1 = done
        order: list[str] = []

        def visit(name: str, trail: tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                raise CyclicCallGraphError(
                    f"recursive call chain: {' -> '.join(trail + (name,))}"
                )
            state[name] = 0
            for callee in sorted(set(self._functions[name].calls.values())):
                visit(callee, trail + (name,))
            state[name] = 1
            order.append(name)

        visit(self._root, ())
        return order

    # ------------------------------------------------------------------
    # Whole-program analysis
    # ------------------------------------------------------------------
    def analyse(self) -> ProgramAnalysis:
        """Bottom-up interval analysis of the whole program.

        Returns:
            A :class:`ProgramAnalysis` with task-level windows and the
            combined delay function.
        """
        totals: dict[str, tuple[float, float]] = {}
        local_windows: dict[str, dict[str, ExecutionWindow]] = {}

        for name in self._order:
            fn = self._functions[name]
            widened: dict[str, BasicBlock] = {}
            for block_name, callee in fn.calls.items():
                callee_bcet, callee_wcet = totals[callee]
                original = fn.cfg.block(block_name)
                widened[block_name] = BasicBlock(
                    name=block_name,
                    emin=original.emin + callee_bcet,
                    emax=original.emax + callee_wcet,
                    crpd=original.crpd,
                )
            cfg = fn.cfg.with_blocks(widened) if widened else fn.cfg
            windows, collapsed = windows_with_loops(cfg, fn.iteration_bounds)
            totals[name] = path_extremes(collapsed.cfg)
            local_windows[name] = windows

        # Task-level windows: walk down from the root, shifting callee
        # windows into each call site's window (convex hull across sites).
        task_windows: dict[str, ExecutionWindow] = {}

        def place(name: str, shift_min: float, shift_max: float) -> None:
            fn = self._functions[name]
            for block_name, window in local_windows[name].items():
                key = f"{name}.{block_name}"
                candidate = ExecutionWindow(
                    smin=window.smin + shift_min,
                    smax=window.smax + shift_max,
                    emin=window.emin,
                    emax=window.emax,
                )
                existing = task_windows.get(key)
                if existing is not None:
                    candidate = ExecutionWindow(
                        smin=min(existing.smin, candidate.smin),
                        smax=max(existing.smax, candidate.smax),
                        emin=window.emin,
                        emax=window.emax,
                    )
                task_windows[key] = candidate
            for block_name, callee in fn.calls.items():
                site = local_windows[name][block_name]
                # The callee body runs somewhere inside the call block: in
                # the earliest scenario the call is the block's first
                # action (shift by the site's smin only); in the latest it
                # follows all of the block's own work (site smax + emax of
                # the *own* part).  The hull of the two keeps the window a
                # superset of every real placement, which is the safe
                # direction for the BB(t) envelope.
                own = fn.cfg.block(block_name)
                place(
                    callee,
                    shift_min + site.smin,
                    shift_max + site.smax + own.emax,
                )

        place(self._root, 0.0, 0.0)

        bcet, wcet = totals[self._root]
        crpd = {
            key: self._functions[key.split(".", 1)[0]]
            .cfg.block(key.split(".", 1)[1])
            .crpd
            for key in task_windows
        }
        delay = delay_envelope(task_windows, crpd, horizon=wcet)
        return ProgramAnalysis(
            bcet=bcet,
            wcet=wcet,
            windows=task_windows,
            delay_function=delay,
        )
