"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators are the substrate for natural-loop detection: an edge
``u -> v`` is a *back edge* exactly when ``v`` dominates ``u``, and the
natural loop of that edge is the smallest set containing ``v`` and every
block that reaches ``u`` without passing through ``v``.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.traversal import reverse_postorder


def immediate_dominators(cfg: ControlFlowGraph) -> dict[str, str | None]:
    """Immediate dominator of every block.

    Returns:
        Mapping block name -> name of its immediate dominator; the entry
        maps to ``None``.
    """
    rpo = reverse_postorder(cfg)
    index = {name: i for i, name in enumerate(rpo)}
    idom: dict[str, str | None] = {name: None for name in cfg.blocks}
    idom[cfg.entry] = cfg.entry  # sentinel: entry dominates itself

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == cfg.entry:
                continue
            processed_preds = [
                p for p in cfg.predecessors(node) if idom[p] is not None
            ]
            if not processed_preds:
                continue
            new_idom = processed_preds[0]
            for p in processed_preds[1:]:
                new_idom = intersect(new_idom, p)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    result: dict[str, str | None] = dict(idom)
    result[cfg.entry] = None
    return result


def dominators(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """Full dominator sets (every block dominates itself).

    Derived by walking the immediate-dominator chains; ``O(n * depth)``.
    """
    idom = immediate_dominators(cfg)
    result: dict[str, set[str]] = {}
    for name in cfg.blocks:
        doms = {name}
        current = idom[name]
        while current is not None:
            doms.add(current)
            current = idom[current]
        result[name] = doms
    return result


def dominates(cfg: ControlFlowGraph, a: str, b: str) -> bool:
    """Whether block ``a`` dominates block ``b``."""
    return a in dominators(cfg)[b]
