"""Natural-loop detection and loop collapsing (paper, Section IV).

The paper's interval analysis (Eqs. 1–3) works on loop-free code; for
programs with natural loops it prescribes analysing "every loop
individually, starting with the innermost", after which "a loop can then
be considered as a single node with known earliest and latest start
offsets".  :func:`collapse_loops` implements exactly that reduction:

1. find the natural loops via dominators and back edges;
2. analyse the innermost loop body (with its back edge removed) as a
   loop-free CFG, giving per-iteration best/worst path times;
3. replace the whole body by one synthetic block whose execution interval
   is ``[min_iterations * body_best, max_iterations * body_worst]`` and
   whose CRPD bound is the maximum over the body (a preemption inside the
   loop may hit any member block);
4. repeat until the graph is acyclic.

The returned :class:`LoopSummary` records which original blocks each
synthetic node swallowed so that execution windows can later be expanded
back to member blocks (see :mod:`repro.cfg.delay_profile`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.cfg.dominators import dominators
from repro.cfg.graph import BasicBlock, ControlFlowGraph
from repro.cfg.traversal import NotADagError, is_dag, topological_order
from repro.utils.checks import require


class IrreducibleLoopError(ValueError):
    """Raised when the CFG contains a cycle with no dominating header."""


@dataclass(frozen=True, slots=True)
class NaturalLoop:
    """A natural loop: its header and the set of member block names."""

    header: str
    latches: tuple[str, ...]
    body: frozenset[str]

    def __contains__(self, name: str) -> bool:
        return name in self.body


@dataclass(frozen=True, slots=True)
class LoopSummary:
    """Result of collapsing one loop into a synthetic node.

    Attributes:
        node: Name of the synthetic block that replaced the loop.
        header: The loop's header block.
        members: Every original block swallowed by the synthetic node
            (transitively, if loops were nested).
        min_iterations: Loop bound used for the best-case path.
        max_iterations: Loop bound used for the worst-case path.
        body_best: Per-iteration best-case path time through the body.
        body_worst: Per-iteration worst-case path time through the body.
    """

    node: str
    header: str
    members: frozenset[str]
    min_iterations: int
    max_iterations: int
    body_best: float
    body_worst: float


@dataclass(frozen=True, slots=True)
class CollapseResult:
    """A loop-free CFG plus the record of collapsed loops.

    Attributes:
        cfg: The acyclic CFG after collapsing every natural loop.
        summaries: One :class:`LoopSummary` per collapsed loop, innermost
            first.
        membership: Mapping from every original block name swallowed by
            some loop to the name of the synthetic node now representing
            it in ``cfg``.
    """

    cfg: ControlFlowGraph
    summaries: tuple[LoopSummary, ...]
    membership: Mapping[str, str]


def back_edges(cfg: ControlFlowGraph) -> list[tuple[str, str]]:
    """Edges ``u -> v`` where ``v`` dominates ``u`` (sorted)."""
    doms = dominators(cfg)
    return sorted(
        (src, dst) for src, dst in cfg.edges() if dst in doms[src]
    )


def natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """All natural loops, one per header (back edges to the same header
    are merged into a single loop, per the standard definition)."""
    loops: dict[str, tuple[set[str], set[str]]] = {}
    for src, header in back_edges(cfg):
        body, latches = loops.setdefault(header, ({header}, set()))
        latches.add(src)
        # Everything that reaches src without passing through header.
        stack = [src]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(p for p in cfg.predecessors(node) if p not in body)
    result = [
        NaturalLoop(header=h, latches=tuple(sorted(l)), body=frozenset(b))
        for h, (b, l) in loops.items()
    ]
    result.sort(key=lambda loop: loop.header)
    _check_reducible(cfg, result)
    return result


def _check_reducible(cfg: ControlFlowGraph, loops: list[NaturalLoop]) -> None:
    """A reducible CFG becomes acyclic once all back edges are removed."""
    removed = set()
    for loop in loops:
        for latch in loop.latches:
            removed.add((latch, loop.header))
    kept = [e for e in cfg.edges() if e not in removed]
    probe = ControlFlowGraph(cfg.blocks.values(), kept, cfg.entry)
    if not is_dag(probe):
        raise IrreducibleLoopError(
            "CFG contains an irreducible cycle (no dominating header)"
        )


def _innermost_loop(loops: list[NaturalLoop]) -> NaturalLoop:
    """A loop whose body contains no other loop's header (exists for
    reducible CFGs)."""
    headers = {loop.header for loop in loops}
    for loop in loops:
        if not (headers - {loop.header}) & loop.body:
            return loop
    raise IrreducibleLoopError("no innermost loop found")  # pragma: no cover


def _body_path_extremes(
    cfg: ControlFlowGraph, loop: NaturalLoop
) -> tuple[float, float]:
    """Best/worst-case path time of one iteration header -> latch."""
    body_blocks = [cfg.block(n) for n in loop.body]
    body_edges = [
        (s, d)
        for s, d in cfg.edges()
        if s in loop.body and d in loop.body and not (d == loop.header)
    ]
    sub = ControlFlowGraph(body_blocks, body_edges, loop.header)
    try:
        order = topological_order(sub)
    except NotADagError as exc:  # pragma: no cover - reducibility checked
        raise IrreducibleLoopError(str(exc)) from exc
    best: dict[str, float] = {}
    worst: dict[str, float] = {}
    for name in order:
        block = sub.block(name)
        preds = sub.predecessors(name)
        if not preds:
            best[name] = block.emin
            worst[name] = block.emax
        else:
            best[name] = min(best[p] for p in preds) + block.emin
            worst[name] = max(worst[p] for p in preds) + block.emax
    # One iteration ends at a latch (the block jumping back to the header).
    return (
        min(best[latch] for latch in loop.latches),
        max(worst[latch] for latch in loop.latches),
    )


def collapse_loops(
    cfg: ControlFlowGraph,
    iteration_bounds: Mapping[str, tuple[int, int]],
) -> CollapseResult:
    """Collapse every natural loop into a single synthetic block.

    Args:
        cfg: The (possibly cyclic) control-flow graph.
        iteration_bounds: Mapping loop header name -> (min, max) iteration
            count.  Every loop header must be present; ``min >= 0``,
            ``max >= max(min, 1)``.

    Returns:
        A :class:`CollapseResult` whose CFG is acyclic.

    Raises:
        IrreducibleLoopError: when the CFG is irreducible.
        ValueError: when a loop header has no iteration bound.
    """
    summaries: list[LoopSummary] = []
    membership: dict[str, str] = {}
    current = cfg
    synth_counter = 0

    while True:
        loops = natural_loops(current)
        if not loops:
            break
        loop = _innermost_loop(loops)
        require(
            loop.header in iteration_bounds,
            f"no iteration bound for loop header {loop.header!r}",
        )
        min_iters, max_iters = iteration_bounds[loop.header]
        require(min_iters >= 0, f"min iterations must be >= 0, got {min_iters}")
        require(
            max_iters >= max(min_iters, 1),
            f"max iterations must be >= max(min, 1), got {max_iters}",
        )

        body_best, body_worst = _body_path_extremes(current, loop)
        synth_counter += 1
        synth_name = f"__loop{synth_counter}__{loop.header}"
        synth = BasicBlock(
            name=synth_name,
            emin=min_iters * body_best,
            emax=max_iters * body_worst,
            crpd=max(current.block(n).crpd for n in loop.body),
        )

        # Rewire: edges into the header go to the synthetic node; edges
        # leaving the body go from the synthetic node.
        new_blocks = [
            b for n, b in current.blocks.items() if n not in loop.body
        ]
        new_blocks.append(synth)
        new_edges: set[tuple[str, str]] = set()
        for src, dst in current.edges():
            src_in = src in loop.body
            dst_in = dst in loop.body
            if src_in and dst_in:
                continue
            if not src_in and dst_in:
                require(
                    dst == loop.header,
                    f"edge {src!r}->{dst!r} enters loop body not at header",
                )
                new_edges.add((src, synth_name))
            elif src_in and not dst_in:
                new_edges.add((synth_name, dst))
            else:
                new_edges.add((src, dst))
        entry = synth_name if cfg_entry_in_body(current, loop) else current.entry

        # Record membership, resolving nested synthetic nodes transitively.
        members = set()
        for name in loop.body:
            members.add(name)
            members.update(k for k, v in membership.items() if v == name)
        for name in members:
            membership[name] = synth_name

        summaries.append(
            LoopSummary(
                node=synth_name,
                header=loop.header,
                members=frozenset(members),
                min_iterations=min_iters,
                max_iterations=max_iters,
                body_best=body_best,
                body_worst=body_worst,
            )
        )
        current = ControlFlowGraph(new_blocks, sorted(new_edges), entry)

    # Only original (non-synthetic, non-swallowed) names plus final synth
    # nodes remain; membership maps originals to their *final* container.
    final_names = set(current.blocks)
    resolved = {}
    for original, container in membership.items():
        while container not in final_names:
            container = membership.get(container, container)
            if container == original:  # pragma: no cover - defensive
                break
        resolved[original] = container
    return CollapseResult(
        cfg=current,
        summaries=tuple(summaries),
        membership=resolved,
    )


def cfg_entry_in_body(cfg: ControlFlowGraph, loop: NaturalLoop) -> bool:
    """Whether the CFG entry lies inside the loop body."""
    return cfg.entry in loop.body
