"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts without writing any code:

* ``fig4``      — sample the three benchmark delay functions.
* ``fig5``      — the headline Q sweep (Algorithm 1 vs Eq. 4).
* ``fig2``      — the naive-bound counterexample run.
* ``validate``  — Theorem 1 fuzzing campaign against the simulator.
* ``study``     — acceptance-ratio schedulability study.
* ``sweep``     — large-scale batch Q sweep through :mod:`repro.engine`,
  streamed to JSONL/CSV; with ``--store`` it becomes *incremental*:
  results checkpoint into a persistent :mod:`repro.store` cache, an
  interrupted run resumes with ``--resume`` (final output byte-identical
  to an uninterrupted run), and ``--shard i/N`` deterministically
  partitions the grid across machines.
* ``campaign``  — run a declarative scenario campaign
  (:mod:`repro.campaign`): a JSON/TOML spec (or a built-in name)
  naming a scenario family, its axes and defaults is compiled into a
  deterministic scenario stream and evaluated exactly like ``sweep`` —
  same ``--store``/``--resume``/``--shard``/``--jobs`` semantics, same
  byte-identical resume and merge guarantees.
* ``merge``     — combine shard stores into one and (optionally) emit
  the final result file, byte-identical to a single unsharded sweep.

All commands print ASCII renderings and write artifacts under
``results/`` (override with ``REPRO_RESULTS_DIR``).  Sweep-shaped
commands accept ``--jobs N`` to fan the work out over the batch
engine's worker pool; results are bit-identical for every ``N``.  A
worker failure aborts the sweep with a clear message and a non-zero
exit code (the failing scenario is identified by index and repr).
"""

from __future__ import annotations

import argparse
import re
import sys
from collections.abc import Sequence
from pathlib import Path


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import generate_fig4, line_plot, write_fig4_csv

    data = generate_fig4(samples=args.samples, knots=args.knots)
    path = write_fig4_csv(data)
    series = {
        name: list(zip(data.ts, values))
        for name, values in data.series.items()
    }
    print(line_plot(series, width=72, height=16, title="Figure 4"))
    print(f"wrote {path}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import (
        generate_fig5,
        improvement_summary,
        line_plot,
        render_table,
        write_fig5_csv,
    )

    data = generate_fig5(knots=args.knots, max_workers=args.jobs)
    path = write_fig5_csv(data)
    print(
        line_plot(
            data.series(), width=72, height=20, log_y=True, title="Figure 5"
        )
    )
    summary = improvement_summary(data)
    print(
        render_table(
            ["function", "median SOA / Algorithm 1"],
            [[k, v] for k, v in sorted(summary.items())],
        )
    )
    print(f"wrote {path}")
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments import render_table, run_figure2_demo

    demo = run_figure2_demo(q=args.q)
    print(
        render_table(
            ["quantity", "value"],
            [
                ["Q", demo.q],
                ["naive packing 'bound'", demo.naive_bound],
                ["simulated run delay", demo.simulated_delay],
                ["Algorithm 1 bound", demo.algorithm1_bound],
                ["naive violated", demo.naive_is_violated],
                ["Algorithm 1 safe", demo.algorithm1_is_safe],
            ],
        )
    )
    return 0 if demo.naive_is_violated and demo.algorithm1_is_safe else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import fig4_delay_function
    from repro.sim import validation_campaign
    from repro.tasks import Task, TaskSet

    f = fig4_delay_function("gaussian2", knots=512)
    target = Task(
        "target", 4000.0, 40_000.0, npr_length=args.q, delay_function=f
    )
    hp1 = Task("hp1", 40.0, 900.0)
    hp2 = Task("hp2", 25.0, 2100.0)
    tasks = TaskSet([target, hp1, hp2]).rate_monotonic()
    report = validation_campaign(
        tasks,
        policy=args.policy,
        seeds=range(args.seeds),
        horizon=args.horizon,
    )
    print(
        f"jobs checked: {report.checked_jobs}; "
        f"max measured/bound: {report.max_tightness:.3f}; "
        f"passed: {report.passed}"
    )
    return 0 if report.passed else 1


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.experiments import (
        acceptance_study,
        line_plot,
        render_table,
        study_series,
    )

    methods = ["oblivious", "busquets", "algorithm1", "eq4"]
    points = acceptance_study(
        utilizations=[0.3, 0.5, 0.65, 0.8, 0.9],
        methods=methods,
        n_tasks=args.tasks,
        sets_per_point=args.sets,
        max_workers=args.jobs,
    )
    rows = [[p.utilization, *(p.ratios[m] for m in methods)] for p in points]
    print(render_table(["U", *methods], rows))
    print(
        line_plot(
            study_series(points),
            width=64,
            height=14,
            title="Acceptance ratio vs utilization",
        )
    )
    return 0


class _ConvergenceCounter:
    """Sink wrapper counting converged records as they stream past."""

    def __init__(self, inner):
        self._inner = inner
        self.total = 0
        self.converged = 0

    def write(self, record) -> None:
        self.total += 1
        if record.get("converged"):
            self.converged += 1
        self._inner.write(record)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``i/N`` shard spec into ``(index, count)``.

    ``index`` is 1-based: ``1/4`` … ``4/4`` partition a sweep into four
    disjoint, deterministic slices (scenario ``k`` belongs to shard
    ``(k % N) + 1``), so independent machines can each run one shard
    and ``repro merge`` reassembles the full result set.

    Cosmetic variants (leading zeros, e.g. ``01/04``) parse to the
    same pair; :func:`format_shard` renders the canonical form, which
    is what gets recorded in stores so equal specs always compare
    equal.
    """
    match = re.fullmatch(r"(\d+)/(\d+)", spec)
    if match is None:
        raise ValueError(
            f"invalid shard spec {spec!r}: expected I/N, e.g. 2/4"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1:
        raise ValueError(
            f"invalid shard spec {spec!r}: shard count N must be >= 1"
        )
    if not 1 <= index <= count:
        raise ValueError(
            f"invalid shard spec {spec!r}: need 1 <= I <= N"
        )
    return index, count


def format_shard(index: int, count: int) -> str:
    """Canonical ``i/N`` rendering of a parsed shard spec."""
    return f"{index}/{count}"


def _shard_scope(shard: str | None) -> str:
    """The canonical shard scope a store records: ``i/N`` or ``full``."""
    if shard is None:
        return "full"
    return format_shard(*parse_shard(shard))


def _check_resume(args: argparse.Namespace) -> int:
    """Validate the ``--resume``/``--store`` combination; 0 when fine."""
    if args.resume and args.store is None:
        print("error: --resume requires --store", file=sys.stderr)
        return 2
    if args.resume and not Path(args.store).exists():
        print(
            f"error: --resume: store {args.store} does not exist",
            file=sys.stderr,
        )
        return 2
    return 0


def _sweep_manifest(args: argparse.Namespace) -> dict:
    """The parameters that regenerate this sweep's scenario grid.

    Recorded in every (shard) store so ``repro merge`` can rebuild the
    grid — and the final output file — without re-specifying them.
    """
    return {
        "kind": "qsweep",
        "points": args.points,
        "knots": args.knots,
    }


def _manifest_scenarios(manifest: dict) -> list:
    """Rebuild the scenario grid a manifest describes."""
    kind = manifest.get("kind")
    if kind == "qsweep":
        from repro.engine import q_sweep_scenarios
        from repro.experiments import default_q_grid

        qs = default_q_grid(points=manifest["points"])
        return q_sweep_scenarios(qs, knots=manifest["knots"])
    if kind == "campaign":
        from repro.campaign import compile_campaign

        return compile_campaign(manifest["spec"]).scenarios
    raise ValueError(
        f"unsupported sweep manifest {manifest!r}; expected kind "
        "'qsweep' or 'campaign'"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.engine import (
        CsvSink,
        JsonlSink,
        evaluate_bound_scenario,
        q_sweep_scenarios,
        run_batch,
        run_cached_batch,
    )
    from repro.engine.sweeps import bound_context_key
    from repro.experiments import default_q_grid, render_table
    from repro.experiments.io import results_dir

    code = _check_resume(args)
    if code:
        return code

    qs = default_q_grid(points=args.points)
    scenarios = q_sweep_scenarios(qs, knots=args.knots)
    if args.shard is not None:
        shard_index, shard_count = parse_shard(args.shard)
        scenarios = scenarios[shard_index - 1 :: shard_count]
    out = args.out or str(results_dir() / f"sweep.{args.format}")
    sink_cls = JsonlSink if args.format == "jsonl" else CsvSink

    fail_after = args.fail_after

    def _abort_hook(count: int) -> None:
        if fail_after is not None and count >= fail_after:
            raise KeyboardInterrupt

    started = time.perf_counter()
    cached = computed = 0
    try:
        with _ConvergenceCounter(sink_cls(out)) as sink:
            if args.store is not None:
                from repro.store import ResultStore, package_fingerprint

                with ResultStore(
                    args.store, fingerprint=package_fingerprint("repro")
                ) as store:
                    store.set_manifest(_sweep_manifest(args))
                    store.set_shard(_shard_scope(args.shard))
                    run = run_cached_batch(
                        evaluate_bound_scenario,
                        scenarios,
                        store,
                        max_workers=args.jobs,
                        chunk_size=args.chunk,
                        sink=sink,
                        collect=False,
                        on_result=_abort_hook,
                        group_by=bound_context_key,
                    )
                    cached, computed = run.cached, run.computed
            else:
                # collect=False: stream-only, so the sweep runs in
                # constant memory no matter how many scenarios are
                # requested.
                run_batch(
                    evaluate_bound_scenario,
                    scenarios,
                    max_workers=args.jobs,
                    chunk_size=args.chunk,
                    sink=sink,
                    collect=False,
                    group_by=bound_context_key,
                )
                computed = len(scenarios)
            converged = sink.converged
    except KeyboardInterrupt:
        if args.store is not None:
            print(
                f"sweep interrupted — completed scenarios are "
                f"checkpointed in {args.store}; rerun with "
                "--store/--resume to continue",
                file=sys.stderr,
            )
        else:
            print(
                "sweep interrupted — no --store given, nothing was "
                "checkpointed",
                file=sys.stderr,
            )
        return 130
    elapsed = time.perf_counter() - started
    rows = [
        ["scenarios", len(scenarios)],
        ["converged", converged],
        ["diverged", len(scenarios) - converged],
    ]
    if args.store is not None:
        rows += [["cached", cached], ["computed", computed]]
    rows += [
        ["seconds", f"{elapsed:.2f}"],
        ["scenarios/s", f"{len(scenarios) / elapsed:.0f}"],
        ["output", out],
    ]
    print(render_table(["quantity", "value"], rows))
    return 0


def _parse_set_overrides(pairs: list[str]) -> dict:
    """Parse repeated ``--set key=value`` flags.

    Values are decoded as JSON when possible (``5`` -> int, ``0.5`` ->
    float, ``[1,2]`` -> list, ``true`` -> bool) and fall back to plain
    strings, so ``--set policy=edf`` needs no quoting.
    """
    import json

    overrides: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"invalid --set {pair!r}: expected key=value"
            )
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def _resolve_campaign_spec(spec_arg: str, overrides: dict) -> dict:
    """Turn the CLI's SPEC argument into a spec mapping.

    A path that exists is loaded as a spec file (``--set`` overrides
    its ``defaults``); otherwise the argument must name a built-in
    campaign (``--set`` feeds the builtin factory's parameters).
    """
    from repro.campaign import builtin_campaign, builtin_names, load_spec

    path = Path(spec_arg)
    # A spec-shaped path (.json/.toml regular file) wins; otherwise the
    # built-in names stay reachable even when a directory or stray file
    # happens to carry the same name.
    is_spec_file = path.is_file() and path.suffix.lower() in (
        ".json",
        ".toml",
    )
    if not is_spec_file and spec_arg in builtin_names():
        return builtin_campaign(spec_arg, **overrides)
    if path.is_file():
        spec = load_spec(path)
        if overrides:
            defaults = dict(spec.get("defaults", {}))
            defaults.update(overrides)
            spec = {**spec, "defaults": defaults}
        return spec
    raise ValueError(
        f"campaign spec {spec_arg!r} is neither an existing spec file "
        f"nor a built-in campaign (available: {', '.join(builtin_names())})"
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    import time

    from repro.campaign import compile_campaign
    from repro.engine import CsvSink, JsonlSink, run_batch, run_cached_batch
    from repro.experiments import render_table
    from repro.experiments.io import results_dir

    code = _check_resume(args)
    if code:
        return code

    spec = _resolve_campaign_spec(args.spec, _parse_set_overrides(args.set))
    compiled = compile_campaign(spec)
    scenarios = compiled.scenarios
    if args.shard is not None:
        shard_index, shard_count = parse_shard(args.shard)
        scenarios = scenarios[shard_index - 1 :: shard_count]
    out = args.out or str(
        results_dir() / f"campaign-{compiled.name}.{args.format}"
    )
    sink_cls = JsonlSink if args.format == "jsonl" else CsvSink

    fail_after = args.fail_after

    def _abort_hook(count: int) -> None:
        if fail_after is not None and count >= fail_after:
            raise KeyboardInterrupt

    started = time.perf_counter()
    cached = computed = 0
    try:
        with sink_cls(out) as sink:
            if args.store is not None:
                from repro.store import ResultStore, package_fingerprint

                with ResultStore(
                    args.store, fingerprint=package_fingerprint("repro")
                ) as store:
                    store.set_manifest(
                        {"kind": "campaign", "spec": compiled.spec}
                    )
                    store.set_shard(_shard_scope(args.shard))
                    run = run_cached_batch(
                        compiled.family.worker,
                        scenarios,
                        store,
                        max_workers=args.jobs,
                        chunk_size=args.chunk,
                        sink=sink,
                        collect=False,
                        on_result=_abort_hook,
                        group_by=compiled.family.context_key,
                    )
                    cached, computed = run.cached, run.computed
            else:
                run_batch(
                    compiled.family.worker,
                    scenarios,
                    max_workers=args.jobs,
                    chunk_size=args.chunk,
                    sink=sink,
                    collect=False,
                    group_by=compiled.family.context_key,
                )
                computed = len(scenarios)
    except KeyboardInterrupt:
        if args.store is not None:
            print(
                f"campaign interrupted — completed scenarios are "
                f"checkpointed in {args.store}; rerun with "
                "--store/--resume to continue",
                file=sys.stderr,
            )
        else:
            print(
                "campaign interrupted — no --store given, nothing was "
                "checkpointed",
                file=sys.stderr,
            )
        return 130
    elapsed = time.perf_counter() - started
    rows = [
        ["campaign", compiled.name],
        ["family", compiled.family.name],
        ["scenarios", len(scenarios)],
    ]
    if args.store is not None:
        rows += [["cached", cached], ["computed", computed]]
    rows += [
        ["seconds", f"{elapsed:.2f}"],
        ["scenarios/s", f"{len(scenarios) / elapsed:.0f}"],
        ["output", out],
    ]
    print(render_table(["quantity", "value"], rows))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.engine import CsvSink, JsonlSink, emit_from_store
    from repro.experiments import render_table
    from repro.store import ResultStore, merge_stores, package_fingerprint

    missing = [path for path in args.sources if not Path(path).exists()]
    if missing:
        print(
            f"error: input store(s) not found: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    fingerprint = package_fingerprint("repro")
    with ResultStore(args.target, fingerprint=fingerprint) as target:
        sources: list[ResultStore] = []
        try:
            for path in args.sources:
                sources.append(ResultStore(path))
            added = merge_stores(target, sources)
        finally:
            for source in sources:
                source.close()
        rows = [
            ["input stores", len(args.sources)],
            ["rows added", added],
            ["rows total", len(target)],
            ["merged store", args.target],
        ]
        if args.out is not None:
            manifest = target.manifest
            if manifest is None:
                print(
                    "error: merged store has no sweep manifest; cannot "
                    "emit a result file (were the shards produced by "
                    "'repro sweep --store'?)",
                    file=sys.stderr,
                )
                return 1
            scenarios = _manifest_scenarios(manifest)
            sink_cls = JsonlSink if args.format == "jsonl" else CsvSink
            with sink_cls(args.out) as sink:
                emit_from_store(
                    target, scenarios, sink=sink, collect=False
                )
            rows.append(["output", args.out])
        print(render_table(["quantity", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and validation runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig4 = sub.add_parser("fig4", help="sample the benchmark f functions")
    p_fig4.add_argument("--samples", type=int, default=401)
    p_fig4.add_argument("--knots", type=int, default=2048)
    p_fig4.set_defaults(run=_cmd_fig4)

    p_fig5 = sub.add_parser("fig5", help="the headline Q sweep")
    p_fig5.add_argument("--knots", type=int, default=2048)
    p_fig5.add_argument(
        "--jobs", type=int, default=None,
        help="batch-engine workers (default: inline)",
    )
    p_fig5.set_defaults(run=_cmd_fig5)

    p_fig2 = sub.add_parser("fig2", help="naive-bound counterexample")
    p_fig2.add_argument("--q", type=float, default=100.0)
    p_fig2.set_defaults(run=_cmd_fig2)

    p_val = sub.add_parser("validate", help="Theorem 1 fuzzing campaign")
    p_val.add_argument("--q", type=float, default=120.0)
    p_val.add_argument("--policy", choices=["fp", "edf"], default="fp")
    p_val.add_argument("--seeds", type=int, default=6)
    p_val.add_argument("--horizon", type=float, default=60_000.0)
    p_val.set_defaults(run=_cmd_validate)

    p_study = sub.add_parser("study", help="schedulability study")
    p_study.add_argument("--tasks", type=int, default=5)
    p_study.add_argument("--sets", type=int, default=25)
    p_study.add_argument(
        "--jobs", type=int, default=None,
        help="batch-engine workers (default: inline)",
    )
    p_study.set_defaults(run=_cmd_study)

    p_sweep = sub.add_parser(
        "sweep", help="large-scale batch Q sweep via the engine"
    )
    p_sweep.add_argument(
        "--points", type=int, default=400,
        help="Q grid points (scenarios = 3x this)",
    )
    p_sweep.add_argument("--knots", type=int, default=1024)
    p_sweep.add_argument(
        "--jobs", type=int, default=None,
        help="batch-engine workers (default: inline)",
    )
    p_sweep.add_argument(
        "--chunk", type=int, default=None,
        help="scenarios per engine chunk (default: auto)",
    )
    p_sweep.add_argument(
        "--format", choices=["jsonl", "csv"], default="jsonl"
    )
    p_sweep.add_argument(
        "--out", default=None,
        help="output path (default: results/sweep.<format>)",
    )
    p_sweep.add_argument(
        "--store", default=None,
        help="persistent result store (SQLite); already-computed "
        "scenarios are skipped and fresh ones checkpointed",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep from an existing --store",
    )
    p_sweep.add_argument(
        "--shard", default=None, metavar="I/N",
        help="evaluate only shard I of N (1-based); combine shard "
        "stores with 'repro merge'",
    )
    p_sweep.add_argument(
        # Test hook: deterministically simulate a mid-sweep kill by
        # aborting after N freshly computed results.
        "--fail-after", type=int, default=None, help=argparse.SUPPRESS,
    )
    p_sweep.set_defaults(run=_cmd_sweep)

    p_camp = sub.add_parser(
        "campaign",
        help="run a declarative scenario campaign from a spec file "
        "or built-in name",
    )
    p_camp.add_argument(
        "spec",
        help="spec file (.json/.toml) or a built-in campaign name "
        "(fig5, study, sim-validate, edf-study)",
    )
    p_camp.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a builtin parameter (e.g. points=5) or a spec "
        "file default; repeatable",
    )
    p_camp.add_argument(
        "--jobs", type=int, default=None,
        help="batch-engine workers (default: inline)",
    )
    p_camp.add_argument(
        "--chunk", type=int, default=None,
        help="scenarios per engine chunk (default: auto)",
    )
    p_camp.add_argument(
        "--format", choices=["jsonl", "csv"], default="jsonl"
    )
    p_camp.add_argument(
        "--out", default=None,
        help="output path (default: results/campaign-<name>.<format>)",
    )
    p_camp.add_argument(
        "--store", default=None,
        help="persistent result store (SQLite); already-computed "
        "scenarios are skipped and fresh ones checkpointed",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted campaign from an existing --store",
    )
    p_camp.add_argument(
        "--shard", default=None, metavar="I/N",
        help="evaluate only shard I of N (1-based); combine shard "
        "stores with 'repro merge'",
    )
    p_camp.add_argument(
        # Test hook: deterministically simulate a mid-campaign kill by
        # aborting after N freshly computed results.
        "--fail-after", type=int, default=None, help=argparse.SUPPRESS,
    )
    p_camp.set_defaults(run=_cmd_campaign)

    p_merge = sub.add_parser(
        "merge",
        help="merge shard stores; optionally emit the final result file",
    )
    p_merge.add_argument("target", help="merged (output) store path")
    p_merge.add_argument(
        "sources", nargs="+", help="input shard store paths"
    )
    p_merge.add_argument(
        "--out", default=None,
        help="also emit the final result file from the merged store",
    )
    p_merge.add_argument(
        "--format", choices=["jsonl", "csv"], default="jsonl"
    )
    p_merge.set_defaults(run=_cmd_merge)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Failures exit non-zero with one clear message on stderr instead of
    a traceback: a worker failure (:class:`repro.engine.WorkerError`,
    pinpointing the failing scenario) exits 1, invalid arguments or
    incompatible stores (:class:`ValueError`) exit 2.
    """
    from repro.engine import WorkerError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except WorkerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
