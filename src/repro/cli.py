"""Command-line interface: ``python -m repro <command>``.

The CLI is a *thin, generated* frontend over the :mod:`repro.api`
facade: every subcommand is one entry of the workload registry
(:mod:`repro.api.workloads`), its flags are generated from the
workload's declared parameters, and the shared execution surface —
``--jobs/--chunk``, ``--store/--resume``, ``--shard``, ``--format/
--out`` — is parsed once into a single
:class:`~repro.api.ExecutionOptions` and interpreted identically for
every command.  A command body is pure dispatch: build the
:class:`~repro.api.RunRequest`, evaluate it through
:class:`~repro.api.Workbench`, print the workload's rendering.

Commands (see ``python -m repro --help``):

* ``fig4``/``fig5``/``fig2`` — regenerate the paper's figures.
* ``validate``  — Theorem 1 fuzzing campaign against the simulator.
* ``study``     — acceptance-ratio schedulability study.
* ``sweep``     — large-scale batch Q sweep streamed to JSONL/CSV.
* ``campaign``  — run a declarative scenario campaign (spec file or
  built-in name) over any registered scenario family.
* ``merge``     — combine shard stores and re-emit the final result
  file, byte-identical to a single unsharded run.
* ``check``     — run the domain-invariant static-analysis pass
  (:mod:`repro.checks`): determinism, worker purity, async hygiene and
  registry/wire contracts; non-zero exit on any live finding.
* ``families``  — list the registered scenario families and their axes.
* ``backends``  — list the registered kernel backends (availability,
  exactness class, batch support); select one with ``--backend``.

Every sweep-shaped command (``fig5``, ``study``, ``sweep``,
``campaign``) accepts ``--store`` (checkpoint into a persistent
:mod:`repro.store` cache), ``--resume`` (continue an interrupted run,
final output byte-identical to an uninterrupted one) and ``--shard
i/N`` (deterministically partition the grid across machines; combine
with ``merge``).  ``--jobs N`` fans work over the batch engine's
worker pool with bit-identical results for every ``N``.  A worker
failure aborts with a clear message and exit code 1; invalid arguments
or incompatible stores exit 2; ``Ctrl-C`` exits 130 — uniformly, with
a resume hint whenever a store was attached.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.api.options import format_shard, parse_shard

__all__ = ["build_parser", "main", "parse_shard", "format_shard"]

#: argparse kwargs of each shared execution-flag group (see
#: ``Workload.flags``); parsed once, consumed as one ExecutionOptions.
_EXECUTION_FLAGS: dict[str, list[tuple[str, dict]]] = {
    "engine": [
        (
            "--jobs",
            dict(
                type=int, default=None,
                help="batch-engine workers (default: inline)",
            ),
        ),
        (
            "--chunk",
            dict(
                type=int, default=None,
                help="scenarios per engine chunk (default: auto)",
            ),
        ),
    ],
    "sink": [
        ("--format", dict(choices=["jsonl", "csv"], default="jsonl")),
        (
            "--out",
            dict(
                default=None,
                help="output path (default: results/<command>.<format>)",
            ),
        ),
    ],
    "store": [
        (
            "--store",
            dict(
                default=None,
                help="persistent result store (SQLite); already-computed "
                "scenarios are skipped and fresh ones checkpointed",
            ),
        ),
        (
            "--resume",
            dict(
                action="store_true",
                help="continue an interrupted run from an existing "
                "--store",
            ),
        ),
        (
            # Test hook: deterministically simulate a mid-run kill by
            # aborting after N freshly computed results.
            "--fail-after",
            dict(type=int, default=None, help=argparse.SUPPRESS),
        ),
    ],
    "shard": [
        (
            "--shard",
            dict(
                default=None, metavar="I/N",
                help="evaluate only shard I of N (1-based); combine "
                "shard stores with 'repro merge'",
            ),
        ),
    ],
    "backend": [
        (
            "--backend",
            dict(
                default=None,
                help="kernel backend for the piecewise hot path (see "
                "'repro backends'; default: vectorized; results are "
                "bit-identical for bit-identical backends)",
            ),
        ),
    ],
}


def _add_parameter(parser: argparse.ArgumentParser, param) -> None:
    """Generate the argparse argument for one declared parameter."""
    kwargs: dict = {"help": param.help or None}
    if param.choices is not None:
        kwargs["choices"] = list(param.choices)
    if param.type is not None and param.type is not bool:
        kwargs["type"] = param.type
    if param.metavar is not None:
        kwargs["metavar"] = param.metavar
    if param.positional:
        if param.repeatable:
            kwargs["nargs"] = "+"
        parser.add_argument(param.name, **kwargs)
        return
    # Multi-word parameters render as dashed flags (--ready-file);
    # argparse maps them back to the underscored dest automatically.
    flag = param.name.replace("_", "-")
    from repro.api.workloads import REQUIRED

    if param.type is bool:
        kwargs.pop("metavar", None)
        kwargs["action"] = "store_true"
        kwargs["default"] = (
            False if param.default is REQUIRED else param.default
        )
    elif param.repeatable:
        kwargs["action"] = "append"
        kwargs["default"] = []
        kwargs.setdefault("metavar", "KEY=VALUE")
    else:
        kwargs["default"] = (
            None if param.default is REQUIRED else param.default
        )
    parser.add_argument(f"--{flag}", **kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser from the workload registry."""
    from repro import __version__
    from repro.api.workloads import get_workload, workload_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and validation runs.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in workload_names():
        workload = get_workload(name)
        command = sub.add_parser(name, help=workload.summary)
        for param in workload.parameters:
            if not param.hidden:
                _add_parameter(command, param)
        for group in ("engine", "sink", "store", "shard", "backend"):
            if group in workload.flags:
                for flag, kwargs in _EXECUTION_FLAGS[group]:
                    command.add_argument(flag, **dict(kwargs))
        command.set_defaults(run=_dispatch, workload=workload)
    return parser


def _options_from_args(args: argparse.Namespace):
    """Collect the shared execution flags into one ExecutionOptions."""
    from repro.api import ExecutionOptions, SinkSpec

    # --format/--out belong to ExecutionOptions only for workloads
    # that enabled the sink group; a workload *parameter* of the same
    # name (e.g. check's --format text|json) must not leak into the
    # sink-format validation.
    has_sink = "sink" in args.workload.flags
    out = getattr(args, "out", None) if has_sink else None
    fmt = getattr(args, "format", "jsonl") if has_sink else "jsonl"
    return ExecutionOptions(
        jobs=getattr(args, "jobs", None),
        chunk=getattr(args, "chunk", None),
        store=getattr(args, "store", None),
        resume=getattr(args, "resume", False),
        shard=getattr(args, "shard", None),
        sinks=(SinkSpec(out, fmt),) if out is not None else (),
        format=fmt,
        fail_after=getattr(args, "fail_after", None),
        backend=getattr(args, "backend", None),
    )


def _dispatch(args: argparse.Namespace) -> int:
    """Evaluate one parsed command through the facade."""
    from repro.api import RunRequest, Workbench

    workload = args.workload
    params = tuple(
        (param.name, getattr(args, param.name))
        for param in workload.parameters
        if not param.hidden and getattr(args, param.name) is not None
    )
    request = RunRequest(
        workload=workload.name,
        params=params,
        options=_options_from_args(args),
    )
    result = Workbench().run(request)
    print(workload.render(result))
    return workload.exit_code(result)


def _interrupted(args: argparse.Namespace) -> int:
    """Uniform Ctrl-C handling: exit 130 with a resume hint."""
    command = getattr(args, "command", "run")
    workload = getattr(args, "workload", None)
    if workload is not None and "store" in workload.flags:
        if getattr(args, "store", None) is not None:
            print(
                f"{command} interrupted — completed scenarios are "
                f"checkpointed in {args.store}; rerun with "
                "--store/--resume to continue",
                file=sys.stderr,
            )
        else:
            print(
                f"{command} interrupted — no --store given, nothing "
                "was checkpointed",
                file=sys.stderr,
            )
    else:
        print(f"{command} interrupted", file=sys.stderr)
    return 130


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Failures exit non-zero with one clear message on stderr instead of
    a traceback: a worker failure (:class:`repro.engine.WorkerError`,
    pinpointing the failing scenario) exits 1, a failed run
    (:class:`repro.api.RunError`) exits 1, invalid arguments or
    incompatible stores (:class:`ValueError`) exit 2, and
    ``KeyboardInterrupt`` exits 130 for every command — with a resume
    hint when a store was attached — and a closed stdout pipe
    (``check --format json | head``) exits 141 silently, never with a
    traceback.
    """
    from repro.api import RunError
    from repro.engine import WorkerError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except BrokenPipeError:
        # stdout's reader went away (e.g. piped into `head`); the
        # Unix convention is to die quietly with SIGPIPE's code.
        # Reopen stdout on devnull so the interpreter's shutdown
        # flush cannot raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        return _interrupted(args)
    except WorkerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except RunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
