"""Tests for the task model."""

import pytest

from repro.core import PreemptionDelayFunction
from repro.tasks import Task, TaskSet


class TestTask:
    def test_implicit_deadline(self):
        t = Task("a", wcet=2.0, period=10.0)
        assert t.deadline == 10.0
        assert t.utilization == pytest.approx(0.2)
        assert t.density == pytest.approx(0.2)

    def test_constrained_deadline_density(self):
        t = Task("a", wcet=2.0, period=10.0, deadline=4.0)
        assert t.density == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Task("", 1.0, 10.0)
        with pytest.raises(ValueError):
            Task("a", 0.0, 10.0)
        with pytest.raises(ValueError):
            Task("a", 1.0, 0.0)
        with pytest.raises(ValueError):
            Task("a", 1.0, 10.0, deadline=-1.0)
        with pytest.raises(ValueError):
            Task("a", 1.0, 10.0, npr_length=0.0)

    def test_delay_function_domain_must_match_wcet(self):
        f = PreemptionDelayFunction.from_constant(1.0, 5.0)
        Task("a", wcet=5.0, period=10.0, delay_function=f)  # fine
        with pytest.raises(ValueError):
            Task("a", wcet=6.0, period=10.0, delay_function=f)

    def test_with_helpers(self):
        t = Task("a", 2.0, 10.0)
        assert t.with_npr_length(1.0).npr_length == 1.0
        assert t.with_priority(3).priority == 3
        f = PreemptionDelayFunction.from_constant(0.5, 2.0)
        assert t.with_delay_function(f).delay_function is f

    def test_with_wcet_drops_mismatched_delay_function(self):
        f = PreemptionDelayFunction.from_constant(0.5, 2.0)
        t = Task("a", 2.0, 10.0, delay_function=f)
        assert t.with_wcet(3.0).delay_function is None
        assert t.with_wcet(2.0).delay_function is f


class TestTaskSet:
    def make(self):
        return TaskSet(
            [
                Task("fast", 1.0, 5.0),
                Task("mid", 2.0, 10.0, deadline=8.0),
                Task("slow", 3.0, 30.0),
            ]
        )

    def test_utilization(self):
        ts = self.make()
        assert ts.utilization == pytest.approx(1 / 5 + 2 / 10 + 3 / 30)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([Task("a", 1, 10), Task("a", 1, 10)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([])

    def test_lookup(self):
        ts = self.make()
        assert ts.task("mid").wcet == 2.0
        with pytest.raises(ValueError):
            ts.task("ghost")

    def test_sorted_by_deadline(self):
        ts = self.make().sorted_by_deadline()
        assert [t.name for t in ts] == ["fast", "mid", "slow"]

    def test_rate_monotonic(self):
        ts = self.make().rate_monotonic()
        by_prio = ts.sorted_by_priority()
        assert [t.name for t in by_prio] == ["fast", "mid", "slow"]
        assert by_prio[0].priority == 1

    def test_deadline_monotonic(self):
        ts = self.make().deadline_monotonic()
        by_prio = ts.sorted_by_priority()
        assert [t.name for t in by_prio] == ["fast", "mid", "slow"]

    def test_sorted_by_priority_requires_priorities(self):
        with pytest.raises(ValueError):
            self.make().sorted_by_priority()

    def test_map(self):
        ts = self.make().map(lambda t: t.with_npr_length(0.5))
        assert all(t.npr_length == 0.5 for t in ts)
