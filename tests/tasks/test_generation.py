"""Tests for task-set generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (
    gaussian_delay_factory,
    generate_task_set,
    log_uniform_period,
    uunifast,
    uunifast_discard,
)


class TestUUniFast:
    @given(
        n=st.integers(min_value=1, max_value=20),
        u=st.floats(min_value=0.05, max_value=0.99),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sums_to_target(self, n, u, seed):
        values = uunifast(n, u, random.Random(seed))
        assert len(values) == n
        assert sum(values) == pytest.approx(u)
        assert all(v >= 0 for v in values)

    def test_validation(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            uunifast(3, 0.0, random.Random(0))

    def test_discard_respects_cap(self):
        values = uunifast_discard(4, 2.0, random.Random(7), cap=0.9)
        assert all(v <= 0.9 for v in values)
        assert sum(values) == pytest.approx(2.0)

    def test_discard_impossible_raises(self):
        # 2 tasks summing to 3.0 with cap 1.0 is impossible.
        with pytest.raises(ValueError):
            uunifast_discard(2, 3.0, random.Random(0), max_attempts=50)


class TestPeriods:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_log_uniform_in_range(self, seed):
        p = log_uniform_period(random.Random(seed), 10.0, 1000.0)
        assert 10.0 <= p <= 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            log_uniform_period(random.Random(0), 10.0, 10.0)


class TestGenerateTaskSet:
    def test_deterministic(self):
        a = generate_task_set(5, 0.7, seed=3)
        b = generate_task_set(5, 0.7, seed=3)
        assert [(t.name, t.wcet, t.period) for t in a] == [
            (t.name, t.wcet, t.period) for t in b
        ]

    def test_utilization_close_to_target(self):
        ts = generate_task_set(6, 0.6, seed=1)
        assert ts.utilization == pytest.approx(0.6, abs=1e-6)

    def test_constrained_deadlines(self):
        ts = generate_task_set(6, 0.5, seed=2, deadline_style="constrained")
        for t in ts:
            assert t.wcet <= t.deadline <= t.period + 1e-9

    def test_constrained_same_seed_reproduces_identical_set(self):
        # The constrained branch draws one extra uniform per task; the
        # whole set must still be a pure function of the seed.
        a = generate_task_set(6, 0.6, seed=11, deadline_style="constrained")
        b = generate_task_set(6, 0.6, seed=11, deadline_style="constrained")
        assert [
            (t.name, t.wcet, t.period, t.deadline) for t in a
        ] == [(t.name, t.wcet, t.period, t.deadline) for t in b]

    def test_constrained_draws_strictly_inside_the_period(self):
        constrained = generate_task_set(
            5, 0.5, seed=7, deadline_style="constrained"
        )
        implicit = generate_task_set(5, 0.5, seed=7)
        # Implicit sets D = T; the constrained branch draws D in
        # [C, T] (strictly below T with overwhelming probability).
        assert all(t.deadline == t.period for t in implicit)
        assert any(t.deadline < t.period for t in constrained)
        assert all(
            t.wcet <= t.deadline <= t.period for t in constrained
        )

    def test_constrained_different_seeds_differ(self):
        a = generate_task_set(5, 0.5, seed=1, deadline_style="constrained")
        b = generate_task_set(5, 0.5, seed=2, deadline_style="constrained")
        assert [t.deadline for t in a] != [t.deadline for t in b]

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            generate_task_set(3, 0.5, seed=0, deadline_style="weird")

    def test_delay_factory_attached(self):
        factory = gaussian_delay_factory()
        ts = generate_task_set(
            4, 0.5, seed=5, delay_function_factory=factory
        )
        for t in ts:
            assert t.delay_function is not None
            assert t.delay_function.wcet == pytest.approx(t.wcet)
            assert t.delay_function.max_value() <= 0.06 * t.wcet


class TestGaussianDelayFactory:
    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_delay_factory(peak_fraction=0.0)
        with pytest.raises(ValueError):
            gaussian_delay_factory(relative_width=0.0)

    def test_shape(self):
        from repro.tasks import Task

        factory = gaussian_delay_factory(
            peak_fraction=0.5, relative_width=0.1, relative_height=0.1
        )
        task = Task("a", wcet=100.0, period=1000.0)
        f = factory(task, random.Random(1))
        assert f.wcet == 100.0
        # Peak near mid-execution dominates the edges.
        assert f.max_value() > f.value(1.0)
        assert f.max_value() > f.value(99.0)
