"""Uniform interrupt handling: every command exits 130 on Ctrl-C.

Previously only ``sweep`` and ``campaign`` mapped ``KeyboardInterrupt``
to exit code 130 with a resume hint; the facade routes every subcommand
through one handler in :func:`repro.cli.main`, so long-running figure
and study commands interrupt just as cleanly.
"""

from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(tmp_path, monkeypatch, argv):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    return main(argv)


class TestStoreBackedInterrupts:
    """``--fail-after`` simulates a mid-run kill; the command must exit
    130 with a resume hint and the resumed run must be byte-identical."""

    def test_fig5_interrupt_resume_byte_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        argv = ["fig5", "--points", "4", "--knots", "64"]
        assert _run(tmp_path, monkeypatch, argv) == 0
        plain = (tmp_path / "results" / "fig5.csv").read_bytes()

        store = tmp_path / "fig5.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--store", str(store), "--fail-after", "3"],
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "fig5 interrupted" in captured.err
        assert "--resume" in captured.err

        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--store", str(store), "--resume"],
        )
        assert code == 0
        assert (tmp_path / "results" / "fig5.csv").read_bytes() == plain

    def test_study_interrupt_resume_identical_stdout(
        self, tmp_path, monkeypatch, capsys
    ):
        argv = ["study", "--tasks", "3", "--sets", "4"]
        assert _run(tmp_path, monkeypatch, argv) == 0
        plain_stdout = capsys.readouterr().out

        store = tmp_path / "study.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--store", str(store), "--fail-after", "5"],
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "study interrupted" in captured.err
        assert str(store) in captured.err

        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--store", str(store), "--resume"],
        )
        assert code == 0
        assert capsys.readouterr().out == plain_stdout

    def test_interrupt_without_store_names_the_gap(
        self, tmp_path, monkeypatch, capsys
    ):
        # No store: nothing was checkpointed and the message says so.
        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.api.execution.run_batch", boom)
        code = _run(
            tmp_path, monkeypatch, ["fig5", "--points", "4", "--knots", "64"]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "fig5 interrupted" in captured.err
        assert "nothing was checkpointed" in captured.err


class TestStorelessInterrupts:
    """Commands without a store surface still exit 130 uniformly."""

    def test_validate_interrupt(self, tmp_path, monkeypatch, capsys):
        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.sim.validation_campaign", boom)
        code = _run(tmp_path, monkeypatch, ["validate", "--seeds", "2"])
        captured = capsys.readouterr()
        assert code == 130
        assert "validate interrupted" in captured.err

    def test_fig2_interrupt(self, tmp_path, monkeypatch, capsys):
        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.experiments.run_figure2_demo", boom)
        code = _run(tmp_path, monkeypatch, ["fig2"])
        captured = capsys.readouterr()
        assert code == 130
        assert "fig2 interrupted" in captured.err


class TestUniformStoreFlags:
    """fig5/study gained --store/--resume/--shard with sweep semantics."""

    def test_fig5_warm_store_recomputes_nothing(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "fig5.sqlite"
        argv = [
            "fig5", "--points", "4", "--knots", "64", "--store", str(store)
        ]
        assert _run(tmp_path, monkeypatch, argv) == 0
        first = (tmp_path / "results" / "fig5.csv").read_bytes()
        assert _run(tmp_path, monkeypatch, argv) == 0
        assert (tmp_path / "results" / "fig5.csv").read_bytes() == first

    def test_fig5_sharded_stores_merge_to_full_artifact(
        self, tmp_path, monkeypatch, capsys
    ):
        argv = ["fig5", "--points", "4", "--knots", "64"]
        assert _run(tmp_path, monkeypatch, argv) == 0
        plain = (tmp_path / "results" / "fig5.csv").read_bytes()
        (tmp_path / "results" / "fig5.csv").unlink()

        shards = []
        for i in (1, 2):
            store = tmp_path / f"shard{i}.sqlite"
            shards.append(str(store))
            code = _run(
                tmp_path,
                monkeypatch,
                [*argv, "--store", str(store), "--shard", f"{i}/2"],
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "shard checkpointed" in out
        assert not (tmp_path / "results" / "fig5.csv").exists()

        merged = tmp_path / "merged.sqlite"
        assert _run(
            tmp_path, monkeypatch, ["merge", str(merged), *shards]
        ) == 0
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--store", str(merged), "--resume"],
        )
        assert code == 0
        assert (tmp_path / "results" / "fig5.csv").read_bytes() == plain

    def test_fig5_shard_without_store_exits_2(
        self, tmp_path, monkeypatch, capsys
    ):
        code = _run(
            tmp_path,
            monkeypatch,
            ["fig5", "--points", "4", "--knots", "64", "--shard", "1/2"],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "requires --store" in captured.err

    def test_study_resume_requires_existing_store(
        self, tmp_path, monkeypatch, capsys
    ):
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "study", "--tasks", "3", "--sets", "4",
                "--store", str(tmp_path / "absent.sqlite"), "--resume",
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "does not exist" in captured.err

    def test_fig4_refuses_a_store_recorded_by_sweep(
        self, tmp_path, monkeypatch, capsys
    ):
        # One store, one sweep shape: a qsweep store must not silently
        # absorb fig4 sample records.
        store = tmp_path / "shared.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "sweep", "--points", "4", "--knots", "64",
                "--store", str(store),
                "--out", str(tmp_path / "s.jsonl"),
            ],
        )
        assert code == 0
        capsys.readouterr()
        code = _run(
            tmp_path,
            monkeypatch,
            ["fig4", "--samples", "21", "--knots", "64",
             "--store", str(store)],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "manifest" in captured.err

    def test_fig4_store_round_trip(self, tmp_path, monkeypatch, capsys):
        store = tmp_path / "fig4.sqlite"
        argv = [
            "fig4", "--samples", "21", "--knots", "64",
            "--store", str(store),
        ]
        assert _run(tmp_path, monkeypatch, argv) == 0
        first = (tmp_path / "results" / "fig4.csv").read_bytes()
        assert _run(tmp_path, monkeypatch, [*argv, "--resume"]) == 0
        assert (tmp_path / "results" / "fig4.csv").read_bytes() == first


class TestVersionFlag:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestClosedStdoutPipe:
    def test_broken_pipe_exits_141_without_traceback(self):
        # `python -m repro check --format json | head` must follow the
        # Unix convention — die quietly with SIGPIPE's exit code — not
        # dump a BrokenPipeError traceback from the shutdown flush.
        # Writing to a pipe whose read end is already closed makes the
        # first print raise deterministically (no buffer-size race).
        import os
        import subprocess
        import sys

        read_end, write_end = os.pipe()
        os.close(read_end)
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "families"],
                stdout=write_end,
                stderr=subprocess.PIPE,
                text=True,
                env={**os.environ, "PYTHONPATH": "src"},
                cwd=str(REPO_ROOT),
            )
        finally:
            os.close(write_end)
        assert proc.returncode == 141, proc.stderr
        assert "Traceback" not in proc.stderr
