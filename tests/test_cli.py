"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_shard


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig2", "validate", "study", "sweep"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.run)

    def test_merge_command(self):
        args = build_parser().parse_args(["merge", "t.sqlite", "a.sqlite"])
        assert args.command == "merge"
        assert args.target == "t.sqlite"
        assert args.sources == ["a.sqlite"]


class TestParseShard:
    def test_valid_specs(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)

    @pytest.mark.parametrize(
        "spec", ["", "2", "0/4", "5/4", "a/b", "1/0", "-1/4", "1/4/2"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_shard(spec)


class TestCommands:
    def test_fig4(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["fig4", "--samples", "21", "--knots", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out
        assert (tmp_path / "fig4.csv").exists()

    def test_fig2(self, capsys):
        code = main(["fig2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "naive violated" in out

    def test_validate_small(self, capsys):
        code = main(
            ["validate", "--seeds", "2", "--horizon", "9000", "--q", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "passed: True" in out

    def test_validate_edf(self, capsys):
        code = main(
            [
                "validate",
                "--seeds",
                "1",
                "--horizon",
                "9000",
                "--policy",
                "edf",
            ]
        )
        assert code == 0
        assert "passed: True" in capsys.readouterr().out

    def test_study_small(self, capsys):
        code = main(["study", "--tasks", "3", "--sets", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "oblivious" in out


_SWEEP = ["sweep", "--points", "5", "--knots", "64"]


def _run(tmp_path, monkeypatch, argv):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    return main(argv)


class TestSweepStore:
    """End-to-end sweep/merge runs in a tmpdir (the resumable-sweep
    acceptance surface: kill-and-resume and shard-and-merge must be
    byte-identical to one uninterrupted, unsharded run)."""

    def test_interrupted_then_resumed_is_byte_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        plain = tmp_path / "plain.jsonl"
        assert _run(tmp_path, monkeypatch, [*_SWEEP, "--out", str(plain)]) == 0

        out = tmp_path / "resumed.jsonl"
        store = tmp_path / "sweep.sqlite"
        # Simulated mid-sweep kill after 4 checkpointed scenarios.
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--out", str(out),
                "--store", str(store),
                "--fail-after", "4",
            ],
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert "--resume" in captured.err

        code = _run(
            tmp_path,
            monkeypatch,
            [*_SWEEP, "--out", str(out), "--store", str(store), "--resume"],
        )
        out_table = capsys.readouterr().out
        assert code == 0
        assert "cached" in out_table
        assert out.read_bytes() == plain.read_bytes()

    def test_interrupted_then_resumed_csv(self, tmp_path, monkeypatch):
        plain = tmp_path / "plain.csv"
        argv = [*_SWEEP, "--format", "csv"]
        assert _run(tmp_path, monkeypatch, [*argv, "--out", str(plain)]) == 0

        out = tmp_path / "resumed.csv"
        store = tmp_path / "sweep.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *argv,
                "--out", str(out),
                "--store", str(store),
                "--fail-after", "3",
            ],
        )
        assert code == 130
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--out", str(out), "--store", str(store), "--resume"],
        )
        assert code == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_warm_store_recomputes_nothing(
        self, tmp_path, monkeypatch, capsys
    ):
        store = tmp_path / "sweep.sqlite"
        out = tmp_path / "out.jsonl"
        argv = [*_SWEEP, "--out", str(out), "--store", str(store)]
        assert _run(tmp_path, monkeypatch, argv) == 0
        capsys.readouterr()
        assert _run(tmp_path, monkeypatch, argv) == 0
        table = capsys.readouterr().out
        computed_row = next(
            line for line in table.splitlines() if "computed" in line
        )
        assert " 0" in computed_row

    def test_sharded_runs_merge_byte_identical(
        self, tmp_path, monkeypatch
    ):
        plain = tmp_path / "plain.jsonl"
        assert _run(tmp_path, monkeypatch, [*_SWEEP, "--out", str(plain)]) == 0

        shards = []
        for i in (1, 2, 3):
            store = tmp_path / f"shard{i}.sqlite"
            shards.append(str(store))
            code = _run(
                tmp_path,
                monkeypatch,
                [
                    *_SWEEP,
                    "--out", str(tmp_path / f"shard{i}.jsonl"),
                    "--store", str(store),
                    "--shard", f"{i}/3",
                ],
            )
            assert code == 0

        merged_out = tmp_path / "merged.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "merge",
                str(tmp_path / "merged.sqlite"),
                *shards,
                "--out", str(merged_out),
            ],
        )
        assert code == 0
        assert merged_out.read_bytes() == plain.read_bytes()

    def test_merge_of_incomplete_shards_fails_clearly(
        self, tmp_path, monkeypatch, capsys
    ):
        store = tmp_path / "shard1.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--out", str(tmp_path / "s1.jsonl"),
                "--store", str(store),
                "--shard", "1/3",
            ],
        )
        assert code == 0
        capsys.readouterr()
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "merge",
                str(tmp_path / "merged.sqlite"),
                str(store),
                "--out", str(tmp_path / "merged.jsonl"),
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "missing" in captured.err


class TestSweepErrors:
    def test_worker_failure_exits_nonzero_with_clear_error(
        self, tmp_path, monkeypatch, capsys
    ):
        # knots=0 makes every worker raise while building its benchmark
        # function — the regression surface for "a failing sweep must
        # not exit 0".
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "sweep",
                "--points", "2",
                "--knots", "0",
                "--out", str(tmp_path / "bad.jsonl"),
            ],
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error: worker failed on scenario" in captured.err
        assert "BoundScenario" in captured.err

    def test_worker_failure_exits_nonzero_when_pooled(
        self, tmp_path, monkeypatch, capsys
    ):
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "sweep",
                "--points", "2",
                "--knots", "0",
                "--jobs", "2",
                "--out", str(tmp_path / "bad.jsonl"),
            ],
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error: worker failed on scenario" in captured.err

    def test_resume_requires_store(self, tmp_path, monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch, [*_SWEEP, "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--resume requires --store" in captured.err

    def test_resume_requires_existing_store(
        self, tmp_path, monkeypatch, capsys
    ):
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--store", str(tmp_path / "absent.sqlite"),
                "--resume",
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "does not exist" in captured.err

    def test_invalid_shard_spec(self, tmp_path, monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch, [*_SWEEP, "--shard", "9/4"])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid shard spec" in captured.err

    def test_merge_rejects_non_store_file(
        self, tmp_path, monkeypatch, capsys
    ):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("not a database")
        code = _run(
            tmp_path,
            monkeypatch,
            ["merge", str(tmp_path / "t.sqlite"), str(bogus)],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "not a valid result store" in captured.err

    def test_merge_missing_inputs(self, tmp_path, monkeypatch, capsys):
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "merge",
                str(tmp_path / "t.sqlite"),
                str(tmp_path / "absent.sqlite"),
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "not found" in captured.err

    def test_merge_without_manifest_cannot_emit(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.store import ResultStore, package_fingerprint

        source = tmp_path / "bare.sqlite"
        with ResultStore(
            source, fingerprint=package_fingerprint("repro")
        ) as store:
            store.put("k", {"v": 1})
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "merge",
                str(tmp_path / "t.sqlite"),
                str(source),
                "--out", str(tmp_path / "o.jsonl"),
            ],
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "manifest" in captured.err


class TestShardConsistency:
    def test_sweep_resume_with_different_shard_fails_clearly(
        self, tmp_path, monkeypatch, capsys
    ):
        store = tmp_path / "shard.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--out", str(tmp_path / "s1.jsonl"),
                "--store", str(store),
                "--shard", "1/3",
            ],
        )
        assert code == 0
        capsys.readouterr()
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--out", str(tmp_path / "s2.jsonl"),
                "--store", str(store),
                "--shard", "2/3",
                "--resume",
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "recorded for shard '1/3'" in captured.err
        assert "partial result file" in captured.err

    def test_sweep_unsharded_store_rejects_sharded_resume(
        self, tmp_path, monkeypatch, capsys
    ):
        store = tmp_path / "full.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [*_SWEEP, "--out", str(tmp_path / "f.jsonl"), "--store", str(store)],
        )
        assert code == 0
        capsys.readouterr()
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--out", str(tmp_path / "p.jsonl"),
                "--store", str(store),
                "--shard", "1/2",
            ],
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "recorded for shard 'full'" in captured.err
