"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig4", "fig5", "fig2", "validate", "study"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.run)


class TestCommands:
    def test_fig4(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["fig4", "--samples", "21", "--knots", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out
        assert (tmp_path / "fig4.csv").exists()

    def test_fig2(self, capsys):
        code = main(["fig2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "naive violated" in out

    def test_validate_small(self, capsys):
        code = main(
            ["validate", "--seeds", "2", "--horizon", "9000", "--q", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "passed: True" in out

    def test_validate_edf(self, capsys):
        code = main(
            [
                "validate",
                "--seeds",
                "1",
                "--horizon",
                "9000",
                "--policy",
                "edf",
            ]
        )
        assert code == 0
        assert "passed: True" in capsys.readouterr().out

    def test_study_small(self, capsys):
        code = main(["study", "--tasks", "3", "--sets", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "oblivious" in out
