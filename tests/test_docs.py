"""Docs anti-rot checks.

Documentation is part of the test surface: every public module must keep
a docstring, the README's Python examples must actually run, and every
repository path named in the docs must exist.  If a refactor breaks any
of these, the suite fails instead of letting the docs drift.
"""

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"
DOCS = REPO_ROOT / "docs"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_REPO_PATH = re.compile(r"\b(?:src|tests|benchmarks|docs)/[\w./*-]+")


def _missing_paths(text: str) -> list[str]:
    """Repo paths named in ``text`` that do not exist (globs allowed)."""
    missing = []
    for match in _REPO_PATH.findall(text):
        if "*" in match:
            if not list(REPO_ROOT.glob(match)):
                missing.append(match)
        elif not (REPO_ROOT / match).exists():
            missing.append(match)
    return missing


def _all_modules() -> list[Path]:
    return sorted(SRC_ROOT.rglob("*.py"))


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in _all_modules():
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_package_init_has_a_paragraph_overview(self):
        thin = []
        for path in SRC_ROOT.rglob("__init__.py"):
            doc = ast.get_docstring(ast.parse(path.read_text())) or ""
            if len(doc.split()) < 10:
                thin.append(str(path.relative_to(REPO_ROOT)))
        assert not thin, f"package __init__ docstrings too thin: {thin}"

    def test_no_stale_doc_references(self):
        # DESIGN.md / EXPERIMENTS.md were never committed; docs moved to
        # README.md and docs/.  Nothing may reference the old names.
        offenders = []
        for path in _all_modules():
            text = path.read_text()
            if "DESIGN.md" in text or "EXPERIMENTS.md" in text:
                offenders.append(str(path.relative_to(REPO_ROOT)))
        assert not offenders, f"stale doc references in: {offenders}"


class TestReadme:
    def test_exists_with_required_sections(self):
        text = README.read_text()
        for heading in (
            "Install",
            "Quickstart",
            "CLI tour",
            "Run it as a service",
            "Module map",
        ):
            assert heading in text, f"README is missing the {heading!r} section"

    def test_python_examples_execute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # relative artifact paths land in tmp
        blocks = _FENCE.findall(README.read_text())
        assert blocks, "README has no ```python examples"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "README.md", "exec"), namespace)

    def test_module_map_paths_exist(self):
        missing = _missing_paths(README.read_text())
        assert not missing, f"README names missing paths: {missing}"


class TestDocsPages:
    @pytest.mark.parametrize(
        "page",
        ["architecture.md", "paper_mapping.md", "serving.md", "checks.md"],
    )
    def test_page_exists(self, page):
        assert (DOCS / page).is_file()

    @pytest.mark.parametrize(
        "page",
        ["architecture.md", "paper_mapping.md", "serving.md", "checks.md"],
    )
    def test_referenced_paths_exist(self, page):
        missing = _missing_paths((DOCS / page).read_text())
        assert not missing, f"{page} names missing paths: {missing}"

    def test_architecture_covers_every_package(self):
        text = (DOCS / "architecture.md").read_text()
        packages = {
            p.name for p in SRC_ROOT.iterdir() if (p / "__init__.py").is_file()
        }
        not_mentioned = {name for name in packages if name not in text}
        assert not not_mentioned, (
            f"architecture.md does not mention packages: {sorted(not_mentioned)}"
        )
