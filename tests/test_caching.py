"""The shared ``REPRO_CACHE_SIZE`` knob and the SwappableLRU memo.

One environment variable sizes every per-process memo (SegmentIndex
arrays, AnalysisContext objects, batched kernel grids); these tests
lock in the parsing rules, the lru-compatible memo behaviour, and the
wiring — each engine memo is a :class:`SwappableLRU` that picks the
override up on ``resize()``.
"""

import pytest

from repro.utils.caching import CACHE_SIZE_ENV, SwappableLRU, cache_size


class TestCacheSize:
    def test_unset_or_empty_yields_the_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_SIZE_ENV, raising=False)
        assert cache_size(32) == 32
        monkeypatch.setenv(CACHE_SIZE_ENV, "")
        assert cache_size(32) == 32

    def test_env_overrides_every_default(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV, "7")
        assert cache_size(32) == 7
        assert cache_size(256) == 7

    @pytest.mark.parametrize("raw", ["zero", "1.5"])
    def test_non_integers_fail_loudly(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_SIZE_ENV, raw)
        with pytest.raises(ValueError, match=CACHE_SIZE_ENV):
            cache_size(4)

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_sizes_fail_loudly(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_SIZE_ENV, raw)
        with pytest.raises(ValueError, match=">= 1"):
            cache_size(4)


class TestSwappableLRU:
    def _counting_memo(self, size=4):
        calls = []

        def fn(x):
            """doc survives wrapping"""
            calls.append(x)
            return x * 2

        return SwappableLRU(fn, size), calls

    def test_memoises_like_lru_cache(self):
        memo, calls = self._counting_memo()
        assert memo(3) == 6
        assert memo(3) == 6
        assert calls == [3]
        info = memo.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_cache_clear_drops_entries_keeps_capacity(self):
        memo, calls = self._counting_memo()
        memo(1)
        memo.cache_clear()
        memo(1)
        assert calls == [1, 1]
        assert memo.cache_info().maxsize == 4

    def test_resize_changes_capacity_and_drops_entries(self):
        memo, calls = self._counting_memo()
        memo(1)
        memo.resize(2)
        assert memo.cache_info().maxsize == 2
        memo(1)
        assert calls == [1, 1]

    def test_resize_none_rereads_the_environment(self, monkeypatch):
        memo, _ = self._counting_memo(size=4)
        monkeypatch.setenv(CACHE_SIZE_ENV, "9")
        memo.resize()
        assert memo.cache_info().maxsize == 9
        monkeypatch.delenv(CACHE_SIZE_ENV)
        memo.resize()
        assert memo.cache_info().maxsize == 4

    def test_eviction_respects_capacity(self):
        memo, calls = self._counting_memo(size=2)
        memo(1), memo(2), memo(3)  # evicts 1
        memo(1)
        assert calls == [1, 2, 3, 1]

    def test_rejects_degenerate_sizes(self):
        memo, _ = self._counting_memo()
        with pytest.raises(ValueError):
            SwappableLRU(lambda x: x, 0)
        with pytest.raises(ValueError):
            memo.resize(0)

    def test_wraps_like_functools(self):
        memo, _ = self._counting_memo()
        assert memo.__name__ == "fn"
        assert memo.__doc__ == "doc survives wrapping"
        assert memo.__wrapped__(5) == 10


class TestEngineMemoWiring:
    def test_every_engine_memo_follows_the_knob(self, monkeypatch):
        # The one-knob contract: SegmentIndex, AnalysisContext and
        # BatchedGrid memos all resize through REPRO_CACHE_SIZE.
        from repro.engine.context import get_context
        from repro.piecewise.backends import batched_grid
        from repro.piecewise.vectorized import segment_index

        memos = (get_context, segment_index, batched_grid)
        for memo in memos:
            assert isinstance(memo, SwappableLRU)
        monkeypatch.setenv(CACHE_SIZE_ENV, "11")
        try:
            for memo in memos:
                memo.resize()
                assert memo.cache_info().maxsize == 11
        finally:
            monkeypatch.delenv(CACHE_SIZE_ENV)
            for memo in memos:
                memo.resize()
        assert get_context.cache_info().maxsize != 11
