"""Property test: the LRU may-analysis over-approximates every concrete
path's cache content.

For random branchy DAG programs, enumerate all paths from the entry to
each block, run the concrete LRU simulator along each path, and check
that every cached memory block appears in the may-set computed at the
block's entry.  This is the defining soundness property of the
Ferdinand-style may analysis that backs :func:`repro.cache.lru_may_ucb`.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry, LRUCache
from repro.cache.ucb import lru_may_ucb
from repro.cfg import BasicBlock, ControlFlowGraph


def _random_dag_program(rng: random.Random, geometry: CacheGeometry):
    """A small random series-parallel DAG with per-block accesses."""
    layers = rng.randint(2, 4)
    names: list[list[str]] = []
    blocks: list[BasicBlock] = []
    edges: list[tuple[str, str]] = []
    counter = 0
    previous: list[str] = []
    for layer in range(layers):
        width = 1 if layer in (0, layers - 1) else rng.randint(1, 3)
        current = []
        for _ in range(width):
            name = f"n{counter}"
            counter += 1
            blocks.append(BasicBlock(name, 1, 1))
            current.append(name)
        for src in previous:
            for dst in current:
                edges.append((src, dst))
        previous = current
        names.append(current)
    cfg = ControlFlowGraph(blocks, edges, names[0][0])
    accesses = {
        b.name: [
            rng.randrange(geometry.num_sets * (geometry.associativity + 1))
            for _ in range(rng.randint(0, 4))
        ]
        for b in blocks
    }
    return cfg, accesses


def _paths_to(cfg: ControlFlowGraph, target: str) -> list[list[str]]:
    """All entry->target paths (small DAGs only)."""
    paths: list[list[str]] = []

    def walk(node: str, path: list[str]) -> None:
        if node == target:
            paths.append(path)
            return
        for nxt in cfg.successors(node):
            walk(nxt, path + [nxt])

    walk(cfg.entry, [cfg.entry])
    return paths


class TestLruMaySoundness:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_concrete_content_subset_of_may(self, seed, assoc):
        rng = random.Random(seed)
        geometry = CacheGeometry(num_sets=2, associativity=assoc)
        cfg, accesses = _random_dag_program(rng, geometry)
        analysis = lru_may_ucb(cfg, accesses, geometry)

        for target in cfg.blocks:
            may_at_entry = analysis.reaching_in[target]
            for path in _paths_to(cfg, target):
                cache = LRUCache(geometry)
                for block_name in path[:-1]:  # up to the target's entry
                    for m in accesses[block_name]:
                        cache.access(m)
                concrete = cache.contents()
                assert concrete <= set(may_at_entry), (
                    f"path {path} leaves {concrete - set(may_at_entry)} "
                    f"outside the may-set at {target} (seed {seed})"
                )
