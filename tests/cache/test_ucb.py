"""Tests for the UCB dataflow analyses, including the simulator-backed
soundness property: static UCB counts bound measured extra misses."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheGeometry,
    direct_mapped_ucb,
    extra_misses_after_preemption,
    lru_may_ucb,
)
from repro.cfg import BasicBlock, ControlFlowGraph


def linear(names_and_counts, accesses):
    names = [n for n, _ in names_and_counts]
    blocks = [BasicBlock(n, 1, 1) for n in names]
    edges = list(zip(names, names[1:]))
    return ControlFlowGraph(blocks, edges, names[0]), accesses


class TestDirectMappedBasics:
    def test_reuse_makes_block_useful(self):
        # a accesses m0; b re-reads m0: m0 is useful at entry of b.
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        analysis = direct_mapped_ucb(
            cfg, {"a": [0], "b": [0]}, CacheGeometry(num_sets=4)
        )
        assert 0 in analysis.ucb_at_entry("b")
        assert analysis.max_ucb_per_block["b"] >= 1

    def test_no_reuse_no_useful_blocks(self):
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        analysis = direct_mapped_ucb(
            cfg, {"a": [0], "b": [1]}, CacheGeometry(num_sets=4)
        )
        assert analysis.ucb_at_entry("b") == frozenset()

    def test_conflicting_access_kills_usefulness(self):
        # m0 and m4 share a set (4 sets); b accesses m4 before reusing m0:
        # at entry of b, m0 will be evicted by m4 anyway -> not useful.
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        analysis = direct_mapped_ucb(
            cfg, {"a": [0], "b": [4, 0]}, CacheGeometry(num_sets=4)
        )
        assert 0 not in analysis.ucb_at_entry("b")
        # But m4 itself is useful between its access and m0's? No: m0
        # evicts m4 immediately after -> nothing useful inside b's middle
        # point either.
        assert all(len(p) == 0 for p in analysis.ucb_per_point["b"][:1])

    def test_branchy_reuse_is_may(self):
        # m0 reused on one arm only: still useful at the fork.
        cfg = ControlFlowGraph(
            [
                BasicBlock("a", 1, 1),
                BasicBlock("l", 1, 1),
                BasicBlock("r", 1, 1),
                BasicBlock("j", 1, 1),
            ],
            [("a", "l"), ("a", "r"), ("l", "j"), ("r", "j")],
            "a",
        )
        analysis = direct_mapped_ucb(
            cfg,
            {"a": [0], "l": [0], "r": [], "j": []},
            CacheGeometry(num_sets=4),
        )
        assert 0 in analysis.ucb_at_entry("l")
        # At entry of the right arm m0 may also still be reused? No path
        # from r reuses it -> not useful there.
        assert 0 not in analysis.ucb_at_entry("r")

    def test_loop_carried_usefulness(self):
        # Loop body reuses m0 every iteration: useful at the header.
        cfg = ControlFlowGraph(
            [
                BasicBlock("e", 1, 1),
                BasicBlock("h", 1, 1),
                BasicBlock("body", 1, 1),
                BasicBlock("x", 1, 1),
            ],
            [("e", "h"), ("h", "body"), ("body", "h"), ("h", "x")],
            "e",
        )
        analysis = direct_mapped_ucb(
            cfg,
            {"e": [], "h": [], "body": [0], "x": []},
            CacheGeometry(num_sets=4),
        )
        assert 0 in analysis.ucb_at_entry("h")

    def test_requires_direct_mapped(self):
        cfg = ControlFlowGraph([BasicBlock("a", 1, 1)], [], "a")
        with pytest.raises(ValueError):
            direct_mapped_ucb(
                cfg, {"a": []}, CacheGeometry(num_sets=2, associativity=2)
            )

    def test_unknown_block_in_accesses_rejected(self):
        cfg = ControlFlowGraph([BasicBlock("a", 1, 1)], [], "a")
        with pytest.raises(ValueError):
            direct_mapped_ucb(cfg, {"zz": [0]}, CacheGeometry(num_sets=2))

    def test_negative_memory_block_rejected(self):
        cfg = ControlFlowGraph([BasicBlock("a", 1, 1)], [], "a")
        with pytest.raises(ValueError):
            direct_mapped_ucb(cfg, {"a": [-1]}, CacheGeometry(num_sets=2))


class TestLRUMayAnalysis:
    def test_fits_in_ways_stays_useful(self):
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        # Two blocks in the same set of a 2-way cache: both may be cached.
        g = CacheGeometry(num_sets=1, associativity=2)
        analysis = lru_may_ucb(cfg, {"a": [0, 1], "b": [0, 1]}, g)
        assert analysis.ucb_at_entry("b") == frozenset({0, 1})

    def test_capacity_eviction(self):
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        g = CacheGeometry(num_sets=1, associativity=2)
        # Three distinct blocks through a 2-way set: the oldest is out.
        analysis = lru_may_ucb(cfg, {"a": [0, 1, 2], "b": [0, 1, 2]}, g)
        assert 0 not in analysis.ucb_at_entry("b")
        assert {1, 2} <= analysis.ucb_at_entry("b")

    def test_lru_at_least_as_pessimistic_as_direct_mapped_truth(self):
        # The conservative LRU analysis on a 1-way cache must dominate
        # the exact direct-mapped UCB sets.
        cfg = ControlFlowGraph(
            [BasicBlock("a", 1, 1), BasicBlock("b", 1, 1)],
            [("a", "b")],
            "a",
        )
        g = CacheGeometry(num_sets=2, associativity=1)
        accesses = {"a": [0, 1, 2], "b": [2, 0]}
        exact = direct_mapped_ucb(cfg, accesses, g)
        conservative = lru_may_ucb(cfg, accesses, g)
        for name in cfg.blocks:
            for p_exact, p_cons in zip(
                exact.ucb_per_point[name], conservative.ucb_per_point[name]
            ):
                assert p_exact <= p_cons


def _random_linear_program(rng: random.Random, geometry: CacheGeometry):
    """A random straight-line program (so the concrete path is unique)."""
    n_blocks = rng.randint(2, 5)
    names = [f"n{i}" for i in range(n_blocks)]
    cfg = ControlFlowGraph(
        [BasicBlock(n, 1, 1) for n in names],
        list(zip(names, names[1:])),
        names[0],
    )
    accesses = {
        n: [rng.randrange(geometry.num_sets * 3) for _ in range(rng.randint(0, 6))]
        for n in names
    }
    return cfg, names, accesses


class TestSoundnessAgainstSimulator:
    """The central guarantee: for straight-line code, the measured extra
    misses after an arbitrary preemption never exceed the static UCB
    count at the preemption point."""

    @given(
        seed=st.integers(min_value=0, max_value=20_000),
        num_sets=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_direct_mapped_ucb_bounds_measured_crpd(self, seed, num_sets):
        rng = random.Random(seed)
        geometry = CacheGeometry(num_sets=num_sets)
        cfg, names, accesses = _random_linear_program(rng, geometry)
        analysis = direct_mapped_ucb(cfg, accesses, geometry)

        # Preempt at every block boundary and at every in-block point.
        flat: list[tuple[str, int]] = []  # (block, index within block)
        for n in names:
            for i in range(len(accesses[n]) + 1):
                flat.append((n, i))

        for block_name, point_idx in flat:
            prefix: list[int] = []
            for n in names:
                if n == block_name:
                    prefix.extend(accesses[n][:point_idx])
                    break
                prefix.extend(accesses[n])
            suffix: list[int] = []
            started = False
            for n in names:
                if n == block_name:
                    suffix.extend(accesses[n][point_idx:])
                    started = True
                elif started:
                    suffix.extend(accesses[n])
            measured = extra_misses_after_preemption(
                geometry, prefix, suffix, set(range(num_sets))
            )
            static_bound = len(analysis.ucb_per_point[block_name][point_idx])
            assert measured <= static_bound, (
                f"preemption at {block_name}[{point_idx}] cost {measured} "
                f"misses but UCB bound is {static_bound}"
            )

    @given(
        seed=st.integers(min_value=0, max_value=20_000),
        assoc=st.sampled_from([2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lru_ucb_bounds_measured_crpd_at_entries(self, seed, assoc):
        rng = random.Random(seed)
        geometry = CacheGeometry(num_sets=2, associativity=assoc)
        cfg, names, accesses = _random_linear_program(rng, geometry)
        analysis = lru_may_ucb(cfg, accesses, geometry)
        for idx, block_name in enumerate(names):
            prefix = [b for n in names[:idx] for b in accesses[n]]
            suffix = [b for n in names[idx:] for b in accesses[n]]
            measured = extra_misses_after_preemption(
                geometry, prefix, suffix, set(range(geometry.num_sets))
            )
            static_bound = len(analysis.ucb_per_point[block_name][0])
            assert measured <= static_bound
