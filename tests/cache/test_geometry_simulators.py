"""Tests for cache geometry and the concrete simulators."""

import pytest

from repro.cache import CacheGeometry, LRUCache, extra_misses_after_preemption


class TestGeometry:
    def test_mapping(self):
        g = CacheGeometry(num_sets=4)
        assert g.set_of(0) == 0
        assert g.set_of(5) == 1
        assert g.conflicts(1, 5)
        assert not g.conflicts(1, 2)

    def test_address_to_block(self):
        g = CacheGeometry(num_sets=4, line_size=32)
        assert g.block_of_address(0) == 0
        assert g.block_of_address(31) == 0
        assert g.block_of_address(32) == 1

    def test_capacity(self):
        g = CacheGeometry(num_sets=8, associativity=2)
        assert g.capacity_blocks == 16
        assert not g.is_direct_mapped
        assert CacheGeometry(num_sets=8).is_direct_mapped

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=0)
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=1, associativity=0)
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=1, line_size=0)
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=1, block_reload_time=-1)
        g = CacheGeometry(num_sets=4)
        with pytest.raises(ValueError):
            g.set_of(-1)
        with pytest.raises(ValueError):
            g.block_of_address(-1)


class TestDirectMappedBehaviour:
    def test_miss_then_hit(self):
        cache = LRUCache(CacheGeometry(num_sets=4))
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_conflict_eviction(self):
        cache = LRUCache(CacheGeometry(num_sets=4))
        cache.access(0)
        cache.access(4)  # same set as 0
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_distinct_sets_coexist(self):
        cache = LRUCache(CacheGeometry(num_sets=4))
        cache.access(0)
        cache.access(1)
        assert cache.contains(0) and cache.contains(1)


class TestLRUBehaviour:
    def test_lru_eviction_order(self):
        cache = LRUCache(CacheGeometry(num_sets=1, associativity=2))
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 1 becomes the LRU
        cache.access(2)      # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_run_counts_misses(self):
        cache = LRUCache(CacheGeometry(num_sets=2, associativity=1))
        misses = cache.run([0, 1, 0, 1, 2, 0])
        # 0 miss, 1 miss, 0 hit, 1 hit, 2 miss (evicts 0), 0 miss.
        assert misses == 4

    def test_evict_sets(self):
        cache = LRUCache(CacheGeometry(num_sets=4, associativity=2))
        for b in (0, 1, 2, 3, 4):
            cache.access(b)
        evicted = cache.evict_sets({0})
        assert evicted == {0, 4}
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_evict_sets_range_check(self):
        cache = LRUCache(CacheGeometry(num_sets=4))
        with pytest.raises(ValueError):
            cache.evict_sets({4})

    def test_clone_is_independent(self):
        cache = LRUCache(CacheGeometry(num_sets=2))
        cache.access(0)
        copy = cache.clone()
        copy.access(2)  # evicts 0 in the copy only
        assert cache.contains(0)
        assert not copy.contains(0)

    def test_flush(self):
        cache = LRUCache(CacheGeometry(num_sets=2))
        cache.access(0)
        cache.flush()
        assert cache.contents() == set()


class TestExtraMisses:
    def test_no_eviction_no_extra(self):
        g = CacheGeometry(num_sets=4)
        extra = extra_misses_after_preemption(g, [0, 1, 2], [0, 1, 2], set())
        assert extra == 0

    def test_full_eviction_costs_reused_blocks(self):
        g = CacheGeometry(num_sets=4)
        extra = extra_misses_after_preemption(
            g, [0, 1, 2], [0, 1, 2], {0, 1, 2, 3}
        )
        assert extra == 3

    def test_partial_eviction(self):
        g = CacheGeometry(num_sets=4)
        extra = extra_misses_after_preemption(g, [0, 1, 2], [0, 1, 2], {1})
        assert extra == 1

    def test_unused_evictions_cost_nothing(self):
        g = CacheGeometry(num_sets=4)
        extra = extra_misses_after_preemption(g, [0, 1], [0], {1, 2, 3})
        assert extra == 0
