"""Tests for the write-back cache model and its preemption-cost split."""

import pytest

from repro.cache import (
    CacheGeometry,
    WritebackLRUCache,
    extra_misses_after_preemption,
    preemption_cost_with_writebacks,
)


def g(num_sets=4, assoc=1):
    return CacheGeometry(num_sets=num_sets, associativity=assoc)


class TestWritebackSemantics:
    def test_read_miss_then_hit(self):
        cache = WritebackLRUCache(g())
        hit, wb = cache.access(0, write=False)
        assert (hit, wb) == (False, 0)
        hit, wb = cache.access(0, write=False)
        assert (hit, wb) == (True, 0)

    def test_write_marks_dirty(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=True)
        assert cache.dirty_blocks() == {0}

    def test_read_after_write_keeps_dirty(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=True)
        cache.access(0, write=False)
        assert cache.dirty_blocks() == {0}

    def test_clean_eviction_costs_nothing(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=False)
        hit, wb = cache.access(4, write=False)  # evicts clean 0
        assert (hit, wb) == (False, 0)

    def test_dirty_eviction_writes_back(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=True)
        hit, wb = cache.access(4, write=False)  # evicts dirty 0
        assert (hit, wb) == (False, 1)

    def test_run_accumulates(self):
        cache = WritebackLRUCache(g())
        costs = cache.run([(0, True), (4, False), (0, False)])
        # 0 miss (write), 4 miss + wb of 0, 0 miss again.
        assert costs.misses == 3
        assert costs.writebacks == 1

    def test_total_cost_weighting(self):
        geometry = CacheGeometry(num_sets=4, block_reload_time=2.0)
        cache = WritebackLRUCache(geometry)
        costs = cache.run([(0, True), (4, False)])
        assert costs.total(geometry, writeback_time=3.0) == pytest.approx(
            2 * 2.0 + 1 * 3.0
        )

    def test_evict_sets_flushes_dirty(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=True)
        cache.access(1, write=False)
        flush = cache.evict_sets({0, 1})
        assert flush.writebacks == 1
        assert cache.contents() == set()

    def test_evict_sets_range_checked(self):
        cache = WritebackLRUCache(g())
        with pytest.raises(ValueError):
            cache.evict_sets({9})

    def test_clone_independent(self):
        cache = WritebackLRUCache(g())
        cache.access(0, write=True)
        copy = cache.clone()
        copy.evict_sets({0})
        assert cache.dirty_blocks() == {0}
        assert copy.dirty_blocks() == set()

    def test_lru_order_respected(self):
        cache = WritebackLRUCache(g(num_sets=1, assoc=2))
        cache.access(0, write=True)
        cache.access(1, write=False)
        cache.access(0, write=False)   # 1 is now LRU
        hit, wb = cache.access(2, write=False)  # evicts clean 1
        assert (hit, wb) == (False, 0)
        assert cache.dirty_blocks() == {0}


class TestPreemptionCostSplit:
    def test_read_only_workload_has_no_writeback_cost(self):
        geometry = g()
        trace = [(b, False) for b in (0, 1, 2)]
        reload_cost, wb_cost = preemption_cost_with_writebacks(
            geometry, trace, trace, {0, 1, 2, 3}, writeback_time=5.0
        )
        assert reload_cost == 3 * geometry.block_reload_time
        assert wb_cost == 0.0

    def test_dirty_working_set_adds_writeback_cost(self):
        geometry = g()
        warm = [(b, True) for b in (0, 1, 2)]
        resume = [(b, False) for b in (0, 1, 2)]
        reload_cost, wb_cost = preemption_cost_with_writebacks(
            geometry, warm, resume, {0, 1, 2, 3}, writeback_time=5.0
        )
        assert reload_cost == 3 * geometry.block_reload_time
        # The preemption flushes three dirty lines immediately.
        assert wb_cost == pytest.approx(3 * 5.0)

    def test_reload_component_matches_plain_model(self):
        """With writeback_time = 0 the cost reduces to the paper's CRPD."""
        geometry = g()
        warm_rw = [(0, True), (1, False), (2, True)]
        resume_rw = [(0, False), (2, False)]
        reload_cost, wb_cost = preemption_cost_with_writebacks(
            geometry, warm_rw, resume_rw, {0, 1, 2, 3}, writeback_time=0.0
        )
        plain = extra_misses_after_preemption(
            geometry,
            [b for b, _ in warm_rw],
            [b for b, _ in resume_rw],
            {0, 1, 2, 3},
        )
        assert reload_cost == plain * geometry.block_reload_time
        assert wb_cost == 0.0

    def test_negative_writeback_time_rejected(self):
        with pytest.raises(ValueError):
            preemption_cost_with_writebacks(
                g(), [], [], set(), writeback_time=-1.0
            )
