"""Tests for ECBs, per-block CRPD bounds and synthetic access patterns."""

import pytest

from repro.cache import (
    CacheGeometry,
    annotate_cfg_with_crpd,
    combined_ecbs,
    crpd_per_block,
    delay_function_from_program,
    evicting_cache_sets,
    phased_accesses,
    random_accesses,
    task_ecbs,
)
from repro.cfg import BasicBlock, ControlFlowGraph, random_cfg


def linear_cfg():
    names = ["a", "b", "c"]
    return ControlFlowGraph(
        [BasicBlock(n, 2, 3) for n in names],
        list(zip(names, names[1:])),
        "a",
    )


class TestEcb:
    def test_from_flat_iterable(self):
        g = CacheGeometry(num_sets=4)
        assert evicting_cache_sets([0, 4, 5], g) == frozenset({0, 1})

    def test_from_access_map(self):
        g = CacheGeometry(num_sets=4)
        assert evicting_cache_sets({"a": [2], "b": [6, 3]}, g) == frozenset({2, 3})

    def test_task_ecbs_ignores_unknown_blocks(self):
        g = CacheGeometry(num_sets=4)
        cfg = linear_cfg()
        ecbs = task_ecbs(cfg, {"a": [1], "b": [], "c": [5]}, g)
        assert ecbs == frozenset({1})

    def test_combined(self):
        assert combined_ecbs([frozenset({1}), frozenset({2, 3})]) == frozenset(
            {1, 2, 3}
        )
        assert combined_ecbs([]) == frozenset()


class TestCrpdPerBlock:
    def test_reused_block_costs_brt(self):
        g = CacheGeometry(num_sets=4, block_reload_time=2.5)
        cfg = linear_cfg()
        crpd = crpd_per_block(cfg, {"a": [0], "b": [], "c": [0]}, g)
        # Block b sits between the load and the reuse: m0 useful there.
        assert crpd["b"] == 2.5

    def test_ecb_filter_removes_unaffected_sets(self):
        g = CacheGeometry(num_sets=4, block_reload_time=1.0)
        cfg = linear_cfg()
        accesses = {"a": [0, 1], "b": [], "c": [0, 1]}
        unfiltered = crpd_per_block(cfg, accesses, g)
        filtered = crpd_per_block(cfg, accesses, g, ecb_sets=frozenset({0}))
        assert unfiltered["b"] == 2.0
        assert filtered["b"] == 1.0  # only m0's set is under attack

    def test_annotation_round_trip(self):
        g = CacheGeometry(num_sets=4, block_reload_time=3.0)
        cfg = linear_cfg()
        annotated = annotate_cfg_with_crpd(
            cfg, {"a": [0], "b": [], "c": [0]}, g
        )
        assert annotated.block("b").crpd == 3.0
        assert annotated.block("c").crpd >= 0.0

    def test_lru_geometry_dispatches(self):
        g = CacheGeometry(num_sets=2, associativity=2, block_reload_time=1.0)
        cfg = linear_cfg()
        crpd = crpd_per_block(cfg, {"a": [0, 2], "b": [], "c": [0, 2]}, g)
        assert crpd["b"] == 2.0


class TestPhasedPattern:
    def test_shape_matches_papers_motivation(self):
        program = phased_accesses(working_set=16, hot_subset=2)
        g = CacheGeometry(num_sets=32, block_reload_time=1.0)
        f = delay_function_from_program(program.cfg, program.accesses, g)
        # Early (between load and process) the whole working set is
        # useful; late (during compute) only the hot subset is.
        early = f.value(f.wcet * 0.15)
        late = f.value(f.wcet * 0.9)
        assert early >= 16.0
        assert late <= 2.0
        assert f.max_value() >= early

    def test_validation(self):
        with pytest.raises(ValueError):
            phased_accesses(working_set=0)
        with pytest.raises(ValueError):
            phased_accesses(working_set=4, hot_subset=5)
        with pytest.raises(ValueError):
            phased_accesses(compute_blocks=0)

    def test_access_map_covers_all_blocks(self):
        program = phased_accesses(compute_blocks=3)
        assert set(program.accesses) == set(program.cfg.blocks)


class TestRandomAccesses:
    def test_deterministic(self):
        cfg = random_cfg(3, depth=2).cfg
        a = random_accesses(cfg, seed=9)
        b = random_accesses(cfg, seed=9)
        assert a == b

    def test_respects_address_space(self):
        cfg = random_cfg(3, depth=2).cfg
        accesses = random_accesses(cfg, seed=1, address_space=10)
        assert all(0 <= m < 10 for t in accesses.values() for m in t)

    def test_validation(self):
        cfg = random_cfg(3, depth=1).cfg
        with pytest.raises(ValueError):
            random_accesses(cfg, seed=0, address_space=0)
        with pytest.raises(ValueError):
            random_accesses(cfg, seed=0, locality=2.0)


class TestEndToEndPipeline:
    def test_delay_function_from_program_on_random_cfg(self):
        generated = random_cfg(11, depth=3)
        accesses = random_accesses(generated.cfg, seed=4, address_space=64)
        g = CacheGeometry(num_sets=16, block_reload_time=1.5)
        f = delay_function_from_program(
            generated.cfg,
            accesses,
            g,
            iteration_bounds=generated.iteration_bounds,
        )
        assert f.wcet > 0
        assert f.function.is_non_negative()
        # CRPD cannot exceed BRT * capacity.
        assert f.max_value() <= g.capacity_blocks * g.block_reload_time
