"""Tests for per-preemptor (ECB-filtered) delay functions — the paper's
future-work item (i)."""

import pytest

from repro.cache import (
    CacheGeometry,
    combined_ecbs,
    delay_function_from_program,
    per_preemptor_delay_functions,
    phased_accesses,
)
from repro.core import floating_npr_delay_bound
from repro.piecewise import max_envelope


@pytest.fixture(scope="module")
def pipeline():
    # Cache large enough that the whole working set stays useful during
    # the process phase — then the heavy preemptor (touching every set)
    # can do far more damage than the light one (two sets).
    program = phased_accesses(working_set=16, hot_subset=2)
    geometry = CacheGeometry(num_sets=32, block_reload_time=1.0)
    ecbs = {
        "light": frozenset({0, 1}),
        "heavy": frozenset(range(32)),
    }
    return program, geometry, ecbs


class TestPerPreemptorFunctions:
    def test_each_filtered_below_unfiltered(self, pipeline):
        program, geometry, ecbs = pipeline
        unfiltered = delay_function_from_program(
            program.cfg, program.accesses, geometry
        )
        family = per_preemptor_delay_functions(
            program.cfg, program.accesses, geometry, ecbs
        )
        for f in family.values():
            for k in range(0, 11):
                t = unfiltered.wcet * k / 10
                assert f.value(t) <= unfiltered.value(t) + 1e-9

    def test_light_preemptor_cheaper_than_heavy(self, pipeline):
        program, geometry, ecbs = pipeline
        family = per_preemptor_delay_functions(
            program.cfg, program.accesses, geometry, ecbs
        )
        assert family["light"].max_value() < family["heavy"].max_value()

    def test_envelope_equals_union_ecbs(self, pipeline):
        program, geometry, ecbs = pipeline
        family = per_preemptor_delay_functions(
            program.cfg, program.accesses, geometry, ecbs
        )
        union = delay_function_from_program(
            program.cfg,
            program.accesses,
            geometry,
            ecb_sets=combined_ecbs(ecbs.values()),
        )
        envelope = max_envelope(
            family["light"].function, family["heavy"].function
        )
        for k in range(0, 21):
            t = union.wcet * k / 20
            assert envelope.value(t) == pytest.approx(union.value(t))

    def test_tighter_bounds_from_filtering(self, pipeline):
        program, geometry, ecbs = pipeline
        family = per_preemptor_delay_functions(
            program.cfg, program.accesses, geometry, ecbs
        )
        q = family["heavy"].wcet / 8
        light_bound = floating_npr_delay_bound(family["light"], q)
        heavy_bound = floating_npr_delay_bound(family["heavy"], q)
        assert light_bound.total_delay <= heavy_bound.total_delay