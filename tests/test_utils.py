"""Tests for shared utility helpers."""

import pytest

from repro.utils import (
    is_strictly_increasing,
    lcm_many,
    pairwise,
    require,
    require_non_negative,
    require_positive,
)


class TestChecks:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1.5, "x")
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                require_positive(bad, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestSeq:
    def test_pairwise(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]
        assert list(pairwise([])) == []
        assert list(pairwise([7])) == []

    def test_is_strictly_increasing(self):
        assert is_strictly_increasing([1, 2, 3])
        assert not is_strictly_increasing([1, 1, 2])
        assert is_strictly_increasing([])

    def test_lcm_many(self):
        assert lcm_many([4, 6]) == 12
        assert lcm_many([3, 5, 7]) == 105
        with pytest.raises(ValueError):
            lcm_many([0, 2])
