"""Randomized structural invariants of the floating-NPR simulator.

Hypothesis generates task sets and release patterns; the properties below
must hold for *every* run:

* processor segments never overlap;
* finished jobs conserve work (busy time = C + delay paid);
* consecutive preemptions of the same job are >= Q apart in wall time
  (the defining FNPR guarantee);
* the first preemption of a job happens at progression >= Q;
* measured cumulative delay never exceeds Algorithm 1's bound.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PreemptionDelayFunction, floating_npr_delay_bound
from repro.sim import FloatingNPRSimulator, sporadic_releases
from repro.tasks import Task, TaskSet


@st.composite
def random_task_sets(draw):
    """2-4 tasks with NPRs and simple delay functions."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    n = draw(st.integers(min_value=2, max_value=4))
    tasks = []
    for i in range(n):
        period = rng.uniform(20.0, 200.0) * (i + 1)
        wcet = period * rng.uniform(0.05, 0.25)
        q = wcet * rng.uniform(0.2, 0.8)
        height = q * rng.uniform(0.0, 0.7)  # keep below Q: no divergence
        f = PreemptionDelayFunction.from_points(
            [0.0, wcet / 2, wcet], [0.0, height, 0.0]
        )
        tasks.append(
            Task(
                f"t{i}",
                wcet,
                period,
                npr_length=q,
                delay_function=f,
            )
        )
    return TaskSet(tasks).rate_monotonic()


class TestSimulatorProperties:
    @given(tasks=random_task_sets(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, tasks, seed):
        horizon = max(t.period for t in tasks) * 6
        releases = sporadic_releases(tasks, horizon, seed=seed)
        sim = FloatingNPRSimulator(tasks, policy="fp")
        result = sim.run(releases, horizon)

        # 1) Segments never overlap.
        ordered = sorted(result.segments, key=lambda s: s.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.start + 1e-6

        bounds = {
            t.name: floating_npr_delay_bound(
                t.delay_function, t.npr_length
            ).total_delay
            for t in tasks
        }

        for job in result.jobs:
            q = job.task.npr_length
            # 2) Work conservation for finished jobs.
            if job.finished:
                assert job.progression == job.task.wcet or math.isclose(
                    job.progression, job.task.wcet, abs_tol=1e-6
                )
                assert math.isclose(
                    job.delay_paid, job.total_delay, abs_tol=1e-6
                )
            # 3) FNPR spacing: consecutive preemptions >= Q apart.
            for t0, t1 in zip(job.preemption_times, job.preemption_times[1:]):
                assert t1 - t0 >= q - 1e-6
            # 4) First preemption only after Q of progression.
            if job.preemption_progressions:
                assert job.preemption_progressions[0] >= q - 1e-6
            # 5) Theorem 1.
            assert job.total_delay <= bounds[job.task.name] + 1e-6

    @given(tasks=random_task_sets(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15, deadline=None)
    def test_edf_invariants(self, tasks, seed):
        horizon = max(t.period for t in tasks) * 4
        releases = sporadic_releases(tasks, horizon, seed=seed)
        sim = FloatingNPRSimulator(tasks, policy="edf")
        result = sim.run(releases, horizon)
        for job in result.jobs:
            q = job.task.npr_length
            for t0, t1 in zip(job.preemption_times, job.preemption_times[1:]):
                assert t1 - t0 >= q - 1e-6

    @given(tasks=random_task_sets(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=10, deadline=None)
    def test_zero_q_free_tasks_never_blocked_by_npr_owner_twice(
        self, tasks, seed
    ):
        """A higher-priority job waits at most Q_lower + remaining work
        of everything above it; weak sanity check: no job waits longer
        than the horizon while the processor idles."""
        horizon = max(t.period for t in tasks) * 4
        releases = sporadic_releases(tasks, horizon, seed=seed)
        sim = FloatingNPRSimulator(tasks, policy="fp")
        result = sim.run(releases, horizon)
        busy = result.busy_time()
        total_work = sum(
            min(j.progression + j.delay_paid, j.task.wcet + j.delay_paid)
            for j in result.jobs
        )
        assert math.isclose(busy, total_work, rel_tol=1e-6, abs_tol=1e-3)
