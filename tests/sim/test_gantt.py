"""Tests for the ASCII Gantt renderer and utilization summary."""

import pytest

from repro.sim import (
    FloatingNPRSimulator,
    gantt,
    utilization_summary,
    zero_delay_model,
)
from repro.tasks import Task, TaskSet


def run_two_task_trace():
    lo = Task("lo", 10.0, 100.0, npr_length=4.0)
    hi = Task("hi", 2.0, 50.0)
    ts = TaskSet([lo, hi]).rate_monotonic()
    sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
    return sim.run([(0.0, "lo"), (3.0, "hi")], horizon=20.0)


class TestGantt:
    def test_rows_and_markers(self):
        result = run_two_task_trace()
        text = gantt(result, width=40)
        lines = text.splitlines()
        assert any(line.strip().startswith("lo") for line in lines)
        assert any(line.strip().startswith("hi") for line in lines)
        assert "^" in lines[-1]  # release markers

    def test_run_chars_present_where_tasks_ran(self):
        result = run_two_task_trace()
        text = gantt(result, width=40)
        lines = text.splitlines()
        lo_row = next(row for row in lines if row.strip().startswith("lo"))
        hi_row = next(row for row in lines if row.strip().startswith("hi"))
        assert "#" in lo_row
        assert "#" in hi_row

    def test_window_restriction(self):
        result = run_two_task_trace()
        text = gantt(result, width=40, start=0.0, end=5.0)
        # Within [0, 5) only lo has run (NPR holds until t = 7).
        hi_row = next(l for l in text.splitlines() if l.strip().startswith("hi"))
        assert "#" not in hi_row

    def test_validation(self):
        result = run_two_task_trace()
        with pytest.raises(ValueError):
            gantt(result, width=4)
        with pytest.raises(ValueError):
            gantt(result, width=40, start=5.0, end=5.0)


class TestUtilizationSummary:
    def test_fractions_sum_below_one(self):
        result = run_two_task_trace()
        summary = utilization_summary(result)
        assert set(summary) == {"lo", "hi"}
        assert sum(summary.values()) <= 1.0 + 1e-9
        # lo ran 10 of 20 time units, hi 2 of 20.
        assert summary["lo"] == pytest.approx(0.5, abs=0.05)
        assert summary["hi"] == pytest.approx(0.1, abs=0.05)
