"""Tests for the floating-NPR simulator: hand-traced schedules first,
then structural invariants."""

import pytest

from repro.core import PreemptionDelayFunction
from repro.sim import (
    FloatingNPRSimulator,
    periodic_releases,
    worst_case_delay_model,
    zero_delay_model,
)
from repro.tasks import Task, TaskSet


def fp(tasks):
    return TaskSet(tasks).rate_monotonic()


class TestSingleTask:
    def test_runs_to_completion(self):
        ts = fp([Task("a", 5.0, 100.0)])
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run([(0.0, "a")], horizon=50.0)
        job = result.jobs[0]
        assert job.finished
        assert job.completion_time == pytest.approx(5.0)
        assert job.total_delay == 0.0
        assert result.preemption_count() == 0

    def test_unfinished_at_horizon(self):
        ts = fp([Task("a", 5.0, 100.0)])
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run([(0.0, "a")], horizon=3.0)
        assert not result.jobs[0].finished

    def test_release_beyond_horizon_ignored(self):
        ts = fp([Task("a", 5.0, 100.0)])
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run([(60.0, "a")], horizon=50.0)
        assert result.jobs == []


class TestPreemptionWithoutNpr:
    def test_immediate_preemption_when_no_npr(self):
        # lo has no npr_length: fully preemptive, hi preempts at release.
        lo = Task("lo", 10.0, 100.0)
        hi = Task("hi", 2.0, 50.0)
        ts = fp([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        result = sim.run([(0.0, "lo"), (3.0, "hi")], horizon=60.0)
        lo_job = result.jobs_of("lo")[0]
        hi_job = result.jobs_of("hi")[0]
        assert lo_job.preemption_progressions == [pytest.approx(3.0)]
        assert hi_job.completion_time == pytest.approx(5.0)
        assert lo_job.completion_time == pytest.approx(12.0)


class TestFloatingNprSemantics:
    def make(self, q=4.0, delay=0.0, c_lo=10.0):
        f = (
            PreemptionDelayFunction.from_constant(delay, c_lo)
            if delay
            else None
        )
        lo = Task("lo", c_lo, 100.0, npr_length=q, delay_function=f)
        hi = Task("hi", 2.0, 50.0)
        return fp([lo, hi])

    def test_npr_defers_preemption_by_q(self):
        ts = self.make(q=4.0)
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        # hi released at t=3 while lo runs: NPR until t=7, hi runs 7..9,
        # lo resumes and finishes at 9 + (10 - 7) = 12.
        result = sim.run([(0.0, "lo"), (3.0, "hi")], horizon=60.0)
        lo_job = result.jobs_of("lo")[0]
        hi_job = result.jobs_of("hi")[0]
        assert lo_job.preemption_progressions == [pytest.approx(7.0)]
        assert hi_job.completion_time == pytest.approx(9.0)
        assert lo_job.completion_time == pytest.approx(12.0)

    def test_completion_inside_npr_cancels_preemption(self):
        ts = self.make(q=4.0, c_lo=5.0)
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        # lo needs 5; hi arrives at 4: NPR would end at 8 but lo is done
        # at 5 -> hi never preempts, runs 5..7.
        result = sim.run([(0.0, "lo"), (4.0, "hi")], horizon=60.0)
        lo_job = result.jobs_of("lo")[0]
        hi_job = result.jobs_of("hi")[0]
        assert lo_job.completion_time == pytest.approx(5.0)
        assert lo_job.delays_charged == []
        assert hi_job.completion_time == pytest.approx(7.0)

    def test_releases_during_npr_do_not_extend_it(self):
        lo = Task("lo", 20.0, 200.0, npr_length=6.0)
        hi = Task("hi", 1.0, 50.0)
        ts = fp([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        # hi at t=2 starts NPR (ends t=8); hi again at t=5 must NOT
        # restart it; preemption happens exactly at t=8.
        result = sim.run(
            [(0.0, "lo"), (2.0, "hi"), (5.0, "hi")], horizon=100.0
        )
        lo_job = result.jobs_of("lo")[0]
        assert lo_job.preemption_progressions == [pytest.approx(8.0)]
        # Both hi jobs run back-to-back after the NPR.
        his = result.jobs_of("hi")
        assert his[0].completion_time == pytest.approx(9.0)
        assert his[1].completion_time == pytest.approx(10.0)

    def test_delay_charged_at_preemption_and_paid_on_resume(self):
        ts = self.make(q=4.0, delay=1.5)
        sim = FloatingNPRSimulator(
            ts, policy="fp", delay_model=worst_case_delay_model
        )
        result = sim.run([(0.0, "lo"), (3.0, "hi")], horizon=60.0)
        lo_job = result.jobs_of("lo")[0]
        assert lo_job.delays_charged == [pytest.approx(1.5)]
        assert lo_job.delay_paid == pytest.approx(1.5)
        # Completion: 10 useful + 1.5 delay + 2 preemptor = 13.5.
        assert lo_job.completion_time == pytest.approx(13.5)

    def test_delay_function_indexed_by_progression(self):
        # f is 5 only in [6, 8): the preemption at progression 7 must
        # charge 5; a later one (if any) charges per its own progression.
        f = PreemptionDelayFunction.from_step(
            [0.0, 6.0, 8.0, 10.0], [0.0, 5.0, 0.0]
        )
        lo = Task("lo", 10.0, 200.0, npr_length=4.0, delay_function=f)
        hi = Task("hi", 2.0, 50.0)
        ts = fp([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run([(0.0, "lo"), (3.0, "hi")], horizon=100.0)
        lo_job = result.jobs_of("lo")[0]
        assert lo_job.preemption_progressions == [pytest.approx(7.0)]
        assert lo_job.delays_charged == [pytest.approx(5.0)]

    def test_new_npr_after_resume(self):
        lo = Task("lo", 20.0, 500.0, npr_length=5.0)
        hi = Task("hi", 1.0, 50.0)
        ts = fp([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        # First hi at 2 -> NPR [2,7], preempt at 7, hi runs 7..8.
        # Second hi at 10 (lo running again) -> NPR [10,15], preempt at
        # progression 7 + (10-8) + 5 = 14.
        result = sim.run(
            [(0.0, "lo"), (2.0, "hi"), (10.0, "hi")], horizon=100.0
        )
        lo_job = result.jobs_of("lo")[0]
        assert lo_job.preemption_progressions == [
            pytest.approx(7.0),
            pytest.approx(14.0),
        ]


class TestEdfPolicy:
    def test_edf_orders_by_absolute_deadline(self):
        a = Task("a", 2.0, 100.0, deadline=20.0, npr_length=None)
        b = Task("b", 2.0, 100.0, deadline=5.0, npr_length=None)
        ts = TaskSet([a, b])
        sim = FloatingNPRSimulator(ts, policy="edf", delay_model=zero_delay_model)
        result = sim.run([(0.0, "a"), (0.0, "b")], horizon=50.0)
        a_job = result.jobs_of("a")[0]
        b_job = result.jobs_of("b")[0]
        assert b_job.completion_time < a_job.completion_time

    def test_edf_npr_defers(self):
        lo = Task("lo", 10.0, 100.0, deadline=90.0, npr_length=4.0)
        hi = Task("hi", 2.0, 100.0, deadline=10.0)
        ts = TaskSet([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="edf", delay_model=zero_delay_model)
        result = sim.run([(0.0, "lo"), (3.0, "hi")], horizon=60.0)
        lo_job = result.jobs_of("lo")[0]
        assert lo_job.preemption_progressions == [pytest.approx(7.0)]


class TestStructuralInvariants:
    def test_conservation_of_work(self):
        ts = fp(
            [
                Task("hi", 1.0, 10.0),
                Task(
                    "lo",
                    5.0,
                    37.0,
                    npr_length=2.0,
                    delay_function=PreemptionDelayFunction.from_constant(
                        0.5, 5.0
                    ),
                ),
            ]
        )
        sim = FloatingNPRSimulator(ts, policy="fp")
        releases = periodic_releases(ts, 200.0)
        result = sim.run(releases, horizon=200.0)
        for job in result.jobs:
            if job.finished:
                # Busy time of the job = useful work + delay paid.
                assert job.progression == pytest.approx(job.task.wcet)
                assert job.delay_paid == pytest.approx(job.total_delay)

    def test_segments_do_not_overlap(self):
        ts = fp([Task("hi", 1.0, 7.0), Task("lo", 5.0, 23.0, npr_length=2.0)])
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        releases = periodic_releases(ts, 100.0)
        result = sim.run(releases, horizon=100.0)
        ordered = sorted(result.segments, key=lambda s: s.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.start + 1e-9

    def test_deadline_misses_detected(self):
        ts = fp([Task("a", 10.0, 12.0, deadline=5.0)])
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run([(0.0, "a")], horizon=40.0)
        assert len(result.deadline_misses()) == 1

    def test_invalid_inputs(self):
        ts = fp([Task("a", 1.0, 10.0)])
        sim = FloatingNPRSimulator(ts, policy="fp")
        with pytest.raises(ValueError):
            sim.run([(0.0, "ghost")], horizon=10.0)
        with pytest.raises(ValueError):
            sim.run([(-1.0, "a")], horizon=10.0)
        with pytest.raises(ValueError):
            sim.run([], horizon=0.0)
        with pytest.raises(ValueError):
            FloatingNPRSimulator(ts, policy="weird")


class TestDelayModelDomainClamp:
    def test_negative_progression_clamps_to_zero(self):
        # Event times carry _TIME_EPS-scale noise, so a preemption at
        # the very start of a job can report progression -1e-9; the
        # model must query f(0), not raise a domain error (regression).
        from repro.sim.jobs import Job

        f = PreemptionDelayFunction.from_points(
            [0.0, 5.0, 10.0], [4.0, 2.0, 0.0]
        )
        task = Task("a", 10.0, 100.0, delay_function=f)
        job = Job(task=task, release_time=0.0, job_id=0)
        job.progression = -1e-9
        assert worst_case_delay_model(job, job.progression) == f.value(0.0)

    def test_progression_beyond_wcet_clamps_to_wcet(self):
        from repro.sim.jobs import Job

        f = PreemptionDelayFunction.from_points(
            [0.0, 5.0, 10.0], [4.0, 2.0, 0.0]
        )
        task = Task("a", 10.0, 100.0, delay_function=f)
        job = Job(task=task, release_time=0.0, job_id=0)
        assert worst_case_delay_model(job, 10.0 + 1e-9) == f.value(10.0)
