"""Tests for the scheduler event log: the FNPR protocol, observably."""

import pytest

from repro.sim import (
    EventKind,
    FloatingNPRSimulator,
    TraceRecorder,
    zero_delay_model,
)
from repro.tasks import Task, TaskSet


def fp(tasks):
    return TaskSet(tasks).rate_monotonic()


def run_npr_trace():
    lo = Task("lo", 10.0, 100.0, npr_length=4.0)
    hi = Task("hi", 2.0, 50.0)
    ts = fp([lo, hi])
    sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
    return sim.run([(0.0, "lo"), (3.0, "hi"), (5.0, "hi")], horizon=40.0)


class TestTraceRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record(1.0, EventKind.RELEASE, "a#0")
        rec.record(2.0, EventKind.PREEMPT, "a#0", 0.5)
        assert len(rec.events) == 2
        assert rec.of_kind(EventKind.PREEMPT)[0].value == 0.5


class TestProtocolEvents:
    def test_npr_starts_exactly_at_higher_priority_release(self):
        result = run_npr_trace()
        npr_starts = result.events_of(EventKind.NPR_START)
        assert len(npr_starts) == 1
        assert npr_starts[0].time == pytest.approx(3.0)
        assert npr_starts[0].job == "lo#0"
        assert npr_starts[0].value == 4.0  # Q recorded

    def test_npr_not_restarted_by_second_release(self):
        # hi is released again at t = 5 during the active NPR [3, 7]:
        # still exactly one NPR_START.
        result = run_npr_trace()
        assert len(result.events_of(EventKind.NPR_START)) == 1
        releases = result.events_of(EventKind.RELEASE)
        assert len(releases) == 3

    def test_npr_end_follows_start_by_q(self):
        result = run_npr_trace()
        start = result.events_of(EventKind.NPR_START)[0]
        end = result.events_of(EventKind.NPR_END)[0]
        assert end.time == pytest.approx(start.time + 4.0)
        assert end.job == start.job

    def test_preemption_at_npr_end(self):
        result = run_npr_trace()
        preempts = result.events_of(EventKind.PREEMPT)
        assert len(preempts) == 1
        assert preempts[0].time == pytest.approx(7.0)
        assert preempts[0].job == "lo#0"

    def test_completions_for_all_jobs(self):
        result = run_npr_trace()
        completes = result.events_of(EventKind.COMPLETE)
        assert {e.job for e in completes} == {"lo#0", "hi#1", "hi#2"}

    def test_dispatch_precedes_completion_per_job(self):
        result = run_npr_trace()
        for job in ("lo#0", "hi#1", "hi#2"):
            dispatches = [
                e.time
                for e in result.events_of(EventKind.DISPATCH)
                if e.job == job
            ]
            completes = [
                e.time
                for e in result.events_of(EventKind.COMPLETE)
                if e.job == job
            ]
            assert dispatches, job
            assert completes, job
            assert min(dispatches) <= completes[0]

    def test_completion_inside_npr_no_preemption_event(self):
        lo = Task("lo", 5.0, 100.0, npr_length=4.0)
        hi = Task("hi", 2.0, 50.0)
        ts = fp([lo, hi])
        sim = FloatingNPRSimulator(ts, policy="fp", delay_model=zero_delay_model)
        result = sim.run([(0.0, "lo"), (4.0, "hi")], horizon=40.0)
        assert len(result.events_of(EventKind.NPR_START)) == 1
        assert result.events_of(EventKind.PREEMPT) == []

    def test_events_chronological(self):
        result = run_npr_trace()
        times = [e.time for e in result.events]
        assert times == sorted(times)
