"""EXT-A: Theorem 1 checked against the simulator, plus metrics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PreemptionDelayFunction, floating_npr_delay_bound
from repro.sim import (
    FloatingNPRSimulator,
    all_task_metrics,
    periodic_releases,
    saturating_releases,
    task_metrics,
    validate_simulation,
    validation_campaign,
)
from repro.tasks import Task, TaskSet


def bell_delay(wcet: float, height: float) -> PreemptionDelayFunction:
    mid = wcet / 2
    xs = [0.0, mid * 0.5, mid, mid * 1.5, wcet]
    ys = [0.0, height * 0.6, height, height * 0.6, 0.0]
    return PreemptionDelayFunction.from_points(xs, ys)


def make_task_set(q: float, height: float) -> TaskSet:
    lo = Task(
        "lo",
        20.0,
        200.0,
        npr_length=q,
        delay_function=bell_delay(20.0, height),
    )
    hi = Task("hi", 1.0, 9.0)
    mid = Task("mid", 2.0, 31.0, npr_length=q / 2)
    return TaskSet([lo, mid, hi]).rate_monotonic()


class TestValidateSimulation:
    def test_periodic_run_within_bound(self):
        ts = make_task_set(q=3.0, height=1.0)
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(periodic_releases(ts, 600.0), horizon=600.0)
        report = validate_simulation(ts, result)
        assert report.passed
        assert report.checked_jobs > 0
        assert 0.0 <= report.max_tightness <= 1.0 + 1e-9

    def test_saturating_adversary_within_bound(self):
        lo = Task(
            "lo",
            20.0,
            1000.0,
            npr_length=3.0,
            delay_function=bell_delay(20.0, 1.5),
        )
        hi = Task("hi", 0.5, 1000.0)
        ts = TaskSet([lo, hi]).rate_monotonic()
        releases = saturating_releases(
            "lo", "hi", target_release=0.0, target_q=3.0, horizon=400.0
        )
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(releases, horizon=400.0)
        report = validate_simulation(ts, result)
        assert report.passed
        lo_job = result.jobs_of("lo")[0]
        # The adversary does force repeated preemptions.
        assert len(lo_job.delays_charged) >= 3

    def test_adversary_tightness_is_meaningful(self):
        """The saturating adversary should get reasonably close to the
        bound (it is the scenario Algorithm 1 charges for)."""
        lo = Task(
            "lo",
            20.0,
            1000.0,
            npr_length=4.0,
            delay_function=PreemptionDelayFunction.from_constant(1.0, 20.0),
        )
        hi = Task("hi", 0.25, 1000.0)
        ts = TaskSet([lo, hi]).rate_monotonic()
        # Space arrivals by Q + C_hi + eps: each lands while the target
        # is still paying its reload delay, realising the worst case.
        releases = saturating_releases(
            "lo",
            "hi",
            target_release=0.0,
            target_q=4.0,
            horizon=300.0,
            interferer_cost=0.25,
            spacing_slack=0.01,
        )
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(releases, horizon=300.0)
        report = validate_simulation(ts, result)
        assert report.passed
        # Constant f: the bound charges a preemption per (Q - delay) of
        # progression; the tuned adversary realises almost all of them.
        assert report.max_tightness > 0.8

    def test_violation_dataclass_shape(self):
        ts = make_task_set(q=3.0, height=1.0)
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(periodic_releases(ts, 100.0), horizon=100.0)
        report = validate_simulation(ts, result)
        assert report.violations == ()


class TestValidationCampaign:
    @given(batch=st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None)
    def test_campaign_never_violates_fp(self, batch):
        ts = make_task_set(q=3.0, height=1.2)
        report = validation_campaign(
            ts,
            policy="fp",
            seeds=range(batch * 4, batch * 4 + 4),
            horizon=400.0,
        )
        assert report.passed
        assert report.checked_jobs > 0

    def test_campaign_edf(self):
        ts = make_task_set(q=3.0, height=1.2)
        report = validation_campaign(
            ts, policy="edf", seeds=range(6), horizon=400.0
        )
        assert report.passed

    def test_empty_seed_range_rejected(self):
        ts = make_task_set(q=3.0, height=1.0)
        with pytest.raises(ValueError):
            validation_campaign(ts, policy="fp", seeds=range(0), horizon=10.0)


class TestMetrics:
    def test_task_metrics(self):
        ts = make_task_set(q=3.0, height=1.0)
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(periodic_releases(ts, 400.0), horizon=400.0)
        m = task_metrics(result, "lo")
        assert m.jobs == 2
        assert m.completed >= 1
        assert m.max_total_delay <= floating_npr_delay_bound(
            ts.task("lo").delay_function, 3.0
        ).total_delay + 1e-6
        assert m.deadline_misses == 0

    def test_all_task_metrics_covers_all(self):
        ts = make_task_set(q=3.0, height=1.0)
        sim = FloatingNPRSimulator(ts, policy="fp")
        result = sim.run(periodic_releases(ts, 200.0), horizon=200.0)
        metrics = all_task_metrics(result)
        assert set(metrics) == {"lo", "mid", "hi"}
