"""Anti-rot smoke test: every example script must execute cleanly.

Each ``examples/*.py`` runs as a subprocess under a tmp
``REPRO_RESULTS_DIR`` and tmp working directory, so the examples (now
written against the :mod:`repro.api` facade where they run workloads)
cannot silently rot as the API evolves.  CI runs this module in its
own job besides the tier-1 matrix.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ has no scripts"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_executes(script, tmp_path):
    env = dict(os.environ)
    env["REPRO_RESULTS_DIR"] = str(tmp_path / "results")
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
