"""The uniform ``--backend`` axis end-to-end through the CLI.

The acceptance surface of the backend redesign: every workload accepts
``--backend``; an unknown name fails loudly listing the registry; the
``numpy`` backend is **byte-identical** to the default across all four
scenario families — including ``--jobs`` fan-out, kill-and-resume and
shard-and-merge; and a ``--store`` run records which backend computed
it.
"""

import pytest

from repro.api.workloads import get_workload, workload_names
from repro.cli import main
from repro.piecewise import available_backends
from repro.store import ResultStore

HAS_NUMPY = "numpy" in available_backends()
needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy backend not available"
)

_SWEEP = ["sweep", "--points", "5", "--knots", "64"]

#: One small campaign per scenario family (bound via plain sweep).
_FAMILY_CAMPAIGNS = {
    "bound": ["campaign", "fig5", "--set", "points=4", "--set", "knots=48"],
    "study": [
        "campaign", "study",
        "--set", "sets_per_point=2",
        "--set", "utilizations=[0.4, 0.6]",
        "--set", "n_tasks=3",
    ],
    "sim": [
        "campaign", "sim-validate",
        "--set", "sets_per_point=2",
        "--set", "utilizations=[0.5]",
    ],
    "edf-study": [
        "campaign", "edf-study",
        "--set", "sets_per_point=2",
        "--set", "utilizations=[0.4, 0.6]",
        "--set", "n_tasks=3",
    ],
}


def _run(tmp_path, monkeypatch, argv):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    return main(argv)


class TestBackendsCommand:
    def test_lists_the_whole_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("scalar", "vectorized", "numpy", "numba"):
            assert name in out
        assert "bit-identical" in out

    def test_reports_live_availability(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        vectorized_row = next(
            line for line in out.splitlines() if "vectorized" in line
        )
        assert "yes" in vectorized_row


class TestUniformFlag:
    def test_every_workload_declares_the_backend_group(self):
        for name in workload_names():
            assert "backend" in get_workload(name).flags, name

    def test_unknown_backend_exits_2_listing_the_registry(
        self, tmp_path, monkeypatch, capsys
    ):
        code = _run(
            tmp_path, monkeypatch, [*_SWEEP, "--backend", "bogus"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown backend 'bogus'" in err
        assert "scalar, vectorized, numpy, numba" in err

    def test_unavailable_backend_exits_2(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.piecewise import backend_names

        unavailable = [
            name
            for name in backend_names()
            if name not in available_backends()
        ]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        code = _run(
            tmp_path, monkeypatch, [*_SWEEP, "--backend", unavailable[0]]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "not available" in err

    def test_non_engine_workloads_accept_the_flag(
        self, tmp_path, monkeypatch, capsys
    ):
        # Workloads outside the engine hot path still parse and
        # validate --backend (uniform surface; documented no-op).
        code = _run(
            tmp_path, monkeypatch, ["fig2", "--backend", "vectorized"]
        )
        assert code == 0
        assert "naive violated" in capsys.readouterr().out


@needs_numpy
class TestNumpyParity:
    """`--backend numpy` output bytes equal the default's, everywhere."""

    def _baseline(self, tmp_path, monkeypatch, argv, name="plain"):
        out = tmp_path / f"{name}.jsonl"
        assert _run(tmp_path, monkeypatch, [*argv, "--out", str(out)]) == 0
        return out

    def test_sweep_is_byte_identical(self, tmp_path, monkeypatch):
        plain = self._baseline(tmp_path, monkeypatch, _SWEEP)
        out = tmp_path / "numpy.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [*_SWEEP, "--backend", "numpy", "--out", str(out)],
        )
        assert code == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_sweep_with_jobs_is_byte_identical(self, tmp_path, monkeypatch):
        plain = self._baseline(tmp_path, monkeypatch, _SWEEP)
        out = tmp_path / "numpy-jobs.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                *_SWEEP,
                "--backend", "numpy",
                "--jobs", "2",
                "--out", str(out),
            ],
        )
        assert code == 0
        assert out.read_bytes() == plain.read_bytes()

    @pytest.mark.parametrize(
        "family", ["study", "sim", "edf-study"]
    )
    def test_other_families_are_byte_identical(
        self, tmp_path, monkeypatch, family
    ):
        argv = _FAMILY_CAMPAIGNS[family]
        plain = self._baseline(tmp_path, monkeypatch, argv, name="plain")
        out = tmp_path / "numpy.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--backend", "numpy", "--out", str(out)],
        )
        assert code == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_bound_campaign_is_byte_identical(self, tmp_path, monkeypatch):
        argv = _FAMILY_CAMPAIGNS["bound"]
        plain = self._baseline(tmp_path, monkeypatch, argv)
        out = tmp_path / "numpy.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [*argv, "--backend", "numpy", "--out", str(out)],
        )
        assert code == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_killed_numpy_sweep_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        plain = self._baseline(tmp_path, monkeypatch, _SWEEP)
        out = tmp_path / "resumed.jsonl"
        store = tmp_path / "sweep.sqlite"
        argv = [*_SWEEP, "--backend", "numpy", "--out", str(out),
                "--store", str(store)]
        assert _run(
            tmp_path, monkeypatch, [*argv, "--fail-after", "4"]
        ) == 130
        assert _run(tmp_path, monkeypatch, [*argv, "--resume"]) == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_sharded_numpy_runs_merge_byte_identical(
        self, tmp_path, monkeypatch
    ):
        plain = self._baseline(tmp_path, monkeypatch, _SWEEP)
        shards = []
        for i in (1, 2):
            store = tmp_path / f"shard{i}.sqlite"
            shards.append(str(store))
            code = _run(
                tmp_path,
                monkeypatch,
                [
                    *_SWEEP,
                    "--backend", "numpy",
                    "--out", str(tmp_path / f"shard{i}.jsonl"),
                    "--store", str(store),
                    "--shard", f"{i}/2",
                ],
            )
            assert code == 0
        merged = tmp_path / "merged.jsonl"
        code = _run(
            tmp_path,
            monkeypatch,
            [
                "merge", str(tmp_path / "merged.sqlite"), *shards,
                "--out", str(merged),
            ],
        )
        assert code == 0
        assert merged.read_bytes() == plain.read_bytes()


class TestStoreRecording:
    def test_store_records_the_default_backend(self, tmp_path, monkeypatch):
        store = tmp_path / "sweep.sqlite"
        code = _run(
            tmp_path,
            monkeypatch,
            [*_SWEEP, "--out", str(tmp_path / "o.jsonl"),
             "--store", str(store)],
        )
        assert code == 0
        with ResultStore(store) as opened:
            assert opened.backend_info == {
                "name": "vectorized",
                "exactness": "bit-identical",
            }

    @needs_numpy
    def test_store_records_the_selected_backend(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "sweep.sqlite"
        argv = [*_SWEEP, "--out", str(tmp_path / "o.jsonl"),
                "--store", str(store)]
        assert _run(
            tmp_path, monkeypatch, [*argv, "--backend", "numpy"]
        ) == 0
        with ResultStore(store) as opened:
            assert opened.backend_info["name"] == "numpy"
        # Bit-identical backends are interchangeable: resuming the
        # numpy-recorded store under the default succeeds and keeps
        # the first recording.
        assert _run(tmp_path, monkeypatch, [*argv, "--resume"]) == 0
        with ResultStore(store) as opened:
            assert opened.backend_info["name"] == "numpy"
