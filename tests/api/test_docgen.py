"""Anti-rot check for the generated sections of ``docs/api.md``.

The workload table, kernel-backend table and family-axis tables in the
API reference are generated from the live registries; if a family,
workload, backend or axis changes without regenerating the docs
(``python -m repro.api.docgen docs/api.md``), this test fails with the
drift.
"""

from pathlib import Path

from repro.api import docgen

API_DOC = Path(__file__).resolve().parent.parent.parent / "docs" / "api.md"


class TestGeneratedDocs:
    def test_api_doc_exists_with_markers(self):
        text = API_DOC.read_text()
        assert docgen.BEGIN_MARKER in text
        assert docgen.END_MARKER in text

    def test_generated_block_is_current(self):
        text = API_DOC.read_text()
        assert docgen.inject(text) == text, (
            "docs/api.md generated tables are stale; regenerate with "
            "'PYTHONPATH=src python -m repro.api.docgen docs/api.md'"
        )

    def test_every_family_has_a_table(self):
        from repro.engine.registry import family_names

        text = API_DOC.read_text()
        for name in family_names():
            assert f"### Family `{name}`" in text

    def test_every_workload_is_listed(self):
        from repro.api import workload_names

        text = API_DOC.read_text()
        for name in workload_names():
            assert f"| `{name}` |" in text

    def test_every_backend_is_listed(self):
        from repro.piecewise.backends import backend_names

        text = API_DOC.read_text()
        assert "## Kernel backends" in text
        for name in backend_names():
            assert f"| `{name}` |" in text

    def test_backend_table_is_environment_independent(self):
        # The committed docs must regenerate identically whether or not
        # optional backend modules are importable: the table may state
        # declared requirements ("Requires numpy") but never live
        # availability, which varies by machine (the docs CI job has no
        # numpy).
        table = docgen.backend_table()
        for loaded_word in ("available", "importable", "installed"):
            assert loaded_word not in table.lower()
